"""Hyperparameter grid search and news enrichment (paper §V-B-4 + §VI).

Demonstrates the two workflow extensions of the library:

1. the paper's grid search over window size T and loss balance α, scored
   on a validation tail carved from the training period (the test period
   stays untouched until the final evaluation);
2. the conclusion's future work — enriching features with an overnight
   news-sentiment channel — evaluated with the tuned configuration.

Run:  python examples/hyperparameter_search.py
"""

import numpy as np

from repro import RTGCN, TrainConfig, Trainer, load_market
from repro.data import NewsAugmentedDataset, NewsConfig
from repro.eval import grid_search, ranking_metrics


def main() -> None:
    dataset = load_market("csi-mini", seed=2)
    print(f"Market: {dataset}\n")

    base = TrainConfig(epochs=8, early_stopping_patience=2,
                       validation_days=20)

    print("Grid search over window T and loss balance α "
          "(validation-tail scored):")
    result = grid_search(
        lambda gen, cfg: RTGCN(dataset.relations,
                               num_features=cfg.num_features,
                               strategy="time", rng=gen),
        dataset,
        {"window": [5, 10, 15], "alpha": [0.01, 0.1, 0.2]},
        base_config=base, metric="IRR-5", validation_days=25)
    for point in result.points:
        print(f"  T={point.params['window']:>2d} α={point.params['alpha']:<5}"
              f" validation IRR-5 = {point.score:+.3f}")
    best = result.best_config(base)
    print(f"\nBest: window={best.window}, alpha={best.alpha}")

    print("\nFinal test evaluation with the tuned configuration:")
    model = RTGCN(dataset.relations, strategy="time",
                  rng=np.random.default_rng(0))
    outcome = Trainer(model, dataset, best).run()
    for key, value in ranking_metrics(outcome.predictions,
                                      outcome.actuals).items():
        print(f"  {key:7s} {value:+.4f}")

    print("\nSame configuration with the news-sentiment channel "
          "(informativeness 0.6):")
    news = NewsAugmentedDataset(dataset, NewsConfig(event_rate=0.5,
                                                    informativeness=0.6,
                                                    seed=3))
    news_model = RTGCN(news.relations, num_features=5, strategy="time",
                       rng=np.random.default_rng(0))
    news_outcome = Trainer(news_model, news, best).run()
    for key, value in ranking_metrics(news_outcome.predictions,
                                      news_outcome.actuals).items():
        print(f"  {key:7s} {value:+.4f}")


if __name__ == "__main__":
    main()
