"""Portfolio construction and risk analysis with a trained RT-GCN.

Goes beyond the paper's headline IRR: trains a model, then examines how
portfolio size (top-N) trades return against risk, comparing against the
perfect-foresight oracle and a random picker.

Run:  python examples/portfolio_backtest.py
"""

import numpy as np

from repro import RTGCN, TrainConfig, Trainer, load_market
from repro.eval import oracle_backtest, random_backtest, run_backtest


def main() -> None:
    dataset = load_market("nyse-mini", seed=1)
    print(f"Market: {dataset}\n")

    config = TrainConfig(window=10, epochs=5, alpha=0.2)
    model = RTGCN(dataset.relations, strategy="time", relational_filters=16,
                  rng=np.random.default_rng(1))
    result = Trainer(model, dataset, config).run()

    header = (f"{'portfolio':>10s} {'IRR':>8s} {'compound':>9s} "
              f"{'sharpe':>7s} {'maxDD':>7s} {'hit':>6s}")
    print("RT-GCN (T) portfolios by size:")
    print(header)
    for top_n in (1, 3, 5, 10, 20):
        bt = run_backtest(result.predictions, result.actuals, top_n)
        s = bt.summary()
        print(f"{'top-' + str(top_n):>10s} {s['irr']:+8.3f} "
              f"{s['compounded']:+9.3f} {s['sharpe']:+7.2f} "
              f"{s['max_drawdown']:7.3f} {s['hit_rate']:6.1%}")

    print("\nReference strategies (top-5):")
    print(header)
    for name, bt in [
        ("oracle", oracle_backtest(result.actuals, 5)),
        ("model", run_backtest(result.predictions, result.actuals, 5)),
        ("random", random_backtest(result.actuals, 5,
                                   rng=np.random.default_rng(0))),
    ]:
        s = bt.summary()
        print(f"{name:>10s} {s['irr']:+8.3f} {s['compounded']:+9.3f} "
              f"{s['sharpe']:+7.2f} {s['max_drawdown']:7.3f} "
              f"{s['hit_rate']:6.1%}")

    print("\nNote: IRR-1 concentrates all capital in a single stock per "
          "day, so its\ncurve is far noisier than IRR-5/IRR-10 — the "
          "diversification effect the\npaper discusses in §V-C-3.")


if __name__ == "__main__":
    main()
