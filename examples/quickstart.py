"""Quickstart: train RT-GCN on a simulated NASDAQ-like market.

Trains the paper's time-sensitive RT-GCN for a few epochs on the mini
NASDAQ preset, then reports the paper's metrics (MRR, IRR-1/5/10) on the
held-out test period and shows the day-by-day top-5 portfolio.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RTGCN, TrainConfig, Trainer, load_market
from repro.core import TrainerCallback
from repro.eval import ranking_metrics, run_backtest


class PrintProgress(TrainerCallback):
    """Log each epoch's mean loss as it completes."""

    def on_epoch_end(self, trainer, epoch, mean_loss):
        print(f"  epoch {epoch + 1}: loss {mean_loss:.5f}")


def main() -> None:
    print("Loading simulated NASDAQ-like market ...")
    dataset = load_market("nasdaq-mini", seed=0)
    print(f"  {dataset}")
    print(f"  industry relation ratio: "
          f"{dataset.industry_relations.relation_ratio():.1%}")
    print(f"  wiki relation ratio:     "
          f"{dataset.wiki_relations.matrix.relation_ratio():.1%}")

    print("\nBuilding RT-GCN with the time-sensitive strategy (Eq. 5) ...")
    model = RTGCN(dataset.relations, num_features=4, strategy="time",
                  relational_filters=16, rng=np.random.default_rng(0))
    print(f"  {model}")

    config = TrainConfig(window=10, epochs=5, alpha=0.1, seed=0)
    trainer = Trainer(model, dataset, config)

    print("\nTraining ...")
    result = trainer.run(callbacks=[PrintProgress()])
    print(f"  trained in {result.train_seconds:.1f}s, "
          f"scored test period in {result.test_seconds:.2f}s")

    metrics = ranking_metrics(result.predictions, result.actuals)
    print("\nTest metrics (paper Table IV row):")
    for key, value in metrics.items():
        print(f"  {key:7s} {value:+.4f}")

    backtest = run_backtest(result.predictions, result.actuals, top_n=5)
    summary = backtest.summary()
    print("\nDaily buy-sell backtest, top-5 portfolio:")
    print(f"  cumulative IRR: {summary['irr']:+.3f}")
    print(f"  sharpe:         {summary['sharpe']:+.2f}")
    print(f"  max drawdown:   {summary['max_drawdown']:.3f}")
    print(f"  hit rate:       {summary['hit_rate']:.1%}")


if __name__ == "__main__":
    main()
