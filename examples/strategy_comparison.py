"""Compare the three relation-aware strategies against the market index.

Reproduces the logic of the paper's Figure 6 on a mini market: trains
RT-GCN with the uniform (Eq. 3), weight (Eq. 4) and time-sensitive (Eq. 5)
strategies, plots their cumulative IRR-5 curves as ASCII sparklines, and
overlays the cap-weighted market-index analogue.

Run:  python examples/strategy_comparison.py
"""

import numpy as np

from repro import RTGCN, TrainConfig, Trainer, load_market
from repro.eval import irr_curve, market_index_curves, ranking_metrics

SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Render a series as a unicode sparkline."""
    if len(values) > width:
        idx = np.linspace(0, len(values) - 1, width).astype(int)
        values = values[idx]
    lo, hi = values.min(), values.max()
    span = (hi - lo) or 1.0
    return "".join(SPARK[int((v - lo) / span * (len(SPARK) - 1))]
                   for v in values)


def main() -> None:
    dataset = load_market("nasdaq-mini", seed=0)
    config = TrainConfig(window=10, epochs=5, alpha=0.1)
    print(f"Market: {dataset}\n")

    curves = {}
    for strategy in ["uniform", "weight", "time"]:
        model = RTGCN(dataset.relations, strategy=strategy,
                      relational_filters=16,
                      rng=np.random.default_rng(42))
        result = Trainer(model, dataset, config).run()
        metrics = ranking_metrics(result.predictions, result.actuals)
        curves[f"RT-GCN ({strategy[0].upper()})"] = irr_curve(
            result.predictions, result.actuals, top_n=5)
        print(f"RT-GCN ({strategy[0].upper()})  "
              + "  ".join(f"{k}={v:+.3f}" for k, v in metrics.items()))

    _, test_days = dataset.split(config.window)
    for name, curve in market_index_curves(dataset, test_days).items():
        curves[name] = curve

    print("\nCumulative IRR-5 over the test period "
          "(test window opens with the simulated crash):")
    for name, curve in curves.items():
        print(f"  {name:12s} {sparkline(np.asarray(curve))} "
              f"final {curve[-1]:+.3f}")

    strategies = [k for k in curves if k.startswith("RT-GCN")]
    indices = [k for k in curves if not k.startswith("RT-GCN")]
    best_strategy = max(strategies, key=lambda k: curves[k][-1])
    best_index = max(indices, key=lambda k: curves[k][-1])
    print(f"\nBest strategy {best_strategy} ({curves[best_strategy][-1]:+.3f})"
          f" vs best index {best_index} ({curves[best_index][-1]:+.3f})")


if __name__ == "__main__":
    main()
