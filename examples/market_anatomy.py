"""Anatomy of a simulated market and its relation-temporal graph.

Walks through the data substrate the reproduction builds in place of
Yahoo-Finance + Wikidata: the universe's sector/industry structure, the
typed relation matrix, the G_RT graph of §III-B, the planted market
dynamics (crash, factors, lead-lag spillovers), and the Figure-8-style
case study of a connected stock clique.

Run:  python examples/market_anatomy.py
"""

import numpy as np

from repro import RelationTemporalGraph, load_market
from repro.core import TrainConfig
from repro.eval import run_case_study


def main() -> None:
    dataset = load_market("nasdaq-mini", seed=3)
    universe = dataset.universe
    print(f"Universe: {len(universe)} stocks, market {dataset.market}")

    print("\nLargest industries:")
    industries = sorted(universe.industries().items(),
                        key=lambda kv: -len(kv[1]))
    for name, members in industries[:5]:
        symbols = ", ".join(universe[i].symbol for i in members[:4])
        print(f"  {name[:48]:48s} {len(members):3d} stocks ({symbols}, ...)")

    relations = dataset.relations
    print(f"\nRelation matrix: {relations.num_types} types, "
          f"{relations.edge_count()} linked pairs, "
          f"ratio {relations.relation_ratio():.1%}")
    usage = sorted(dataset.relations.type_usage().items(),
                   key=lambda kv: -kv[1])
    for name, count in usage[:6]:
        print(f"  {name[:52]:52s} {count:4d} pairs")

    grt = RelationTemporalGraph(relations, num_steps=10)
    stats = grt.stats()
    print(f"\nRelation-temporal graph over a 10-day window (Fig. 2):")
    print(f"  nodes: {stats.num_nodes}  relational edges: "
          f"{stats.num_relational_edges}  temporal edges: "
          f"{stats.num_temporal_edges}")

    sim = dataset.simulated
    _, test_days = dataset.split(10)
    crash_window = sim.market_factor[test_days[0]:test_days[0] + 10]
    normal = sim.market_factor[:test_days[0]]
    print(f"\nPlanted dynamics:")
    print(f"  normal-period market factor mean: {normal.mean():+.5f}/day")
    print(f"  crash-period market factor mean:  {crash_window.mean():+.5f}"
          "/day (the 2020/03 analogue)")
    wiki = dataset.wiki_relations
    print(f"  wiki lead-lag edges: {len(wiki.influences)}, mean strength "
          f"{np.mean([e.strength for e in wiki.influences]):.2f}")

    print("\nTraining a small RT-GCN (T) for the case study ...")
    study = run_case_study(dataset,
                           config=TrainConfig(window=10, epochs=3),
                           num_days=10)
    print(f"  clique: {', '.join(study.symbols)}")
    print(f"  industries: {sorted(set(study.industries))}")
    print("\n  predicted return-ratio heatmap (rows = stocks, cols = days,"
          "\n   '+' up / '-' down, scaled by magnitude):")
    scale = np.abs(study.predicted_heatmap).max() or 1.0
    for symbol, row in zip(study.symbols, study.predicted_heatmap):
        cells = "".join("+" if v > scale / 3 else
                        "-" if v < -scale / 3 else "." for v in row)
        print(f"    {symbol:10s} {cells}")
    print("\n  actual return-ratio heatmap:")
    scale = np.abs(study.actual_heatmap).max() or 1.0
    for symbol, row in zip(study.symbols, study.actual_heatmap):
        cells = "".join("+" if v > scale / 3 else
                        "-" if v < -scale / 3 else "." for v in row)
        print(f"    {symbol:10s} {cells}")


if __name__ == "__main__":
    main()
