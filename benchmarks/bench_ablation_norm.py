"""Extra ablation — the renormalization trick (beyond the paper's tables).

§III-C motivates adopting Kipf & Welling's renormalization
``I + D^{-1/2} A D^{-1/2} → D̃^{-1/2} Ã D̃^{-1/2}`` to avoid exploding/
vanishing gradients.  DESIGN.md lists this as a design choice worth
ablating: this bench trains RT-GCN (U) with both propagation rules and
compares.

Expectation: comparable single-layer performance (the trick matters most
for deep stacks), with the renormalized form at least as stable — the
point is to document the choice, not a dramatic win.
"""

import numpy as np
import pytest

from repro.core import RTGCN
from repro.core.relational import RelationalGraphConvolution
from repro.graph import UniformStrategy
from repro.eval import run_experiment

from _harness import (BENCH_MARKETS, BENCH_RUNS, BENCH_WORKERS,
                      bench_config, bench_dataset, format_table, metric_row,
                      publish)

MARKET = BENCH_MARKETS[0]


def make_model(dataset, renormalize, gen, num_layers=1):
    model = RTGCN(dataset.relations, strategy="uniform",
                  relational_filters=16, num_layers=num_layers, rng=gen)
    if not renormalize:
        # Swap each layer's strategy for the pre-trick propagation.
        for index in range(num_layers):
            layer = model._modules[f"layer{index}"]
            layer.relational.strategy = UniformStrategy(
                dataset.relations, renormalize=False)
    return model


def build_ablation():
    dataset = bench_dataset(MARKET)
    config = bench_config()
    outputs = {}
    for label, renorm, layers in [
        ("renormalized, 1 layer", True, 1),
        ("pre-trick, 1 layer", False, 1),
        ("renormalized, 2 layers", True, 2),
        ("pre-trick, 2 layers", False, 2),
    ]:
        outputs[label] = run_experiment(
            label,
            lambda gen, r=renorm, l=layers: make_model(dataset, r, gen, l),
            dataset, config, n_runs=BENCH_RUNS, workers=BENCH_WORKERS)
    return outputs


def test_ablation_normalization_trick(benchmark):
    outputs = benchmark.pedantic(build_ablation, rounds=1, iterations=1)
    rows = [metric_row(name, result.summary())
            for name, result in outputs.items()]
    text = format_table(
        f"Extra ablation — renormalization trick on {MARKET}",
        ["Propagation", "MRR", "IRR-1", "IRR-5", "IRR-10"], rows,
        note=("The pre-trick rule I + D^-1/2 A D^-1/2 has spectral radius "
              "up to 2 and\ncompounds across layers; the renormalized form "
              "stays bounded (§III-C)."))
    publish("ablation_norm", text)

    for result in outputs.values():
        assert all(np.isfinite(run["IRR-5"]) for run in result.runs)
