"""Table II — statistics of historical data.

Regenerates the dataset-statistics table: stocks per market and the
training/testing day counts.  Full-scale rows come from the presets
(exactly the paper's numbers); the mini rows document the scaled-down
universes the remaining benches train on.
"""

import pytest

from repro.data import MARKET_SPECS

from _harness import BENCH_MARKETS, bench_dataset, format_table, publish


def build_table2():
    rows = []
    for key in ["nasdaq", "nyse", "csi"]:
        spec = MARKET_SPECS[key]
        rows.append([spec.name, spec.num_stocks, spec.train_days,
                     spec.test_days])
    for key in BENCH_MARKETS:
        ds = bench_dataset(key)
        train, test = ds.split(10)
        rows.append([ds.market, ds.num_stocks, len(train), len(test)])
    return rows


def test_table2_dataset_statistics(benchmark):
    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    text = format_table(
        "Table II — statistics of historical data",
        ["Market", "Stocks", "Training days", "Testing days"], rows,
        note=("Full rows mirror the paper exactly (854/1405/242 stocks, "
              "1295 train days,\n207/207/139 test days); mini rows are the "
              "bench-scale presets."))
    publish("table2_datasets", text)

    by_market = {row[0]: row for row in rows}
    assert by_market["NASDAQ"][1:] == [854, 1295, 207]
    assert by_market["NYSE"][1:] == [1405, 1295, 207]
    assert by_market["CSI"][1:] == [242, 1295, 139]
    # Mini presets keep the paper's relative sizes: NYSE > NASDAQ > CSI.
    minis = [row for row in rows if row[0].endswith("mini")]
    if len(minis) == 3:
        sizes = {row[0]: row[1] for row in minis}
        assert sizes["NYSE-mini"] > sizes["NASDAQ-mini"] > sizes["CSI-mini"]
