"""Intra-run data-parallel scaling: 1/2/4 dist workers on one fit.

Runs the *same* ``Trainer.fit`` (RT-GCN on a mini market preset) with
``TrainConfig.dist_workers`` at 1, 2, and 4 — plus the plain serial
trainer (``dist_workers=0``) to price the dist loop's overhead — and
reports, per worker count:

- wall-clock speedup over the 1-worker (inline) dist run — the PR's
  acceptance floor is **1.6×** at 2 workers, enforced only when the
  host has ≥2 CPU cores; on a single core the forked workers can only
  time-slice and the honest speedup is ~1×, which the artifact records
  rather than hides,
- bitwise equality of the epoch losses AND the final ``state_dict()``
  against the 1-worker run (a parallel fit that returned *different
  numbers* would be worthless however fast — docs/distributed.md),
- per-worker executor telemetry (utilization, crash/replay counts).

Artifacts land in ``results/dist_scale.{txt,json}`` (schema-v1
envelope); set ``RTGCN_BENCH_STORE`` to tee them into the experiment
store.  Scale knobs: ``RTGCN_BENCH_EPOCHS``, ``RTGCN_BENCH_DIST_DAYS``
(training days), ``RTGCN_BENCH_DIST_DPS`` (days per optimizer step).

Run directly: ``PYTHONPATH=src python benchmarks/bench_dist_scale.py``
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import RTGCN, TrainConfig, Trainer
from repro.core.callbacks import TrainerCallback
from repro.parallel import fork_available
from repro.serve.shm import shm_available

from _harness import (BENCH_EPOCHS, BENCH_MARKETS, BENCH_SEED,
                      bench_dataset, format_table, publish, publish_result)

MARKET = BENCH_MARKETS[0]
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR_2W = 1.6
DIST_DAYS = int(os.environ.get("RTGCN_BENCH_DIST_DAYS", "24"))
DAYS_PER_STEP = int(os.environ.get("RTGCN_BENCH_DIST_DPS", "4"))


class _TelemetryCapture(TrainerCallback):
    """Snapshot the executor telemetry while the workers are still up."""

    def __init__(self):
        self.report = None

    def on_epoch_end(self, trainer, epoch, mean_loss):
        if getattr(trainer, "dist_executor", None) is not None:
            self.report = trainer.dist_executor.telemetry.report(
                kind="dist")


def fit_once(workers: int):
    """One fit at ``dist_workers=workers``; returns everything measured."""
    cfg = TrainConfig(window=6, epochs=BENCH_EPOCHS, seed=BENCH_SEED,
                      max_train_days=DIST_DAYS, dist_workers=workers,
                      dist_days_per_step=DAYS_PER_STEP)
    dataset = bench_dataset(MARKET)
    model = RTGCN(dataset.relations, strategy="uniform",
                  rng=np.random.default_rng(BENCH_SEED))
    capture = _TelemetryCapture()
    started = time.perf_counter()
    losses = Trainer(model, dataset, cfg).fit(callbacks=[capture])
    seconds = time.perf_counter() - started
    return {"losses": losses, "state": model.state_dict(),
            "seconds": seconds, "telemetry": capture.report}


def states_equal(a, b) -> bool:
    return (list(a) == list(b)
            and all(np.array_equal(a[key], b[key]) for key in a))


def main() -> None:
    if not (shm_available() and fork_available()):
        raise SystemExit("bench_dist_scale needs multiprocessing."
                         "shared_memory and the fork start method")

    serial = fit_once(0)
    print(f"serial trainer (dist_workers=0): {serial['seconds']:.1f}s")
    runs = {}
    for workers in WORKER_COUNTS:
        runs[workers] = fit_once(workers)
        print(f"{workers} dist worker(s): {runs[workers]['seconds']:.1f}s")
    reference = runs[1]

    rows = [["serial (0)", f"{serial['seconds']:.1f}", "-", "-", "-", "-"]]
    entries = []
    for workers in WORKER_COUNTS:
        run = runs[workers]
        speedup = (reference["seconds"] / run["seconds"]
                   if run["seconds"] > 0 else float("nan"))
        losses_equal = run["losses"] == reference["losses"]
        params_equal = states_equal(run["state"], reference["state"])
        telemetry = run["telemetry"].metrics if run["telemetry"] else {}
        util = telemetry.get("utilization_mean")
        rows.append([f"{workers}", f"{run['seconds']:.1f}",
                     f"{speedup:.2f}x",
                     "yes" if losses_equal and params_equal else "NO",
                     f"{util:.0%}" if util is not None else "-",
                     telemetry.get("crashes", 0)])
        entries.append({
            "workers": workers,
            "wall_seconds": run["seconds"],
            "speedup_vs_one_worker": speedup,
            "losses_equal_reference": losses_equal,
            "params_equal_reference": params_equal,
            "epoch_losses": run["losses"],
            "telemetry": run["telemetry"].to_dict()
                         if run["telemetry"] else None,
        })
        if not (losses_equal and params_equal):
            raise SystemExit(
                f"dist fit at {workers} workers diverged from the "
                "1-worker reference — the determinism contract is broken")

    cores = os.cpu_count() or 1
    floor_applies = cores >= 2
    speedup_2w = entries[1]["speedup_vs_one_worker"]
    overhead = (reference["seconds"] / serial["seconds"]
                if serial["seconds"] > 0 else float("nan"))
    floor_note = (f"acceptance floor: {SPEEDUP_FLOOR_2W}x"
                  if floor_applies else
                  f"floor {SPEEDUP_FLOOR_2W}x not enforced: host has "
                  f"{cores} CPU core, workers can only time-slice")
    table = format_table(
        f"Dist fit scaling — RT-GCN × {MARKET}, {BENCH_EPOCHS} epochs, "
        f"{DIST_DAYS} days, {DAYS_PER_STEP} days/step, {cores} CPU "
        "core(s)",
        ["dist workers", "wall s", "speedup", "== 1-worker", "util",
         "crashes"],
        rows,
        note=(f"2-worker speedup: {speedup_2w:.2f}x ({floor_note}); "
              f"dist-loop overhead vs plain serial trainer: "
              f"{overhead:.2f}x wall (different schedule: "
              f"{DAYS_PER_STEP} days/step vs 1)"))
    publish("dist_scale", table)
    publish_result("dist_scale", {
        "market": MARKET,
        "train_days": DIST_DAYS,
        "days_per_step": DAYS_PER_STEP,
        "cpu_cores": cores,
        "speedup_floor_2_workers": SPEEDUP_FLOOR_2W,
        "speedup_floor_enforced": floor_applies,
        "serial_trainer_wall_seconds": serial["seconds"],
        "scaling": entries,
    })
    print("JSON artifact: benchmarks/results/dist_scale.json")
    if floor_applies and speedup_2w < SPEEDUP_FLOOR_2W:
        raise SystemExit(
            f"2-worker speedup {speedup_2w:.2f}x is below the "
            f"{SPEEDUP_FLOOR_2W}x acceptance floor")


if __name__ == "__main__":
    main()
