"""Streaming tick latency: delta renormalization vs full recompute.

Two experiments around the time-evolving relation graph of
``docs/streaming.md``:

1. **delta vs full recompute** — replay the ``dense-500`` scenario
   (500 stocks, 3% base edge density, ~6 edge events/day plus M&A and
   listing churn) and time, per day, (a) the incremental
   :meth:`~repro.graph.DynamicNormalizedAdjacency.apply_delta` touched-row
   renormalization against (b) the production full rebuild
   (``SparseTensor.from_dense`` + ``normalize_sparse_adjacency`` over
   that day's adjacency).  The delta path must be **>= 3x** faster in
   aggregate (floor enforced at the default scenario scale) and the two
   normalized adjacencies must agree to ``<= 1e-12`` — checked every
   ``EQUIV_EVERY`` days and on the final day.

2. **online replay under the tick budget** — train a small RT-GCN,
   serve it through the blessed ``build(ServeConfig(...))`` threaded
   stack, and replay the ``default`` scenario against ``POST
   /v1/ingest`` at the default 250 ms tick budget.  The run must
   sustain **zero fallback rankings** (every tick computed fresh).

Artifacts land in ``results/stream_tick.{txt,json}``; set
``RTGCN_BENCH_STORE=/path/db.sqlite`` to tee the JSON envelope into the
experiment store.  Scale with ``RTGCN_BENCH_STREAM_SCENARIO`` /
``RTGCN_BENCH_STREAM_DAYS``.

Run directly: ``PYTHONPATH=src python benchmarks/bench_stream_tick.py``
"""

from __future__ import annotations

import json
import os
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.ckpt import save
from repro.core import RTGCN, TrainConfig, Trainer
from repro.data import StreamingMarket, get_scenario
from repro.graph import DynamicNormalizedAdjacency
from repro.graph.adjacency import normalize_sparse_adjacency
from repro.serve import ServeConfig, build
from repro.tensor import SparseTensor

from _harness import (BENCH_SEED, bench_dataset, format_table, publish,
                      publish_result)

STREAM_SCENARIO = os.environ.get("RTGCN_BENCH_STREAM_SCENARIO",
                                 "dense-500")
STREAM_DAYS = int(os.environ.get("RTGCN_BENCH_STREAM_DAYS", "0"))  # 0=all
SERVE_MARKET = os.environ.get("RTGCN_BENCH_SERVE_MARKET", "csi-mini")
#: check delta/full equivalence every K days (and always on the last)
EQUIV_EVERY = 5
#: aggregate delta-vs-full speedup floor, enforced at default scale
SPEEDUP_FLOOR = 3.0
EQUIV_TOL = 1e-12


# ---------------------------------------------------------------------
# experiment 1: per-day delta update vs production full rebuild
# ---------------------------------------------------------------------
def full_rebuild(adjacency: np.ndarray) -> SparseTensor:
    """The production from-scratch path a static server would run."""
    tilde = adjacency + np.eye(adjacency.shape[0])
    return normalize_sparse_adjacency(SparseTensor.from_dense(tilde))


def sparse_to_dense(tensor: SparseTensor) -> np.ndarray:
    pattern = tensor.pattern
    dense = np.zeros(pattern.shape)
    dense[pattern.rows, pattern.indices] = tensor.values.data
    return dense


def run_delta_vs_full() -> dict:
    overrides = {"num_days": STREAM_DAYS} if STREAM_DAYS else {}
    scenario = get_scenario(STREAM_SCENARIO, **overrides)
    market = StreamingMarket(scenario)
    dynamic = DynamicNormalizedAdjacency(market.base_adjacency(),
                                         mode="csr")
    delta_s, full_s = [], []
    edits = touched = 0
    max_diff = 0.0
    days = list(market.replay())
    for events in days:
        t0 = time.perf_counter()
        touched += dynamic.apply_delta(events.deltas)
        delta_s.append(time.perf_counter() - t0)
        edits += len(events.deltas)

        adjacency = market.adjacency_at(events.day)
        t0 = time.perf_counter()
        rebuilt = full_rebuild(adjacency)
        full_s.append(time.perf_counter() - t0)

        last = events.day == days[-1].day
        if events.day % EQUIV_EVERY == 0 or last:
            diff = float(np.abs(dynamic.normalized_dense()
                                - sparse_to_dense(rebuilt)).max())
            max_diff = max(max_diff, diff)
            assert diff <= EQUIV_TOL, (
                f"delta drifted from full recompute on day {events.day}: "
                f"max |diff| = {diff:.3e} > {EQUIV_TOL}")
    delta_total, full_total = sum(delta_s), sum(full_s)
    return {
        "scenario": scenario.to_dict(),
        "fingerprint": scenario.fingerprint(),
        "days": len(days),
        "edge_edits": edits,
        "rows_touched": touched,
        "delta_tick_ms": {
            "mean": float(np.mean(delta_s)) * 1e3,
            "p99": float(np.percentile(delta_s, 99.0)) * 1e3,
            "max": float(np.max(delta_s)) * 1e3},
        "full_tick_ms": {
            "mean": float(np.mean(full_s)) * 1e3,
            "p99": float(np.percentile(full_s, 99.0)) * 1e3,
            "max": float(np.max(full_s)) * 1e3},
        "speedup": full_total / delta_total if delta_total else float("nan"),
        "events_per_second": edits / delta_total if delta_total else 0.0,
        "max_equivalence_diff": max_diff,
        "graph": dynamic.stats(),
    }


# ---------------------------------------------------------------------
# experiment 2: online replay through the serving stack (tick budget)
# ---------------------------------------------------------------------
def train_servable_checkpoint(directory: Path) -> Path:
    dataset = bench_dataset(SERVE_MARKET)
    config = TrainConfig(window=10, epochs=1, max_train_days=20,
                         seed=BENCH_SEED)
    model = RTGCN(dataset.relations, num_features=config.num_features,
                  strategy="time", rng=np.random.default_rng(BENCH_SEED))
    trainer = Trainer(model, dataset, config)
    trainer.run()
    checkpoint = trainer.state_dict()
    checkpoint.metadata = {"model": "RT-GCN (T)", "market": SERVE_MARKET}
    return save(checkpoint, directory / "best.npz")


def run_online_replay(ckpt_dir: Path) -> dict:
    handle = build(ServeConfig(checkpoint_dir=str(ckpt_dir), port=0))
    handle.start()
    try:
        host, port = handle.address
        base = f"http://{host}:{port}"
        with urllib.request.urlopen(base + "/v1/scores",
                                    timeout=60) as resp:
            universe = len(json.load(resp)["scores"])
        scenario = get_scenario("default", num_stocks=universe)
        market = StreamingMarket(scenario)
        ticks = fallbacks = overruns = edits = 0
        latencies = []
        last = None
        for events in market.replay():
            body = json.dumps(events.to_payload()).encode("utf-8")
            request = urllib.request.Request(
                base + "/v1/ingest", data=body,
                headers={"Content-Type": "application/json"},
                method="POST")
            t0 = time.perf_counter()
            with urllib.request.urlopen(request, timeout=60) as resp:
                last = json.load(resp)
            latencies.append(time.perf_counter() - t0)
            ticks += 1
            fallbacks += int(bool(last["fallback"]))
            overruns += int(bool(last["overrun"]))
            edits += int(last["applied_edits"])
    finally:
        handle.close()
    return {
        "scenario": "default",
        "universe": universe,
        "tick_budget_ms": handle.config.tick_budget_ms,
        "ticks": ticks,
        "fallbacks": fallbacks,
        "overruns": overruns,
        "applied_edits": edits,
        "tick_ms": {
            "mean": float(np.mean(latencies)) * 1e3,
            "p99": float(np.percentile(latencies, 99.0)) * 1e3,
            "max": float(np.max(latencies)) * 1e3},
        "graph": (last or {}).get("graph", {}),
    }


def main() -> None:
    import tempfile

    kernel = run_delta_vs_full()
    with tempfile.TemporaryDirectory(prefix="bench-stream-") as tmp:
        ckpt_dir = Path(tmp)
        train_servable_checkpoint(ckpt_dir)
        online = run_online_replay(ckpt_dir)

    n = kernel["scenario"]["num_stocks"]
    rows = [
        ["delta update", kernel["days"], kernel["edge_edits"],
         kernel["delta_tick_ms"]["mean"], kernel["delta_tick_ms"]["p99"],
         kernel["delta_tick_ms"]["max"]],
        ["full recompute", kernel["days"], kernel["edge_edits"],
         kernel["full_tick_ms"]["mean"], kernel["full_tick_ms"]["p99"],
         kernel["full_tick_ms"]["max"]],
        ["online /v1/ingest", online["ticks"], online["applied_edits"],
         online["tick_ms"]["mean"], online["tick_ms"]["p99"],
         online["tick_ms"]["max"]],
    ]
    note = (f"delta/full speedup: {kernel['speedup']:.1f}x "
            f"(floor: {SPEEDUP_FLOOR:.0f}x at {n} stocks), "
            f"{kernel['events_per_second']:.0f} edge events/s, "
            f"max equivalence diff {kernel['max_equivalence_diff']:.1e}; "
            f"online: {online['fallbacks']} fallback(s) of "
            f"{online['ticks']} tick(s) at the "
            f"{online['tick_budget_ms']:.0f}ms budget")
    table = format_table(
        f"Streaming tick latency — {STREAM_SCENARIO} scenario "
        f"({n} stocks), online replay on {SERVE_MARKET}",
        ["path", "ticks", "edits", "mean ms", "p99 ms", "max ms"],
        rows, note=note)
    publish("stream_tick", table)
    publish_result("stream_tick", {
        "delta_vs_full": kernel,
        "online_replay": online,
        "speedup_floor": SPEEDUP_FLOOR,
        "equivalence_tolerance": EQUIV_TOL,
    })
    print("JSON artifact: benchmarks/results/stream_tick.json")

    # The 3x floor is calibrated for the default dense-500 scenario;
    # scaled-down smoke runs record but don't enforce.
    if STREAM_SCENARIO == "dense-500" and not STREAM_DAYS:
        assert kernel["speedup"] >= SPEEDUP_FLOOR, (
            f"delta update only {kernel['speedup']:.2f}x faster than the "
            f"full recompute (floor: {SPEEDUP_FLOOR}x)")
    assert online["fallbacks"] == 0, (
        f"{online['fallbacks']} fallback ranking(s) served at the default "
        f"{online['tick_budget_ms']:.0f}ms tick budget")
    print(f"stream tick bench OK: delta {kernel['speedup']:.1f}x, "
          f"{kernel['events_per_second']:.0f} events/s, "
          f"0 fallbacks online")


if __name__ == "__main__":
    main()
