"""Figure 6 — cumulative return curves of the three strategies vs indices.

Trains RT-GCN (U/W/T) once per strategy and traces the cumulative IRR-1 /
IRR-5 / IRR-10 curves across the test period, together with the market
index analogues (DJI / S&P 500 for US-style markets, CSI 300 for the CSI
market).

Paper shape targets:
- IRR-1 is far noisier (higher daily variance) than IRR-5 and IRR-10 —
  single-stock bets lack diversification (§V-C-3);
- the strategies finish above the market index.
"""

import numpy as np
import pytest

from repro.core import RTGCN, Trainer
from repro.eval import irr_curve, market_index_curves

from _harness import (BENCH_MARKETS, bench_config, bench_dataset,
                      format_table, publish)

MARKET = BENCH_MARKETS[0]
STRATEGIES = ["uniform", "weight", "time"]


def build_curves():
    dataset = bench_dataset(MARKET)
    config = bench_config()
    curves = {}
    volatility = {}
    for strategy in STRATEGIES:
        label = f"RT-GCN ({strategy[0].upper()})"
        model = RTGCN(dataset.relations, strategy=strategy,
                      relational_filters=16,
                      rng=np.random.default_rng(7))
        result = Trainer(model, dataset, config).run()
        for top_n in (1, 5, 10):
            curve = irr_curve(result.predictions, result.actuals, top_n)
            curves[f"{label} IRR-{top_n}"] = curve
            daily = np.diff(np.concatenate([[0.0], curve]))
            volatility[f"{label} IRR-{top_n}"] = float(daily.std())
    _, test_days = dataset.split(config.window)
    for name, curve in market_index_curves(dataset, test_days).items():
        curves[f"index {name}"] = np.asarray(curve)
    return curves, volatility


def test_fig6_return_curves(benchmark):
    curves, volatility = benchmark.pedantic(build_curves, rounds=1,
                                            iterations=1)
    sample_points = np.linspace(0, len(next(iter(curves.values()))) - 1,
                                8).astype(int)
    rows = []
    for name, curve in curves.items():
        sampled = [float(curve[i]) for i in sample_points]
        rows.append([name] + [f"{v:+.2f}" for v in sampled])
    headers = ["Series"] + [f"d{int(i)}" for i in sample_points]
    vol_note = "\n".join(
        f"daily volatility {name}: {vol:.4f}"
        for name, vol in sorted(volatility.items()))
    text = format_table(
        f"Figure 6 — cumulative IRR over the {MARKET} test period",
        headers, rows, note=vol_note)
    publish("fig6_returns", text)

    # Shape 1: IRR-1 is the noisiest series for every strategy.
    for strategy in STRATEGIES:
        label = f"RT-GCN ({strategy[0].upper()})"
        assert volatility[f"{label} IRR-1"] > volatility[f"{label} IRR-10"]
    # Shape 2: the best strategy finishes above the market index.
    index_final = max(curve[-1] for name, curve in curves.items()
                      if name.startswith("index"))
    best_final = max(curve[-1] for name, curve in curves.items()
                     if not name.startswith("index"))
    assert best_final > index_final
