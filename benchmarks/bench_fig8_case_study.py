"""Figure 8 — qualitative case study of a connected 5-stock clique.

Trains RT-GCN (T), extracts the four panels of the paper's Figure 8 for a
well-connected 5-stock subgraph: (a) learned edge weights, (b) stock
metadata, (c) the predicted daily return-ratio heatmap over roughly one
month of the test period, (d) the normalized ground-truth prices.

Shape target: the sign of the predicted daily return agrees with the
realized direction more often than coin-flipping, i.e. panel (c) tracks
panel (d)'s movements as in the paper's March 4 / March 16 observations.
"""

import numpy as np
import pytest

from repro.eval import run_case_study

from _harness import (BENCH_MARKETS, bench_config, bench_dataset,
                      format_table, publish)

MARKET = BENCH_MARKETS[0]


def build_case_study():
    dataset = bench_dataset(MARKET)
    return run_case_study(dataset, config=bench_config(), num_days=22,
                          seed=0)


def test_fig8_case_study(benchmark):
    study = benchmark.pedantic(build_case_study, rounds=1, iterations=1)

    rows = []
    for i, symbol in enumerate(study.symbols):
        weights = " ".join(f"{w:+.2f}" for w in study.edge_weights[i])
        rows.append([symbol, study.industries[i][:40], weights])
    meta = format_table(
        f"Figure 8(a,b) — clique metadata and learned edge weights "
        f"({MARKET})",
        ["Symbol", "Industry", "Edge weights (row of 5)"], rows)

    def heat(matrix):
        scale = np.abs(matrix).max() or 1.0
        lines = []
        for symbol, row in zip(study.symbols, matrix):
            cells = "".join("+" if v > scale / 3 else
                            "-" if v < -scale / 3 else "." for v in row)
            lines.append(f"  {symbol:10s} {cells}")
        return "\n".join(lines)

    text = (meta + "\n\nFigure 8(c) — predicted return-ratio heatmap "
            "(22 test days):\n" + heat(study.predicted_heatmap)
            + "\n\nGround-truth return-ratio heatmap:\n"
            + heat(study.actual_heatmap)
            + "\n\nFigure 8(d) — normalized prices (first -> last day):\n"
            + "\n".join(f"  {s:10s} {p[0]:.2f} -> {p[-1]:.2f}"
                        for s, p in zip(study.symbols,
                                        study.normalized_prices)))
    publish("fig8_case_study", text)

    # Clique is actually connected.
    off_diagonal = study.relation_kinds[~np.eye(5, dtype=bool)]
    assert off_diagonal.sum() > 0
    # Directional agreement between predictions and realized returns
    # beats coin-flipping on average.
    agreement = np.mean(np.sign(study.predicted_heatmap)
                        == np.sign(study.actual_heatmap))
    assert agreement > 0.40, f"directional agreement only {agreement:.2f}"
