"""Serving load test: micro-batching, cluster scale-out, and SLO search.

Trains a small RT-GCN, checkpoints it, and drives the serving stack —
built exclusively through the blessed ``build(ServeConfig(...))`` path —
in three experiments:

1. **closed-loop in-process** (batch1 vs batched): each client thread
   issues its next request as soon as the previous one returns; the
   headline is the micro-batching throughput ratio (floor: **3×**).
2. **closed-loop over HTTP** (threaded vs cluster): the same saturating
   load against the real listener, once for the single-process threaded
   server and once for the forked shared-memory cluster.  On hosts with
   ≥2 CPU cores the cluster must beat the threaded baseline at the same
   p99 SLO; on 1-core hosts the numbers are recorded but not enforced
   (workers can only time-slice).
3. **open-loop SLO search** (cluster): requests are issued on a fixed
   schedule regardless of completions — the honest arrival model — and
   the offered rate steps up until p99 exceeds the 50 ms budget.  The
   result is the **max sustainable QPS under SLO**.

Artifacts land in ``results/serving.json`` (schema-v1 envelope); set
``RTGCN_BENCH_STORE=/path/db.sqlite`` to also record the report and one
``slo`` row per HTTP mode in the experiment store.  Scale the load with
``RTGCN_BENCH_SERVE_CLIENTS`` / ``_SECONDS``.

Run directly: ``PYTHONPATH=src python benchmarks/bench_serving.py``
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.ckpt import save
from repro.core import RTGCN, TrainConfig, Trainer
from repro.serve import ServeConfig, build

from _harness import (BENCH_SEED, bench_dataset, format_table, publish,
                      publish_result)

SERVE_CLIENTS = int(os.environ.get("RTGCN_BENCH_SERVE_CLIENTS", "8"))
SERVE_SECONDS = float(os.environ.get("RTGCN_BENCH_SERVE_SECONDS", "3.0"))
SERVE_MARKET = os.environ.get("RTGCN_BENCH_SERVE_MARKET", "csi-mini")
SERVE_STORE = os.environ.get("RTGCN_BENCH_STORE", "")
SLO_P99_MS = float(os.environ.get("RTGCN_BENCH_SERVE_SLO_MS", "50.0"))
CLUSTER_WORKERS = int(os.environ.get("RTGCN_BENCH_SERVE_WORKERS", "2"))
OPEN_LOOP_QPS_STEPS = tuple(
    float(q) for q in os.environ.get(
        "RTGCN_BENCH_SERVE_QPS_STEPS",
        "5,10,20,40,80,160").split(","))


def train_servable_checkpoint(directory: Path) -> Path:
    """One briefly-trained RT-GCN archive with serving metadata."""
    dataset = bench_dataset(SERVE_MARKET)
    config = TrainConfig(window=10, epochs=1, max_train_days=20,
                        seed=BENCH_SEED)
    model = RTGCN(dataset.relations, num_features=config.num_features,
                  strategy="time", rng=np.random.default_rng(BENCH_SEED))
    trainer = Trainer(model, dataset, config)
    trainer.run()
    checkpoint = trainer.state_dict()
    checkpoint.metadata = {"model": "RT-GCN (T)", "market": SERVE_MARKET}
    return save(checkpoint, directory / "best.npz")


# ---------------------------------------------------------------------
# experiment 1: in-process closed loop (micro-batching ratio)
# ---------------------------------------------------------------------
def closed_loop_service(service, clients: int, seconds: float) -> dict:
    """Drive the service facade at saturation; every client re-requests
    on completion.  All clients ask for the same latest top-10 ranking —
    the production-shaped hot spot micro-batching exists for."""
    stop = time.perf_counter() + seconds
    counts = [0] * clients
    failures = [0] * clients

    def client(index: int) -> None:
        while time.perf_counter() < stop:
            try:
                service.top_k(k=10)
                counts[index] += 1
            except Exception:
                failures[index] += 1

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    snapshot = service.telemetry.snapshot()
    return {
        "clients": clients,
        "duration_seconds": elapsed,
        "completed_requests": sum(counts),
        "failed_requests": sum(failures),
        "throughput_rps": sum(counts) / elapsed,
        "latency_seconds": snapshot["latency_seconds"],
        "queue_depth": snapshot["queue_depth"],
        "mean_batch_size": snapshot["mean_batch_size"],
        "batch_size_histogram": snapshot["batch_size_histogram"],
        "batches": snapshot["batches"],
        "forward_seconds": snapshot["forward_seconds"],
    }


def run_inprocess_mode(ckpt_dir: Path, label: str, max_batch: int,
                       max_wait_ms: float, workers: int) -> dict:
    handle = build(ServeConfig(checkpoint_dir=str(ckpt_dir), port=0,
                               max_batch=max_batch,
                               max_wait_ms=max_wait_ms,
                               batch_workers=workers))
    try:
        handle.service.top_k(k=10)             # warm model + caches
        result = closed_loop_service(handle.service, SERVE_CLIENTS,
                                     SERVE_SECONDS)
    finally:
        handle.close()
    result["mode"] = label
    result["max_batch"] = max_batch
    result["max_wait_ms"] = max_wait_ms
    result["workers"] = workers
    return result


# ---------------------------------------------------------------------
# experiment 2: HTTP closed loop (threaded vs cluster)
# ---------------------------------------------------------------------
def _http_get(base: str, path: str, timeout: float = 60.0) -> dict:
    with urllib.request.urlopen(base + path, timeout=timeout) as resp:
        return json.load(resp)


def closed_loop_http(base: str, clients: int, seconds: float) -> dict:
    stop = time.perf_counter() + seconds
    counts = [0] * clients
    failures = [0] * clients
    latencies: list = [[] for _ in range(clients)]

    def client(index: int) -> None:
        while time.perf_counter() < stop:
            started = time.perf_counter()
            try:
                _http_get(base, "/v1/top_k?k=10")
                counts[index] += 1
                latencies[index].append(time.perf_counter() - started)
            except Exception:
                failures[index] += 1

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    flat = sorted(x for per_client in latencies for x in per_client)

    def pct(q: float) -> float:
        if not flat:
            return float("nan")
        return flat[min(len(flat) - 1, int(q * len(flat)))]

    return {
        "clients": clients,
        "duration_seconds": elapsed,
        "completed_requests": sum(counts),
        "failed_requests": sum(failures),
        "throughput_rps": sum(counts) / elapsed,
        "latency_seconds": {"count": len(flat), "p50": pct(0.50),
                            "p95": pct(0.95), "p99": pct(0.99)},
    }


def run_http_mode(ckpt_dir: Path, mode: str, workers: int,
                  store_path: str) -> dict:
    handle = build(ServeConfig(
        checkpoint_dir=str(ckpt_dir), port=0, mode=mode,
        cluster_workers=workers, slo_p99_ms=SLO_P99_MS,
        store=store_path or None))
    handle.start()
    try:
        host, port = handle.address
        base = f"http://{host}:{port}"
        _http_get(base, "/v1/top_k?k=10")      # warm
        result = closed_loop_http(base, SERVE_CLIENTS, SERVE_SECONDS)
    finally:
        handle.close()                          # persists SLO row if store
    result["mode"] = f"http-{mode}"
    result["workers"] = workers if mode == "cluster" else 1
    return result


# ---------------------------------------------------------------------
# experiment 3: open-loop SLO search (max sustainable QPS, p99 < SLO)
# ---------------------------------------------------------------------
def open_loop_step(base: str, qps: float, seconds: float) -> dict:
    """Issue requests on a fixed schedule (no coordination with
    completions) and measure the real latency distribution.  Requests
    that would start late count as issued-late but still run — the
    classic coordinated-omission fix."""
    total = max(1, int(qps * seconds))
    interval = 1.0 / qps
    latencies: list = []
    failures = [0]
    lock = threading.Lock()
    threads = []

    def fire() -> None:
        started = time.perf_counter()
        try:
            _http_get(base, "/v1/top_k?k=10")
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
        except Exception:
            with lock:
                failures[0] += 1

    t0 = time.perf_counter()
    for i in range(total):
        delay = t0 + i * interval - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(target=fire)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=60)
    flat = sorted(latencies)

    def pct(q: float) -> float:
        if not flat:
            return float("nan")
        return flat[min(len(flat) - 1, int(q * len(flat)))]

    return {"offered_qps": qps, "issued": total,
            "completed": len(flat), "failed": failures[0],
            "p50_ms": pct(0.50) * 1000.0, "p99_ms": pct(0.99) * 1000.0}


def run_open_loop(ckpt_dir: Path) -> dict:
    handle = build(ServeConfig(
        checkpoint_dir=str(ckpt_dir), port=0, mode="cluster",
        cluster_workers=CLUSTER_WORKERS, slo_p99_ms=SLO_P99_MS))
    handle.start()
    steps = []
    sustainable = None
    try:
        host, port = handle.address
        base = f"http://{host}:{port}"
        _http_get(base, "/v1/top_k?k=10")      # warm
        for qps in OPEN_LOOP_QPS_STEPS:
            step = open_loop_step(base, qps, SERVE_SECONDS)
            steps.append(step)
            within = (step["failed"] == 0
                      and step["p99_ms"] < SLO_P99_MS)
            step["within_slo"] = within
            if within:
                sustainable = qps
            else:
                break
    finally:
        handle.close()
    return {"mode": "open-loop-cluster", "workers": CLUSTER_WORKERS,
            "slo_p99_ms": SLO_P99_MS, "steps": steps,
            "max_sustainable_qps": sustainable}


def main() -> None:
    import tempfile

    cores = os.cpu_count() or 1
    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        ckpt_dir = Path(tmp)
        train_servable_checkpoint(ckpt_dir)

        baseline = run_inprocess_mode(ckpt_dir, "batch1", max_batch=1,
                                      max_wait_ms=0.0, workers=1)
        batched = run_inprocess_mode(ckpt_dir, "batched", max_batch=64,
                                     max_wait_ms=5.0, workers=1)
        http_threaded = run_http_mode(ckpt_dir, "threaded", 1,
                                      SERVE_STORE)
        http_cluster = run_http_mode(ckpt_dir, "cluster",
                                     CLUSTER_WORKERS, SERVE_STORE)
        open_loop = run_open_loop(ckpt_dir)

    speedup = (batched["throughput_rps"] / baseline["throughput_rps"]
               if baseline["throughput_rps"] > 0 else float("nan"))
    cluster_gain = (http_cluster["throughput_rps"]
                    / http_threaded["throughput_rps"]
                    if http_threaded["throughput_rps"] > 0
                    else float("nan"))
    floor_applies = cores >= 2

    rows = []
    for result in (baseline, batched, http_threaded, http_cluster):
        latency = result["latency_seconds"]
        rows.append([result["mode"], result["completed_requests"],
                     result["throughput_rps"],
                     latency["p50"] * 1000.0, latency["p95"] * 1000.0,
                     latency["p99"] * 1000.0,
                     result.get("mean_batch_size", float("nan"))])
    note = (f"batched/batch1 throughput: {speedup:.1f}x (floor: 3x); "
            f"cluster/threaded over HTTP: {cluster_gain:.2f}x "
            f"({cores} core(s), floor "
            f"{'applies' if floor_applies else 'recorded only'}); "
            f"open-loop max sustainable: "
            f"{open_loop['max_sustainable_qps']} qps @ p99 < "
            f"{SLO_P99_MS:.0f}ms")
    table = format_table(
        f"Serving load test — {SERVE_CLIENTS} closed-loop clients, "
        f"{SERVE_SECONDS:.0f}s per mode ({SERVE_MARKET})",
        ["mode", "requests", "rps", "p50 ms", "p95 ms", "p99 ms",
         "mean batch"],
        rows, note=note)
    publish("serving", table)
    publish_result("serving", {
        "market": SERVE_MARKET,
        "model": "RT-GCN (T)",
        "cpu_cores": cores,
        "throughput_speedup": speedup,
        "cluster_over_threaded": cluster_gain,
        "slo_p99_ms": SLO_P99_MS,
        "max_sustainable_qps": open_loop["max_sustainable_qps"],
        "modes": [baseline, batched, http_threaded, http_cluster],
        "open_loop": open_loop,
    })
    print("JSON artifact: benchmarks/results/serving.json")

    # The 3x micro-batching floor is calibrated for the default load
    # (8 clients, 3s); scaled-down smoke runs record but don't enforce.
    if SERVE_CLIENTS >= 8 and SERVE_SECONDS >= 3.0:
        assert speedup >= 3.0, (
            f"micro-batching speedup {speedup:.2f}x below the 3x floor")
    if floor_applies:
        assert cluster_gain >= 1.0, (
            f"cluster ({CLUSTER_WORKERS} workers) slower than threaded "
            f"at the same SLO on a {cores}-core host: {cluster_gain:.2f}x")
        assert open_loop["max_sustainable_qps"] is not None, (
            f"cluster never met p99 < {SLO_P99_MS:.0f}ms at the lowest "
            f"offered rate {OPEN_LOOP_QPS_STEPS[0]} qps")
    print(f"serving bench OK: batching {speedup:.1f}x, "
          f"cluster {cluster_gain:.2f}x, sustainable "
          f"{open_loop['max_sustainable_qps']} qps")


if __name__ == "__main__":
    main()
