"""Serving load test: micro-batched throughput vs the unbatched baseline.

Trains a small RT-GCN, checkpoints it, boots a :class:`RankingService`
over the archive, and drives it with a closed-loop load generator (each
client thread issues its next request as soon as the previous one
returns) in two configurations:

- **batch1** — ``max_batch=1, max_wait_ms=0``: one forward per request,
  the baseline any serving stack degenerates to without coalescing;
- **batched** — the default micro-batching window, where concurrent
  requests for the same ``(version, day)`` share a forward.

The headline number is the throughput ratio between the two; the PR's
acceptance floor is **3×**.  Full latency percentiles (p50/p95/p99),
queue-depth distribution, and the batch-size histogram land in
``results/serving.json`` (schema-v1 envelope) next to the paper-table
artifacts; set ``RTGCN_BENCH_SERVE_CLIENTS`` / ``_SECONDS`` to scale the
load.

Run directly: ``PYTHONPATH=src python benchmarks/bench_serving.py``
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.ckpt import save
from repro.core import RTGCN, TrainConfig, Trainer
from repro.serve import ModelRegistry, RankingService

from _harness import (BENCH_SEED, bench_dataset, format_table, publish,
                      publish_result)

SERVE_CLIENTS = int(os.environ.get("RTGCN_BENCH_SERVE_CLIENTS", "8"))
SERVE_SECONDS = float(os.environ.get("RTGCN_BENCH_SERVE_SECONDS", "3.0"))
SERVE_MARKET = os.environ.get("RTGCN_BENCH_SERVE_MARKET", "csi-mini")


def train_servable_checkpoint(directory: Path) -> Path:
    """One briefly-trained RT-GCN archive with serving metadata."""
    dataset = bench_dataset(SERVE_MARKET)
    config = TrainConfig(window=10, epochs=1, max_train_days=20,
                        seed=BENCH_SEED)
    model = RTGCN(dataset.relations, num_features=config.num_features,
                  strategy="time", rng=np.random.default_rng(BENCH_SEED))
    trainer = Trainer(model, dataset, config)
    trainer.run()
    checkpoint = trainer.state_dict()
    checkpoint.metadata = {"model": "RT-GCN (T)", "market": SERVE_MARKET}
    return save(checkpoint, directory / "best.npz")


def closed_loop(service: RankingService, clients: int,
                seconds: float) -> dict:
    """Drive the service at saturation; every client re-requests on
    completion.  All clients ask for the same latest top-10 ranking —
    the production-shaped hot spot micro-batching exists for."""
    stop = time.perf_counter() + seconds
    counts = [0] * clients
    failures = [0] * clients

    def client(index: int) -> None:
        while time.perf_counter() < stop:
            try:
                service.top_k(k=10)
                counts[index] += 1
            except Exception:
                failures[index] += 1

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    snapshot = service.telemetry.snapshot()
    return {
        "clients": clients,
        "duration_seconds": elapsed,
        "completed_requests": sum(counts),
        "failed_requests": sum(failures),
        "throughput_rps": sum(counts) / elapsed,
        "latency_seconds": snapshot["latency_seconds"],
        "queue_depth": snapshot["queue_depth"],
        "mean_batch_size": snapshot["mean_batch_size"],
        "batch_size_histogram": snapshot["batch_size_histogram"],
        "batches": snapshot["batches"],
        "forward_seconds": snapshot["forward_seconds"],
    }


def run_mode(ckpt_dir: Path, label: str, max_batch: int,
             max_wait_ms: float, workers: int) -> dict:
    service = RankingService(ModelRegistry(ckpt_dir),
                             max_batch=max_batch,
                             max_wait_ms=max_wait_ms, workers=workers)
    try:
        service.top_k(k=10)                    # warm model + caches
        result = closed_loop(service, SERVE_CLIENTS, SERVE_SECONDS)
    finally:
        service.close()
    result["mode"] = label
    result["max_batch"] = max_batch
    result["max_wait_ms"] = max_wait_ms
    result["workers"] = workers
    return result


def main() -> None:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        ckpt_dir = Path(tmp)
        train_servable_checkpoint(ckpt_dir)
        baseline = run_mode(ckpt_dir, "batch1", max_batch=1,
                            max_wait_ms=0.0, workers=1)
        batched = run_mode(ckpt_dir, "batched", max_batch=64,
                           max_wait_ms=5.0, workers=1)

    speedup = (batched["throughput_rps"] / baseline["throughput_rps"]
               if baseline["throughput_rps"] > 0 else float("nan"))

    rows = []
    for result in (baseline, batched):
        latency = result["latency_seconds"]
        rows.append([result["mode"], result["completed_requests"],
                     result["throughput_rps"],
                     latency["p50"] * 1000.0, latency["p95"] * 1000.0,
                     latency["p99"] * 1000.0,
                     result["mean_batch_size"]])
    table = format_table(
        f"Serving load test — {SERVE_CLIENTS} closed-loop clients, "
        f"{SERVE_SECONDS:.0f}s per mode ({SERVE_MARKET})",
        ["mode", "requests", "rps", "p50 ms", "p95 ms", "p99 ms",
         "mean batch"],
        rows,
        note=f"batched/batch1 throughput: {speedup:.1f}x "
             f"(acceptance floor: 3x)")
    publish("serving", table)
    publish_result("serving", {
        "market": SERVE_MARKET,
        "model": "RT-GCN (T)",
        "throughput_speedup": speedup,
        "modes": [baseline, batched],
    })
    print(f"JSON artifact: benchmarks/results/serving.json")


if __name__ == "__main__":
    main()
