"""Table III — statistics of wiki-relation and industry-relation data.

Regenerates the relation-statistics table: number of relation types and
relation ratio per market and per relation source.  Full-scale rows use
the universe generator directly (NASDAQ-sized; the NYSE dense relation
tensor would need ~2 GB, so its industry ratio is computed exactly from
the group sizes instead — the statistic is identical).
"""

import numpy as np
import pytest

from repro.data import (MARKET_SPECS, allocate_group_sizes,
                        build_industry_relations, build_wiki_relations,
                        generate_universe, pair_ratio_of_sizes)

from _harness import BENCH_MARKETS, bench_dataset, format_table, publish


def build_table3():
    rows = []
    # Full NASDAQ: materialize the real tensors (fits in memory).
    rng = np.random.default_rng(0)
    nasdaq = MARKET_SPECS["nasdaq"]
    universe = generate_universe(nasdaq.name, nasdaq.num_stocks,
                                 nasdaq.num_industries,
                                 nasdaq.industry_pair_ratio, rng=rng)
    industry = build_industry_relations(universe)
    wiki = build_wiki_relations(universe, nasdaq.wiki_types,
                                nasdaq.wiki_pair_ratio, rng=rng)
    rows.append(["NASDAQ", wiki.matrix.num_types,
                 wiki.matrix.relation_ratio(), industry.num_types,
                 industry.relation_ratio()])
    # Full NYSE / CSI: exact ratios from group-size arithmetic (the dense
    # (N, N, K) tensor would be multi-GB).
    for key in ["nyse", "csi"]:
        spec = MARKET_SPECS[key]
        sizes = allocate_group_sizes(spec.num_stocks, spec.num_industries,
                                     spec.industry_pair_ratio)
        industry_ratio = pair_ratio_of_sizes(sizes, spec.num_stocks)
        rows.append([spec.name, spec.wiki_types,
                     spec.wiki_pair_ratio if spec.wiki_types else None,
                     spec.num_industries, industry_ratio])
    # Bench-scale empirical rows.
    for key in BENCH_MARKETS:
        ds = bench_dataset(key)
        wiki_types = wiki_ratio = None
        if ds.wiki_relations is not None:
            wiki_types = ds.wiki_relations.matrix.num_types
            wiki_ratio = ds.wiki_relations.matrix.relation_ratio()
        rows.append([ds.market, wiki_types, wiki_ratio,
                     ds.industry_relations.num_types,
                     ds.industry_relations.relation_ratio()])
    return rows


def test_table3_relation_statistics(benchmark):
    rows = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    text = format_table(
        "Table III — wiki-relation and industry-relation statistics",
        ["Market", "Wiki types", "Wiki ratio", "Industry types",
         "Industry ratio"], rows,
        note=("Paper targets: NASDAQ 41/0.3%/97/5.4%, NYSE 28/0.4%/108/"
              "6.9%, CSI -/-/24/6.7%.\nCSI has no wiki relations, exactly "
              "as in the paper."))
    publish("table3_relations", text)

    by_market = {row[0]: row for row in rows}
    nasdaq = by_market["NASDAQ"]
    assert nasdaq[1] == 41
    assert abs(nasdaq[2] - 0.003) < 0.001
    assert nasdaq[3] == 97
    assert abs(nasdaq[4] - 0.054) < 0.01
    nyse = by_market["NYSE"]
    assert nyse[1] == 28 and nyse[3] == 108
    assert abs(nyse[4] - 0.069) < 0.01
    csi = by_market["CSI"]
    assert csi[1] is None and csi[3] == 24
    assert abs(csi[4] - 0.067) < 0.01
