"""Parallel sweep scaling: 1/2/4 workers on a Table-IV mini matrix.

Runs the same (model × market × seed) sweep through
:func:`repro.parallel.run_experiments_parallel` at 1, 2, and 4 workers
and reports, per worker count:

- wall-clock speedup over the serial sweep (the PR's acceptance floor is
  **1.6×** at 2 workers — enforced only when the host has ≥2 CPU cores;
  on a single core the workers necessarily time-slice and the honest
  speedup is ~1×, which the artifact records rather than hides),
- bitwise metric equality against the serial results (NaN-aware — a
  parallel sweep that returned *different numbers* would be worthless
  however fast),
- executor telemetry (utilization, retries, crashes, max queue depth).

It also demonstrates the fault-tolerance contract end to end: a child
process running the sweep with a ``resume_dir`` journal is SIGKILLed
mid-sweep, and the re-invocation completes only the missing runs while
still matching the serial metrics exactly.

Artifacts land in ``results/parallel_scale.{txt,json}`` (schema-v1
envelope).  Scale knobs: ``RTGCN_BENCH_EPOCHS``, ``RTGCN_BENCH_RUNS``,
``RTGCN_BENCH_SWEEP_MODELS``.

Run directly: ``PYTHONPATH=src python benchmarks/bench_parallel_scale.py``
"""

from __future__ import annotations

import json
import math
import os
import signal
import time

import numpy as np

from repro.parallel import fork_available, run_experiments_parallel

from _harness import (BENCH_EPOCHS, BENCH_MARKETS, BENCH_RUNS, BENCH_SEED,
                      bench_config, format_table, publish, publish_result)

MARKET = BENCH_MARKETS[0]
MODELS = os.environ.get("RTGCN_BENCH_SWEEP_MODELS",
                        "Rank_LSTM,RSR_E,RT-GCN (T)").split(",")
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR_2W = 1.6


def runs_equal(a, b) -> bool:
    """Bitwise equality of two run lists, treating NaN == NaN."""
    if len(a) != len(b):
        return False
    for run_a, run_b in zip(a, b):
        if set(run_a) != set(run_b):
            return False
        for key in run_a:
            va, vb = run_a[key], run_b[key]
            if math.isnan(va) and math.isnan(vb):
                continue
            if va != vb:
                return False
    return True


def run_sweep(workers: int, resume_dir=None):
    config = bench_config()
    started = time.perf_counter()
    sweep = run_experiments_parallel(
        MODELS, [MARKET], config=config, n_runs=BENCH_RUNS,
        base_seed=BENCH_SEED, workers=workers, dataset_seed=BENCH_SEED,
        resume_dir=resume_dir)
    return sweep, time.perf_counter() - started


def kill_resume_demo(tmp_dir) -> dict:
    """SIGKILL a journaled sweep mid-flight, resume it, verify equality.

    The child is forked (not spawned) so it shares this process's loaded
    datasets; the parent kills it as soon as the journal shows the first
    completed run — exactly the "operator's laptop died" scenario the
    resume journal exists for.
    """
    import multiprocessing

    resume_dir = tmp_dir / "journal"
    resume_dir.mkdir()
    def journaled_runs() -> int:
        count = 0
        for path in resume_dir.glob("experiment-*.json"):
            try:
                count += len(json.loads(path.read_text()).get("runs", []))
            except json.JSONDecodeError:    # mid-write; count it next poll
                pass
        return count

    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(target=run_sweep, args=(2, resume_dir))
    child.start()
    deadline = time.monotonic() + 600.0
    while time.monotonic() < deadline and journaled_runs() < 1:
        time.sleep(0.05)
    os.kill(child.pid, signal.SIGKILL)
    child.join()

    survivors = journaled_runs()
    total = len(MODELS) * BENCH_RUNS
    resumed, seconds = run_sweep(2, resume_dir=resume_dir)
    return {"journaled_runs_surviving_kill": survivors,
            "total_runs": total,
            "resumed_wall_seconds": seconds,
            "resumed_sweep": resumed}


def main() -> None:
    import tempfile
    from pathlib import Path

    if not fork_available():
        raise SystemExit("bench_parallel_scale needs the fork start method")

    results = {}
    for workers in WORKER_COUNTS:
        sweep, seconds = run_sweep(workers)
        results[workers] = (sweep, seconds)
        print(f"{workers} worker(s): {seconds:.1f}s")
    serial_sweep, serial_seconds = results[1]

    rows = []
    entries = []
    for workers in WORKER_COUNTS:
        sweep, seconds = results[workers]
        speedup = serial_seconds / seconds if seconds > 0 else float("nan")
        equal = all(
            runs_equal(sweep.results[cell].runs,
                       serial_sweep.results[cell].runs)
            for cell in serial_sweep.results)
        telemetry = sweep.telemetry["metrics"] if sweep.telemetry else {}
        util = telemetry.get("utilization_mean")
        rows.append([f"{workers}", f"{seconds:.1f}",
                     f"{speedup:.2f}x", "yes" if equal else "NO",
                     f"{util:.0%}" if util is not None else "-",
                     telemetry.get("retries", 0),
                     telemetry.get("max_queue_depth")])
        entries.append({
            "workers": workers,
            "wall_seconds": seconds,
            "speedup_vs_serial": speedup,
            "metrics_equal_serial": equal,
            "telemetry": sweep.telemetry["metrics"]
                         if sweep.telemetry else None,
        })
        if not equal:
            raise SystemExit(
                f"parallel sweep at {workers} workers diverged from the "
                "serial metrics — the determinism contract is broken")

    with tempfile.TemporaryDirectory(prefix="bench-parallel-") as tmp:
        demo = kill_resume_demo(Path(tmp))
    resume_equal = all(
        runs_equal(demo["resumed_sweep"].results[cell].runs,
                   serial_sweep.results[cell].runs)
        for cell in serial_sweep.results)
    if not resume_equal:
        raise SystemExit("resumed sweep diverged from serial metrics")
    if not 1 <= demo["journaled_runs_surviving_kill"] <= demo["total_runs"]:
        raise SystemExit("kill-resume demo journaled nothing before the "
                         "kill; raise BENCH_RUNS")

    cores = os.cpu_count() or 1
    floor_applies = cores >= 2
    speedup_2w = entries[1]["speedup_vs_serial"]
    floor_note = (f"acceptance floor: {SPEEDUP_FLOOR_2W}x"
                  if floor_applies else
                  f"floor {SPEEDUP_FLOOR_2W}x not enforced: host has "
                  f"{cores} CPU core, workers can only time-slice")
    table = format_table(
        f"Parallel sweep scaling — {len(MODELS)} models × {MARKET} × "
        f"{BENCH_RUNS} runs, {BENCH_EPOCHS} epochs, {cores} CPU core(s)",
        ["workers", "wall s", "speedup", "== serial", "util", "retries",
         "max queue"],
        rows,
        note=(f"2-worker speedup: {speedup_2w:.2f}x ({floor_note}); "
              f"kill-resume: {demo['journaled_runs_surviving_kill']}/"
              f"{demo['total_runs']} runs survived SIGKILL, resumed "
              f"sweep == serial: {resume_equal}"))
    publish("parallel_scale", table)
    publish_result("parallel_scale", {
        "market": MARKET,
        "models": MODELS,
        "cpu_cores": cores,
        "speedup_floor_2_workers": SPEEDUP_FLOOR_2W,
        "speedup_floor_enforced": floor_applies,
        "scaling": entries,
        "kill_resume": {
            "journaled_runs_surviving_kill":
                demo["journaled_runs_surviving_kill"],
            "total_runs": demo["total_runs"],
            "resumed_wall_seconds": demo["resumed_wall_seconds"],
            "resumed_metrics_equal_serial": resume_equal,
        },
    })
    print("JSON artifact: benchmarks/results/parallel_scale.json")
    if floor_applies and speedup_2w < SPEEDUP_FLOOR_2W:
        raise SystemExit(
            f"2-worker speedup {speedup_2w:.2f}x is below the "
            f"{SPEEDUP_FLOOR_2W}x acceptance floor")


if __name__ == "__main__":
    main()
