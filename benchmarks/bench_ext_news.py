"""Extension — news-sentiment feature enrichment (the paper's future work).

The conclusion proposes enriching features with "external information such
as news and tweets" once the relational dependency is captured.  This
bench trains RT-GCN (T) with and without the synthetic overnight-sentiment
channel at two informativeness levels.

Expected shape: informative news lifts MRR/IRR; uninformative (pure-noise)
news does not help and may slightly hurt (an extra noisy channel).
"""

import numpy as np
import pytest

from repro.core import RTGCN
from repro.data import NewsAugmentedDataset, NewsConfig
from repro.eval import run_experiment

from _harness import (BENCH_MARKETS, BENCH_RUNS, BENCH_WORKERS,
                      bench_config, bench_dataset, format_table, metric_row,
                      publish)

MARKET = BENCH_MARKETS[0]


def run_variant(dataset, num_features, config):
    return run_experiment(
        "RT-GCN (T)",
        lambda gen: RTGCN(dataset.relations, num_features=num_features,
                          strategy="time", relational_filters=16, rng=gen),
        dataset, config, n_runs=BENCH_RUNS, workers=BENCH_WORKERS)


def build_extension():
    base = bench_dataset(MARKET)
    config = bench_config()
    variants = {"no news": run_variant(base, 4, config)}
    for label, informativeness in [("informative news", 0.6),
                                   ("noise news", 0.0)]:
        news = NewsAugmentedDataset(
            base, NewsConfig(event_rate=0.5,
                             informativeness=informativeness, seed=1))
        variants[label] = run_variant(news, 5, config)
    return variants


def test_extension_news_enrichment(benchmark):
    variants = benchmark.pedantic(build_extension, rounds=1, iterations=1)
    rows = [metric_row(name, result.summary())
            for name, result in variants.items()]
    text = format_table(
        f"Extension — news-sentiment enrichment on {MARKET}",
        ["Features", "MRR", "IRR-1", "IRR-5", "IRR-10"], rows,
        note=("Implements the conclusion's future work: a sparse overnight "
              "sentiment channel\nwith controllable informativeness.  "
              "Informative news should lift the metrics;\npure-noise news "
              "should not."))
    publish("ext_news", text)

    informative = variants["informative news"].mean("IRR-5")
    plain = variants["no news"].mean("IRR-5")
    noise = variants["noise news"].mean("IRR-5")
    assert informative > plain
    assert informative > noise
