"""Sparse-kernel acceptance benchmark: RT-GCN at paper-scale sparsity.

The mini presets used by the other benches are *dense* graphs (13–17% of
stock pairs related), where the CSR path has nothing to win.  This bench
builds a simulated universe at the paper's scale and sparsity — 500 stocks,
≤5% of pairs related (Table III reports 0.3–7% per relation class on the
full markets) — and checks the three claims the sparse subsystem makes:

1. **Speed** — one RT-GCN (T) training epoch is at least 2× faster under
   ``graph_mode="sparse"`` than under ``"dense"``.
2. **Numerics** — the two backends train identically: per-epoch losses
   match to float64 round-off, because every sparse op is entry-identical
   to its dense counterpart (see ``docs/performance.md``).
3. **Attribution** — an :class:`repro.obs.OpProfiler` run shows the sparse
   backend spending its propagation time in ``spmm``/``sddmm`` while the
   dense backend spends it in ``matmul``, i.e. the speedup comes from the
   kernels this subsystem introduced, not from a protocol difference.

Artifacts: ``benchmarks/results/sparse_scale.txt`` (timing + op tables)
and ``sparse_scale.json`` (telemetry, including the profiler rows).
"""

import os
import time
from dataclasses import replace

import numpy as np

from repro.core import RTGCN, Trainer
from repro.data import load_market
from repro.graph import reset_adjacency_cache
from repro.obs import OpProfiler

from _harness import (BENCH_SEED, bench_config, format_table, publish,
                      publish_result)

#: acceptance scale: ≥500 stocks at ≤5% graph density
SCALE_STOCKS = int(os.environ.get("RTGCN_BENCH_SCALE_STOCKS", "500"))
MAX_DENSITY = 0.05
MIN_SPEEDUP = 2.0

#: kept short — the claim is per-epoch cost, not convergence
TRAIN_DAYS = int(os.environ.get("RTGCN_BENCH_SCALE_DAYS", "25"))


def scale_dataset():
    """A paper-sparsity universe built from the full NASDAQ preset."""
    return load_market("nasdaq", seed=BENCH_SEED, spec_overrides=dict(
        num_stocks=SCALE_STOCKS, num_industries=60,
        industry_pair_ratio=0.025, wiki_types=20, wiki_pair_ratio=0.003,
        train_days=TRAIN_DAYS, test_days=10))


def build_model(dataset, config, mode):
    reset_adjacency_cache()
    model = RTGCN(dataset.relations, num_features=config.num_features,
                  strategy="time", graph_mode=mode,
                  rng=np.random.default_rng(BENCH_SEED))
    return Trainer(model, dataset, replace(config, graph_mode=mode))


def timed_epoch(dataset, config, mode):
    """One unprofiled training epoch; returns (seconds, epoch losses)."""
    trainer = build_model(dataset, config, mode)
    start = time.perf_counter()
    losses = trainer.fit()
    return time.perf_counter() - start, losses


def profiled_ops(dataset, config, mode, days=4):
    """Short profiled run; returns the op rows sorted by seconds."""
    trainer = build_model(dataset, config, mode)
    trainer.config = replace(trainer.config, max_train_days=days)
    with OpProfiler() as prof:
        trainer.fit()
    return prof


def test_sparse_scale_speed_and_parity():
    dataset = scale_dataset()
    n = dataset.relations.num_stocks
    mask = dataset.relations.binary_adjacency()
    density = ((mask != 0).sum() + n) / (n * n)   # incl. the added loops
    assert n >= 500
    assert density <= MAX_DENSITY, (
        f"universe too dense for the acceptance claim: {density:.4f}")

    config = bench_config(epochs=1, window=10,
                          early_stopping_patience=None)

    seconds, losses = {}, {}
    for mode in ("dense", "sparse"):
        seconds[mode], losses[mode] = timed_epoch(dataset, config, mode)
    speedup = seconds["dense"] / seconds["sparse"]
    loss_gap = float(np.max(np.abs(
        np.subtract(losses["dense"], losses["sparse"]))))

    profilers = {mode: profiled_ops(dataset, config, mode)
                 for mode in ("dense", "sparse")}
    # aggregate forward+backward seconds per op name
    op_totals = {}
    for mode, prof in profilers.items():
        totals = {}
        for row in prof.as_rows():
            totals[row["op"]] = totals.get(row["op"], 0.0) + row["seconds"]
        op_totals[mode] = totals

    rows = [[mode, f"{seconds[mode]:.2f}s",
             f"{op_totals[mode].get('matmul', 0.0):.2f}s",
             f"{op_totals[mode].get('spmm', 0.0) + op_totals[mode].get('sddmm', 0.0):.2f}s"]
            for mode in ("dense", "sparse")]
    sections = [format_table(
        f"Sparse scale — RT-GCN (T), {n} stocks, density {density:.3f}, "
        f"{TRAIN_DAYS}-day epoch",
        ["Backend", "Epoch", "matmul (4-day profile)",
         "spmm+sddmm (4-day profile)"], rows,
        note=(f"speedup {speedup:.1f}x (floor {MIN_SPEEDUP}x); max epoch-"
              f"loss gap {loss_gap:.2e}"))]
    for mode, prof in profilers.items():
        sections.append(f"\nTop ops, {mode} backend (4-day profile)\n"
                        + prof.table(top=10))
    publish("sparse_scale", "\n".join(sections))
    publish_result("sparse_scale", {
        "num_stocks": n,
        "graph_density": float(density),
        "train_days": TRAIN_DAYS,
        "epoch_seconds": seconds,
        "speedup": speedup,
        "epoch_losses": {mode: [float(x) for x in ls]
                         for mode, ls in losses.items()},
        "max_loss_gap": loss_gap,
        "ops": {mode: prof.as_rows()
                for mode, prof in profilers.items()},
    })

    # 1. speed: the CSR path wins by at least 2x at paper sparsity.
    assert speedup >= MIN_SPEEDUP, (
        f"sparse epoch only {speedup:.2f}x faster than dense")
    # 2. numerics: identical training trajectories to float64 round-off.
    assert np.allclose(losses["dense"], losses["sparse"],
                       rtol=1e-9, atol=1e-12), (
        f"dense/sparse training diverged: max gap {loss_gap:.3e}")
    # 3. attribution: propagation moved from dense matmul into spmm.
    assert "spmm" not in op_totals["dense"]
    assert op_totals["sparse"].get("spmm", 0.0) > 0.0
    assert op_totals["sparse"].get("sddmm", 0.0) > 0.0
    assert (op_totals["dense"].get("matmul", 0.0)
            > 2.0 * op_totals["sparse"].get("matmul", 0.0))


def test_sparse_scale_fused_fp32_addendum():
    """Sparse backend under the PR's numerics knobs: fp64-unfused vs
    fp64-fused (bitwise) vs fp32-fused, with before/after per-op tables.

    No speed floor is asserted here: the CSR kernels are index-bound, so
    narrowing the value dtype buys less than it does on the dense path
    (the 1.5x dense floor lives in bench_fig5_speed).  This bench pins the
    numerics claims at paper sparsity and publishes the fused-vs-unfused
    op attribution for the store.
    """
    dataset = scale_dataset()
    config = bench_config(epochs=1, window=10,
                          early_stopping_patience=None,
                          graph_mode="sparse")
    variants = {
        "fp64 unfused": replace(config, dtype_policy="float64",
                                fused_kernels=False),
        "fp64 fused": replace(config, dtype_policy="float64",
                              fused_kernels=True),
        "fp32 fused": replace(config, dtype_policy="float32",
                              fused_kernels=True),
    }

    seconds, losses, profilers = {}, {}, {}
    for name, cfg in variants.items():
        trainer = build_model(dataset, cfg, "sparse")
        start = time.perf_counter()
        losses[name] = [float(x) for x in trainer.fit()]
        seconds[name] = time.perf_counter() - start
        prof_trainer = build_model(
            dataset, replace(cfg, max_train_days=4), "sparse")
        with OpProfiler() as prof:
            prof_trainer.fit()
        profilers[name] = prof

    fp32_gap = float(np.max(np.abs(
        np.subtract(losses["fp32 fused"], losses["fp64 unfused"]))
        / np.abs(losses["fp64 unfused"])))

    rows = [[name, f"{seconds[name]:.2f}s",
             f"{seconds['fp64 unfused'] / seconds[name]:.2f}x",
             f"{losses[name][0]:.6e}"]
            for name in variants]
    sections = [format_table(
        "Sparse scale addendum — fused kernels & dtype policy "
        f"({dataset.relations.num_stocks} stocks, CSR backend)",
        ["Variant", "Epoch", "vs fp64 unfused", "Epoch loss"], rows,
        note=f"fp32 relative loss gap {fp32_gap:.2e}")]
    for name, prof in profilers.items():
        sections.append(f"\nTop ops, {name} (4-day profile)\n"
                        + prof.table(top=10))
    publish("sparse_scale_fused", "\n".join(sections))
    publish_result("sparse_scale_fused", {
        "num_stocks": dataset.relations.num_stocks,
        "epoch_seconds": seconds,
        "epoch_losses": losses,
        "fp32_relative_loss_gap": fp32_gap,
        "ops": {name: prof.as_rows()
                for name, prof in profilers.items()},
    })

    # fusion is bitwise-neutral under float64, on the sparse path too
    assert losses["fp64 fused"] == losses["fp64 unfused"]
    # fp32 stays within the documented tolerance (docs/performance.md)
    assert fp32_gap <= 1e-3, fp32_gap
    # the fused profile attributes propagation to the fused node
    fused_ops = {row["op"] for row in profilers["fp64 fused"].as_rows()}
    assert "gcn_propagate_fused" in fused_ops
    unfused_ops = {row["op"]
                   for row in profilers["fp64 unfused"].as_rows()}
    assert "gcn_propagate_fused" not in unfused_ops
