"""Table V — comparison with STHAN-SR and RSR on industry-only data.

The paper's Table V evaluates on Feng et al.'s *published* datasets, which
contain only industry relations (NASDAQ-II / NYSE-II), and tests
significance with a one-sample Wilcoxon against the published numbers.
Here the "published value" is each baseline's own measured mean on the
same simulated industry-only dataset, and RT-GCN (T)'s runs are tested
against it — the same statistical machinery on the same relation regime.

Paper shape target: RT-GCN (T) ≥ STHAN-SR ≥ RSR on industry-only data.
"""

import numpy as np
import pytest

from repro.data import StockDataset
from repro.eval import compare_to_published, run_named_experiment

from _harness import (BENCH_MARKETS, BENCH_RUNS, BENCH_WORKERS,
                      bench_config, bench_dataset, format_table, metric_row,
                      publish)

MODELS = ["RSR_I", "RSR_E", "STHAN-SR", "RT-GCN (T)"]


def industry_only(dataset: StockDataset) -> StockDataset:
    """The NASDAQ-II/NYSE-II regime: drop wiki relations."""
    return StockDataset(market=dataset.market + "-II",
                        universe=dataset.universe,
                        industry_relations=dataset.industry_relations,
                        wiki_relations=None,
                        simulated=dataset.simulated,
                        train_day_count=dataset.train_day_count,
                        test_day_count=dataset.test_day_count)


def build_table5():
    config = bench_config()
    outputs = {}
    for market in BENCH_MARKETS[:2]:           # paper: NASDAQ-II, NYSE-II
        dataset = industry_only(bench_dataset(market))
        outputs[dataset.market] = {
            name: run_named_experiment(name, dataset, config,
                                       n_runs=BENCH_RUNS,
                                       workers=BENCH_WORKERS)
            for name in MODELS}
    return outputs


def test_table5_industry_only_comparison(benchmark):
    outputs = benchmark.pedantic(build_table5, rounds=1, iterations=1)
    rows = []
    notes = []
    for market, results in outputs.items():
        for name in MODELS:
            rows.append([market] + metric_row(
                name, results[name].summary(),
                keys=("MRR", "IRR-5", "IRR-10")))
        ours = results["RT-GCN (T)"]
        for metric in ("MRR", "IRR-5"):
            strongest = max((n for n in MODELS if n != "RT-GCN (T)"),
                            key=lambda n: results[n].mean(metric))
            published = results[strongest].mean(metric)
            try:
                p = compare_to_published(ours, metric, published).p_value
                notes.append(f"{market} {metric}: one-sample Wilcoxon of "
                             f"RT-GCN (T) vs {strongest} mean "
                             f"({published:+.3f}): p={p:.3f}")
            except ValueError:
                notes.append(f"{market} {metric}: degenerate sample")

    text = format_table(
        "Table V — industry-relations-only comparison (NASDAQ-II/NYSE-II "
        "analogues)",
        ["Dataset", "Model", "MRR", "IRR-5", "IRR-10"], rows,
        note="\n".join(notes))
    publish("table5_published", text)

    for market, results in outputs.items():
        ours = results["RT-GCN (T)"]
        rsr_best = max(results["RSR_I"].mean("IRR-5"),
                       results["RSR_E"].mean("IRR-5"))
        # Shape target: RT-GCN (T) competitive with (within noise of, and
        # typically above) the two-step rankers on industry-only data.
        tolerance = max(0.15, 0.4 * abs(rsr_best))
        assert ours.mean("IRR-5") > rsr_best - tolerance, market
