"""Figure 5 — training and testing speed of the ranking-based models.

Measures per-epoch training time and full-test-sweep inference time for
every ranking model under identical data and protocol, then reports the
speedup of RT-GCN (T) over each baseline.

Paper shape targets:
- RT-GCN (pure convolution) trains faster than the LSTM-based rankers
  (paper: 3.2× vs Rank_LSTM, 13.4× vs RSR on NASDAQ);
- RT-GAT is in the same league as RT-GCN (both convolutional graph
  models), faster than Rank_LSTM and RSR.
"""

from dataclasses import replace

import pytest

from repro.baselines import RANKING_MODELS, make_predictor
from repro.core import RTGCN
from repro.eval.speed import measure_speed
from repro.obs import Tracer, use_tracer

from _harness import (BENCH_MARKETS, bench_config, bench_dataset,
                      checkpoint_telemetry, format_table, publish,
                      publish_result, speed_record)

MARKET = BENCH_MARKETS[0]


def measure_all():
    dataset = bench_dataset(MARKET)
    # Speed is measured at the paper's largest window (T = 20): the
    # recurrence-vs-convolution gap grows with sequence length, which is
    # exactly the mechanism Figure 5 demonstrates.
    config = bench_config(epochs=1, window=20,
                          early_stopping_patience=None)
    measurements = {}
    for name in RANKING_MODELS:
        predictor = make_predictor(name, dataset, seed=0)
        with use_tracer(Tracer()) as tracer:
            result = predictor.fit_predict(dataset, config)
        measurements[name] = (result.train_seconds, result.test_seconds,
                              tracer.snapshot())
    return measurements


def test_fig5_speed_comparison(benchmark):
    measurements = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    ours_train, ours_test, _ = measurements["RT-GCN (T)"]
    rows = []
    for name, (train_s, test_s, _phases) in measurements.items():
        rows.append([name, f"{train_s:.2f}s", f"{test_s:.3f}s",
                     f"{train_s / ours_train:.1f}x",
                     f"{test_s / ours_test:.1f}x"])
    text = format_table(
        f"Figure 5 — training/testing speed on {MARKET} (1 epoch)",
        ["Model", "Train/epoch", "Test sweep", "Train vs RT-GCN (T)",
         "Test vs RT-GCN (T)"], rows,
        note=("Paper: RT-GCN up to 3.2x faster than Rank_LSTM and 13.4x "
              "faster than RSR\nin training on NASDAQ; the convolution-vs-"
              "recurrence gap is the mechanism."))
    publish("fig5_speed", text)
    publish_result("fig5_speed", {
        "market": MARKET,
        "models": {name: {"train_seconds": train_s,
                          "test_seconds": test_s,
                          "phases": phases}
                   for name, (train_s, test_s, phases)
                   in measurements.items()},
    })

    # Shape targets: convolutional models beat the LSTM-based rankers.
    assert measurements["Rank_LSTM"][0] > ours_train
    assert measurements["RSR_I"][0] > ours_train
    assert measurements["RSR_E"][0] > ours_train
    # RSR (LSTM + relational stage) is slower than plain Rank_LSTM.
    assert measurements["RSR_E"][0] > measurements["Rank_LSTM"][0] * 0.8


def test_fig5_dense_vs_sparse_propagation():
    """Time RT-GCN (T) under the dense and the CSR graph backends.

    The mini markets are *dense* graphs (13–17% of all pairs related, vs
    ≲5% on the paper's full universes), so no speedup is asserted here —
    that claim is checked on a paper-scale simulated universe by
    ``bench_sparse_scale.py``.  This test keeps both backends timed under
    the Figure 5 protocol and publishes the telemetry so a regression in
    either path is visible per-commit.
    """
    dataset = bench_dataset(MARKET)
    config = bench_config(epochs=1, window=20,
                          early_stopping_patience=None)

    def factory(rng):
        return RTGCN(dataset.relations, num_features=config.num_features,
                     strategy="time", rng=rng)

    measurements = {
        mode: measure_speed(f"RT-GCN (T) [{mode}]", factory, dataset,
                            config=replace(config, graph_mode=mode),
                            epochs=1, seed=0)
        for mode in ("dense", "sparse")
    }
    dense, sparse = measurements["dense"], measurements["sparse"]
    ratio = sparse.speedup_over(dense)   # dense seconds / sparse seconds

    rows = [[mode, f"{m.train_seconds_per_epoch:.2f}s",
             f"{m.test_seconds:.3f}s"]
            for mode, m in measurements.items()]
    density = dataset.relations.binary_adjacency().mean()
    text = format_table(
        f"Figure 5 addendum — RT-GCN (T) propagation backend on {MARKET}",
        ["Backend", "Train/epoch", "Test sweep"], rows,
        note=(f"Graph density {density:.2f} (mini preset; paper-scale "
              "universes are ≲0.05).\nThe ≥2x sparse speedup claim is "
              "asserted at scale by bench_sparse_scale.py."))
    publish("fig5_speed_backends", text)
    from repro.core import Trainer
    import numpy as np
    publish_result("fig5_speed_backends", {
        "market": MARKET,
        "graph_density": float(density),
        "backends": {mode: speed_record(m, baseline=dense)
                     for mode, m in measurements.items()},
        "sparse_vs_dense_train_speedup": ratio["train"],
        "checkpoint": checkpoint_telemetry(
            Trainer(factory(np.random.default_rng(0)), dataset, config)),
    })

    # Both backends must deliver real (non-degenerate) timings.
    for m in measurements.values():
        assert not speed_record(m)["degenerate_timing"]
