"""Figure 5 — training and testing speed of the ranking-based models.

Measures per-epoch training time and full-test-sweep inference time for
every ranking model under identical data and protocol, then reports the
speedup of RT-GCN (T) over each baseline.

Paper shape targets:
- RT-GCN (pure convolution) trains faster than the LSTM-based rankers
  (paper: 3.2× vs Rank_LSTM, 13.4× vs RSR on NASDAQ);
- RT-GAT is in the same league as RT-GCN (both convolutional graph
  models), faster than Rank_LSTM and RSR.
"""

import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.baselines import RANKING_MODELS, make_predictor
from repro.core import RTGCN, Trainer
from repro.data import load_market
from repro.eval.speed import measure_speed
from repro.graph import reset_adjacency_cache
from repro.obs import OpProfiler, Tracer, use_tracer
from repro.tensor import arena, arena_stats, reset_arena

from _harness import (BENCH_MARKETS, BENCH_SEED, bench_config, bench_dataset,
                      checkpoint_telemetry, format_table, publish,
                      publish_result, speed_record)

MARKET = BENCH_MARKETS[0]

#: fused/dtype acceptance scale: paper-size universe, dense backend
FUSED_STOCKS = int(os.environ.get("RTGCN_BENCH_FUSED_STOCKS", "500"))
FUSED_DAYS = int(os.environ.get("RTGCN_BENCH_FUSED_DAYS", "10"))
#: floor for the fp32-fused vs fp64-unfused per-epoch speedup
MIN_FUSED_SPEEDUP = 1.5
#: documented fp32 tolerance on epoch losses (docs/performance.md)
FLOAT32_LOSS_RTOL = 1e-3


def measure_all():
    dataset = bench_dataset(MARKET)
    # Speed is measured at the paper's largest window (T = 20): the
    # recurrence-vs-convolution gap grows with sequence length, which is
    # exactly the mechanism Figure 5 demonstrates.
    config = bench_config(epochs=1, window=20,
                          early_stopping_patience=None)
    measurements = {}
    for name in RANKING_MODELS:
        predictor = make_predictor(name, dataset, seed=0)
        with use_tracer(Tracer()) as tracer:
            result = predictor.fit_predict(dataset, config)
        measurements[name] = (result.train_seconds, result.test_seconds,
                              tracer.snapshot())
    return measurements


def test_fig5_speed_comparison(benchmark):
    measurements = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    ours_train, ours_test, _ = measurements["RT-GCN (T)"]
    rows = []
    for name, (train_s, test_s, _phases) in measurements.items():
        rows.append([name, f"{train_s:.2f}s", f"{test_s:.3f}s",
                     f"{train_s / ours_train:.1f}x",
                     f"{test_s / ours_test:.1f}x"])
    text = format_table(
        f"Figure 5 — training/testing speed on {MARKET} (1 epoch)",
        ["Model", "Train/epoch", "Test sweep", "Train vs RT-GCN (T)",
         "Test vs RT-GCN (T)"], rows,
        note=("Paper: RT-GCN up to 3.2x faster than Rank_LSTM and 13.4x "
              "faster than RSR\nin training on NASDAQ; the convolution-vs-"
              "recurrence gap is the mechanism."))
    publish("fig5_speed", text)
    publish_result("fig5_speed", {
        "market": MARKET,
        "models": {name: {"train_seconds": train_s,
                          "test_seconds": test_s,
                          "phases": phases}
                   for name, (train_s, test_s, phases)
                   in measurements.items()},
    })

    # Shape targets: convolutional models beat the LSTM-based rankers.
    assert measurements["Rank_LSTM"][0] > ours_train
    assert measurements["RSR_I"][0] > ours_train
    assert measurements["RSR_E"][0] > ours_train
    # RSR (LSTM + relational stage) is slower than plain Rank_LSTM.
    assert measurements["RSR_E"][0] > measurements["Rank_LSTM"][0] * 0.8


def test_fig5_dense_vs_sparse_propagation():
    """Time RT-GCN (T) under the dense and the CSR graph backends.

    The mini markets are *dense* graphs (13–17% of all pairs related, vs
    ≲5% on the paper's full universes), so no speedup is asserted here —
    that claim is checked on a paper-scale simulated universe by
    ``bench_sparse_scale.py``.  This test keeps both backends timed under
    the Figure 5 protocol and publishes the telemetry so a regression in
    either path is visible per-commit.
    """
    dataset = bench_dataset(MARKET)
    config = bench_config(epochs=1, window=20,
                          early_stopping_patience=None)

    def factory(rng):
        return RTGCN(dataset.relations, num_features=config.num_features,
                     strategy="time", rng=rng)

    measurements = {
        mode: measure_speed(f"RT-GCN (T) [{mode}]", factory, dataset,
                            config=replace(config, graph_mode=mode),
                            epochs=1, seed=0)
        for mode in ("dense", "sparse")
    }
    dense, sparse = measurements["dense"], measurements["sparse"]
    ratio = sparse.speedup_over(dense)   # dense seconds / sparse seconds

    rows = [[mode, f"{m.train_seconds_per_epoch:.2f}s",
             f"{m.test_seconds:.3f}s"]
            for mode, m in measurements.items()]
    density = dataset.relations.binary_adjacency().mean()
    text = format_table(
        f"Figure 5 addendum — RT-GCN (T) propagation backend on {MARKET}",
        ["Backend", "Train/epoch", "Test sweep"], rows,
        note=(f"Graph density {density:.2f} (mini preset; paper-scale "
              "universes are ≲0.05).\nThe ≥2x sparse speedup claim is "
              "asserted at scale by bench_sparse_scale.py."))
    publish("fig5_speed_backends", text)
    from repro.core import Trainer
    import numpy as np
    publish_result("fig5_speed_backends", {
        "market": MARKET,
        "graph_density": float(density),
        "backends": {mode: speed_record(m, baseline=dense)
                     for mode, m in measurements.items()},
        "sparse_vs_dense_train_speedup": ratio["train"],
        "checkpoint": checkpoint_telemetry(
            Trainer(factory(np.random.default_rng(0)), dataset, config)),
    })

    # Both backends must deliver real (non-degenerate) timings.
    for m in measurements.values():
        assert not speed_record(m)["degenerate_timing"]


# ----------------------------------------------------------------------
# Fused kernels / dtype policy / buffer arena acceptance
# ----------------------------------------------------------------------
def _fused_dataset():
    """A paper-scale universe for the dense-propagation numerics bench."""
    return load_market("nasdaq", seed=BENCH_SEED, spec_overrides=dict(
        num_stocks=FUSED_STOCKS, num_industries=60,
        industry_pair_ratio=0.025, wiki_types=20, wiki_pair_ratio=0.003,
        train_days=FUSED_DAYS, test_days=5))


def _fused_trainer(dataset, config):
    reset_adjacency_cache()
    model = RTGCN(dataset.relations, num_features=config.num_features,
                  strategy="time", graph_mode="dense",
                  rng=np.random.default_rng(BENCH_SEED))
    return Trainer(model, dataset, config)


def _timed_fit(dataset, config):
    trainer = _fused_trainer(dataset, config)
    start = time.perf_counter()
    losses = trainer.fit()
    return time.perf_counter() - start, [float(x) for x in losses]


def _op_table(dataset, config, days=3):
    """Per-op profile of a short run under ``config``'s numerics."""
    trainer = _fused_trainer(dataset,
                             replace(config, max_train_days=days))
    with OpProfiler() as prof:
        trainer.fit()
    return prof


def test_fig5_fused_dtype_speed():
    """The PR's acceptance claims, on one dense paper-scale epoch:

    1. fp32-fused trains >= 1.5x faster per epoch than fp64-unfused;
    2. fused and unfused losses are bitwise-equal under float64;
    3. fp32-fused losses match fp64 within the documented tolerance;
    4. with the arena warm, a steady-state epoch allocates nothing on
       the backward path (miss counter stays at zero).
    """
    dataset = _fused_dataset()
    base_config = bench_config(epochs=1, window=10, graph_mode="dense",
                               early_stopping_patience=None,
                               max_train_days=FUSED_DAYS)
    variants = {
        "fp64 unfused": replace(base_config, dtype_policy="float64",
                                fused_kernels=False),
        "fp64 fused": replace(base_config, dtype_policy="float64",
                              fused_kernels=True),
        "fp32 fused+arena": replace(base_config, dtype_policy="float32",
                                    fused_kernels=True, buffer_arena=True),
    }

    seconds, losses = {}, {}
    for name, config in variants.items():
        seconds[name], losses[name] = _timed_fit(dataset, config)
    speedup = seconds["fp64 unfused"] / seconds["fp32 fused+arena"]
    fp32_gap = float(np.max(np.abs(
        np.subtract(losses["fp32 fused+arena"], losses["fp64 unfused"]))
        / np.abs(losses["fp64 unfused"])))

    # Arena steady state: keep the pool alive across two fits (the outer
    # context stops Trainer.fit's inner one from dropping it), warm up
    # with the first, then count allocations during the second.
    arena_config = replace(variants["fp32 fused+arena"], max_train_days=4)
    with arena():
        trainer = _fused_trainer(dataset, arena_config)
        trainer.fit()
        reset_arena()
        trainer.fit()
        steady = arena_stats()

    profiles = {name: _op_table(dataset, config)
                for name, config in variants.items()}

    rows = [[name, f"{seconds[name]:.2f}s",
             f"{seconds['fp64 unfused'] / seconds[name]:.2f}x",
             f"{losses[name][0]:.6e}"]
            for name in variants]
    sections = [format_table(
        f"Figure 5 addendum — fused kernels & dtype policy, "
        f"{dataset.relations.num_stocks} stocks, dense, "
        f"{FUSED_DAYS}-day epoch",
        ["Variant", "Epoch", "vs fp64 unfused", "Epoch loss"], rows,
        note=(f"fp32 relative loss gap {fp32_gap:.2e} (tolerance "
              f"{FLOAT32_LOSS_RTOL:.0e}); arena steady-state misses "
              f"{steady['misses']} (hits {steady['hits']})"))]
    for name, prof in profiles.items():
        sections.append(f"\nTop ops, {name} (3-day profile)\n"
                        + prof.table(top=10))
    publish("fig5_fused_dtype", "\n".join(sections))
    publish_result("fig5_fused_dtype", {
        "num_stocks": dataset.relations.num_stocks,
        "train_days": FUSED_DAYS,
        "epoch_seconds": seconds,
        "epoch_losses": losses,
        "fp32_fused_vs_fp64_unfused_speedup": speedup,
        "fp32_relative_loss_gap": fp32_gap,
        "arena_steady_state": steady,
        "ops": {name: prof.as_rows() for name, prof in profiles.items()},
    })

    # 1. speed: fp32 + fusion clears the acceptance floor.
    assert speedup >= MIN_FUSED_SPEEDUP, (
        f"fp32-fused epoch only {speedup:.2f}x faster than fp64-unfused")
    # 2. float64 fusion is bitwise-neutral on the training trajectory.
    assert losses["fp64 fused"] == losses["fp64 unfused"], (
        "fused float64 training diverged from the composed ops")
    # 3. fp32 stays within the documented tolerance of the fp64 run.
    assert fp32_gap <= FLOAT32_LOSS_RTOL, (
        f"fp32 loss gap {fp32_gap:.3e} exceeds {FLOAT32_LOSS_RTOL:.0e}")
    # 4. a warm arena allocates nothing at steady state.
    assert steady["misses"] == 0, steady
    assert steady["hits"] > 0
