"""Table IV — main comparison of all baselines against RT-GCN.

Trains every registry model (CLF/REG/RL/RAN plus the three RT-GCN
strategies) on the bench market(s) with the shared §V-B-4 protocol and
prints the MRR / IRR-1 / IRR-5 / IRR-10 matrix, the improvement of
RT-GCN (T) over the strongest baseline, and the paired-Wilcoxon p-values.

Paper shape targets checked:
- ranking/RL families beat classification/regression on IRR;
- RT-GCN (T) is the strongest of the three strategies;
- relation-aware rankers beat the relation-blind Rank_LSTM.

Default scope is the first bench market; set RTGCN_BENCH_MARKETS to run
all three.
"""

import numpy as np
import pytest

from repro.baselines import TABLE_IV_MODELS, get_spec
from repro.eval import compare_paired, run_named_experiment
from repro.stats import improvement_percent

from _harness import (BENCH_MARKETS, BENCH_RUNS, BENCH_WORKERS,
                      bench_config, bench_dataset, format_table, metric_row,
                      publish)

MARKET = BENCH_MARKETS[0]
METRICS = ("MRR", "IRR-1", "IRR-5", "IRR-10")


def build_table4():
    dataset = bench_dataset(MARKET)
    config = bench_config()
    results = {}
    for name in TABLE_IV_MODELS:
        results[name] = run_named_experiment(name, dataset, config,
                                             n_runs=BENCH_RUNS,
                                             workers=BENCH_WORKERS)
    return results


def test_table4_main_comparison(benchmark):
    results = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    rows = []
    for name in TABLE_IV_MODELS:
        spec = get_spec(name)
        rows.append([spec.category] + metric_row(name, results[name].summary()))

    ours = results["RT-GCN (T)"]
    baselines = {name: res for name, res in results.items()
                 if get_spec(name).category not in ("Ours",)}
    improvement_row = ["", "Improvement vs strongest baseline"]
    p_row = ["", "p-value (paired Wilcoxon, n=%d)" % BENCH_RUNS]
    for metric in METRICS:
        candidates = {n: r for n, r in baselines.items()
                      if not np.isnan(r.mean(metric))}
        strongest = max(candidates, key=lambda n: candidates[n].mean(metric))
        best = candidates[strongest].mean(metric)
        try:
            imp = improvement_percent(ours.mean(metric), best)
            improvement_row.append(f"{imp:+.1f}%")
        except ValueError:
            improvement_row.append("-")
        try:
            p = compare_paired(ours, candidates[strongest], metric).p_value
            p_row.append(f"{p:.3f}")
        except ValueError:
            p_row.append("-")
    rows.append(improvement_row[:2] + improvement_row[2:])
    rows.append(p_row[:2] + p_row[2:])

    text = format_table(
        f"Table IV — performance comparison on {MARKET} "
        f"({BENCH_RUNS} runs/model)",
        ["Cat.", "Model", "MRR", "IRR-1", "IRR-5", "IRR-10"], rows,
        note=("MRR is '-' for classification models (cannot rank), as in "
              "the paper.\nPaper shape: RAN/RL > REG/CLF on IRR; "
              "RT-GCN (T) best overall;\nT > W > U among our strategies.  "
              "The paper's n=15 yields p<0.05; at bench\nscale "
              f"(n={BENCH_RUNS}) p-values are reported but not asserted."))
    publish("table4_main", text)

    # ---- paper shape assertions -------------------------------------
    def mean(name, metric):
        return results[name].mean(metric)

    # (1) Our best strategy is at least competitive with the relation-blind
    # regression LSTM (strictly above in the paper; a noise band applies at
    # bench scale).
    reg_reference = mean("LSTM", "IRR-5")
    reg_tolerance = max(0.15, 0.4 * abs(reg_reference))
    assert mean("RT-GCN (T)", "IRR-5") > reg_reference - reg_tolerance
    # (1b) ... and is at least competitive with the strongest ranking
    # baseline (strictly above it in the paper; within the run-noise band
    # at bench scale).
    strongest_ran = max(mean(n, "IRR-5") for n in TABLE_IV_MODELS
                        if get_spec(n).category == "RAN")
    tolerance = max(0.15, 0.4 * abs(strongest_ran))
    assert mean("RT-GCN (T)", "IRR-5") > strongest_ran - tolerance
    # (2) Ranking family beats the classification family on IRR-5.
    ran_best = max(mean(n, "IRR-5") for n in TABLE_IV_MODELS
                   if get_spec(n).category in ("RAN", "Ours"))
    clf_best = max(mean(n, "IRR-5") for n in TABLE_IV_MODELS
                   if get_spec(n).category == "CLF")
    assert ran_best > clf_best - max(0.1, 0.2 * abs(clf_best))
    # (3) The three strategies land in one MRR band (the paper's strict
    # T > W > U ordering needs the n=15 protocol; individual inits of the
    # time-sensitive model occasionally collapse at bench scale — see
    # EXPERIMENTS.md).
    assert mean("RT-GCN (T)", "MRR") >= min(mean("RT-GCN (U)", "MRR"),
                                            mean("RT-GCN (W)", "MRR")) - 0.05
    # (4) Classification models report no MRR.
    assert np.isnan(mean("ARIMA", "MRR"))
