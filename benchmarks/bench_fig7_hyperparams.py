"""Figure 7 — hyperparameter sensitivity of RT-GCN (T).

Sweeps the three knobs of §V-E with everything else fixed:

(a-c) window size T ∈ {5, 10, 15, 20} — the paper finds ~15 best, with
      short windows (5) clearly worse;
(d-f) feature count ∈ {1, 2, 3, 4} (Table VIII combinations: close, then
      +5-day, +10-day, +20-day moving averages) — more features fit
      better;
(g-i) loss balance α ∈ {0, 1e-4, 1e-3, 1e-2, 0.1, 0.2, 0.5} — a moderate
      α (0.1-0.2) beats both extremes.
"""

import numpy as np
import pytest

from repro.core import RTGCN
from repro.eval import run_experiment

from _harness import (BENCH_MARKETS, BENCH_RUNS, BENCH_WORKERS,
                      bench_config, bench_dataset, format_table, publish)

import os

MARKET = BENCH_MARKETS[0]
WINDOWS = [5, 10, 15, 20]
FEATURE_COUNTS = [1, 2, 3, 4]
ALPHAS = [0.0, 1e-4, 1e-3, 1e-2, 0.1, 0.2, 0.5]
#: runs per sweep point; the sweep covers 15 configurations, so it uses
#: fewer repeats than the head-to-head tables by default
SWEEP_RUNS = int(os.environ.get("RTGCN_BENCH_SWEEP_RUNS",
                                str(max(1, BENCH_RUNS - 2))))


def run_config(dataset, config):
    return run_experiment(
        "RT-GCN (T)",
        lambda gen: RTGCN(dataset.relations, strategy="time",
                          num_features=config.num_features,
                          relational_filters=16, rng=gen),
        dataset, config, n_runs=SWEEP_RUNS, workers=BENCH_WORKERS)


def build_sweeps():
    dataset = bench_dataset(MARKET)
    sweeps = {"window": {}, "features": {}, "alpha": {}}
    for window in WINDOWS:
        result = run_config(dataset, bench_config(window=window))
        sweeps["window"][window] = result
    for count in FEATURE_COUNTS:
        result = run_config(dataset, bench_config(num_features=count))
        sweeps["features"][count] = result
    for alpha in ALPHAS:
        result = run_config(dataset, bench_config(alpha=alpha))
        sweeps["alpha"][alpha] = result
    return sweeps


def test_fig7_hyperparameter_sweeps(benchmark):
    sweeps = benchmark.pedantic(build_sweeps, rounds=1, iterations=1)
    rows = []
    for knob, values in sweeps.items():
        for value, result in values.items():
            summary = result.summary()
            rows.append([knob, value, summary["IRR-1"].mean,
                         summary["IRR-5"].mean, summary["IRR-10"].mean])
    text = format_table(
        f"Figure 7 — hyperparameter sweeps of RT-GCN (T) on {MARKET} "
        f"({SWEEP_RUNS} runs each)",
        ["Knob", "Value", "IRR-1", "IRR-5", "IRR-10"], rows,
        note=("Paper shape: IRR peaks around T=15 (5 is worst); more "
              "features help\n(4 best); moderate alpha (0.1-0.2) beats "
              "alpha=0 and alpha=0.5."))
    publish("fig7_hyperparams", text)

    # Shape assertions.  The feature-count claim is robust here (a single
    # price feature is clearly insufficient).  The paper's window optimum
    # (T ≈ 15, T = 5 worst) reflects real markets' long-memory
    # dependencies; the simulator's planted signal has ≈2-lag memory, so
    # short windows can win at bench scale — the sweep is reported, and we
    # assert only that every window trains to a usable model.
    window_scores = {w: r.mean("IRR-5")
                     for w, r in sweeps["window"].items()}
    assert all(np.isfinite(v) for v in window_scores.values())
    feature_scores = {c: r.mean("IRR-5")
                      for c, r in sweeps["features"].items()}
    best_multi = max(feature_scores[c] for c in (2, 3, 4))
    assert best_multi > feature_scores[1]
