"""Table VI — wiki relations vs industry relations ablation.

Trains Rank_LSTM (relation-blind reference) and RT-GCN (U/W/T) twice per
market: once with only wiki relations, once with only industry relations.

Paper shape targets:
- every RT-GCN variant beats Rank_LSTM under either relation source
  (relations help);
- industry relations (denser, ratio ~5-7%) generally beat wiki relations
  (ratio ~0.3-2%) — "the larger the relation ratio, the wider the
  information can be propagated".
"""

import numpy as np
import pytest

from repro.core import RTGCN
from repro.data import StockDataset
from repro.eval import run_experiment, run_named_experiment

from _harness import (BENCH_MARKETS, BENCH_RUNS, BENCH_WORKERS,
                      bench_config, bench_dataset, format_table, metric_row,
                      publish)

MARKET = BENCH_MARKETS[0]         # needs wiki relations -> US-style market
STRATEGIES = ["uniform", "weight", "time"]


def restricted(dataset: StockDataset, source: str) -> StockDataset:
    """Dataset view whose merged relations come from one source only.

    The single-source matrix is installed in the ``industry_relations``
    slot (with no wiki set), so ``dataset.relations`` resolves to exactly
    that source.
    """
    return StockDataset(market=f"{dataset.market}[{source}]",
                        universe=dataset.universe,
                        industry_relations=dataset.relations_of(source),
                        wiki_relations=None,
                        simulated=dataset.simulated,
                        train_day_count=dataset.train_day_count,
                        test_day_count=dataset.test_day_count)


def build_table6():
    dataset = bench_dataset(MARKET)
    config = bench_config()
    outputs = {}
    for source in ("wiki", "industry"):
        view = restricted(dataset, source)
        results = {"Rank_LSTM": run_named_experiment(
            "Rank_LSTM", view, config, n_runs=BENCH_RUNS,
            workers=BENCH_WORKERS)}
        for strategy in STRATEGIES:
            label = f"RT-GCN ({strategy[0].upper()})"
            results[label] = run_experiment(
                label,
                lambda gen, s=strategy, v=view: RTGCN(
                    v.relations, strategy=s, relational_filters=16,
                    rng=gen),
                view, config, n_runs=BENCH_RUNS, workers=BENCH_WORKERS)
        outputs[source] = results
    return outputs


def test_table6_relation_type_ablation(benchmark):
    outputs = benchmark.pedantic(build_table6, rounds=1, iterations=1)
    rows = []
    for source, results in outputs.items():
        for name, result in results.items():
            rows.append([source] + metric_row(name, result.summary()))
    text = format_table(
        f"Table VI — wiki vs industry relations on {MARKET}",
        ["Relations", "Model", "MRR", "IRR-1", "IRR-5", "IRR-10"], rows,
        note=("Paper shape: RT-GCN beats Rank_LSTM under both sources; the "
              "denser industry\nrelations usually propagate more signal "
              "than the sparse wiki relations."))
    publish("table6_relation_types", text)

    for source, results in outputs.items():
        best_ours = max(results[f"RT-GCN ({s[0].upper()})"].mean("IRR-5")
                        for s in STRATEGIES)
        reference = results["Rank_LSTM"].mean("IRR-5")
        # Relations must help (or at bench scale at least not hurt by more
        # than the run-to-run noise band).
        tolerance = max(0.10, 0.25 * abs(reference))
        assert best_ours > reference - tolerance, source
