"""Table VII — module ablation: R-Conv vs T-Conv vs RT-GCN (U).

R-Conv keeps only the relational convolution (uniform strategy), T-Conv
keeps only the temporal convolution, RT-GCN (U) keeps both.

Paper shape targets (§V-D-2): RT-GCN (U) > T-Conv > R-Conv — temporal
features carry most of the signal, relational aggregation adds on top.
"""

import numpy as np
import pytest

from repro.core import RTGCN
from repro.eval import run_experiment

from _harness import (BENCH_MARKETS, BENCH_RUNS, BENCH_WORKERS,
                      bench_config, bench_dataset, format_table, metric_row,
                      publish)

VARIANTS = {
    "RT-GCN (U)": lambda rel, gen: RTGCN(rel, strategy="uniform",
                                         relational_filters=16, rng=gen),
    "R-Conv": lambda rel, gen: RTGCN.r_conv(rel, relational_filters=16,
                                            rng=gen),
    "T-Conv": lambda rel, gen: RTGCN.t_conv(rel, relational_filters=16,
                                            rng=gen),
}


def build_table7():
    config = bench_config()
    outputs = {}
    # Two markets by default (the paper reports three; set
    # RTGCN_BENCH_MARKETS to widen) — the aggregate shape check needs more
    # than one market but the third mostly costs wall-clock.
    for market in BENCH_MARKETS[:2]:
        dataset = bench_dataset(market)
        outputs[market] = {
            name: run_experiment(
                name, lambda gen, f=factory: f(dataset.relations, gen),
                dataset, config, n_runs=BENCH_RUNS,
                workers=BENCH_WORKERS)
            for name, factory in VARIANTS.items()}
    return outputs


def test_table7_module_ablation(benchmark):
    outputs = benchmark.pedantic(build_table7, rounds=1, iterations=1)
    rows = []
    for market, results in outputs.items():
        for name in VARIANTS:
            rows.append([market] + metric_row(name, results[name].summary()))
    text = format_table(
        "Table VII — R-Conv vs T-Conv vs RT-GCN (U)",
        ["Market", "Model", "MRR", "IRR-1", "IRR-5", "IRR-10"], rows,
        note=("Paper shape: full RT-GCN (U) > T-Conv > R-Conv; stock "
              "prediction depends most\non temporal features, but "
              "relational aggregation adds information on top."))
    publish("table7_ablation", text)

    # Aggregate shape check across markets (single-market noise allowed).
    def mean_irr5(name):
        return np.mean([outputs[m][name].mean("IRR-5")
                        for m in outputs])

    assert mean_irr5("RT-GCN (U)") > mean_irr5("R-Conv")
    assert mean_irr5("T-Conv") > mean_irr5("R-Conv")
