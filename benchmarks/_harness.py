"""Shared infrastructure for the per-table / per-figure benchmarks.

Every bench regenerates one artifact of the paper's evaluation section
(Tables II–VIII, Figures 5–8).  Defaults run the ``*-mini`` market presets
so the whole directory finishes on a laptop CPU; set environment variables
to scale up:

- ``RTGCN_BENCH_EPOCHS``  (default 12)  training epochs per run
- ``RTGCN_BENCH_RUNS``    (default 3)   repeated runs per model (paper: 15)
- ``RTGCN_BENCH_MARKETS`` (default "nasdaq-mini,nyse-mini,csi-mini")
- ``RTGCN_BENCH_WORKERS`` (default 1)   worker processes per experiment
  (results are bitwise-identical to serial; see docs/parallelism.md)

Each bench prints the paper-style table and writes it under
``benchmarks/results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import TrainConfig
from repro.data import StockDataset, load_market
from repro.eval.speed import MIN_MEASURABLE_SECONDS, SpeedMeasurement
from repro.obs import SCHEMA_VERSION

RESULTS_DIR = Path(__file__).resolve().parent / "results"

BENCH_EPOCHS = int(os.environ.get("RTGCN_BENCH_EPOCHS", "12"))
BENCH_RUNS = int(os.environ.get("RTGCN_BENCH_RUNS", "3"))
BENCH_MARKETS = os.environ.get(
    "RTGCN_BENCH_MARKETS", "nasdaq-mini,nyse-mini,csi-mini").split(",")
BENCH_WINDOW = int(os.environ.get("RTGCN_BENCH_WINDOW", "10"))
BENCH_SEED = int(os.environ.get("RTGCN_BENCH_SEED", "0"))
#: early stopping (0 = disabled, the default): the mini presets'
#: validation tail lies in the pre-crash regime while the test period is
#: crash+recovery, so validation-based selection adds regime-mismatch noise
BENCH_PATIENCE = int(os.environ.get("RTGCN_BENCH_PATIENCE", "0"))
BENCH_VALIDATION_DAYS = int(os.environ.get("RTGCN_BENCH_VALIDATION_DAYS",
                                           "30"))
BENCH_WORKERS = int(os.environ.get("RTGCN_BENCH_WORKERS", "1"))

# Keyed by (market, seed): a bench that loads the same market under a
# different seed (e.g. a sensitivity sweep overriding BENCH_SEED) must not
# be served the cached dataset generated under the session seed.
_dataset_cache: Dict[tuple, StockDataset] = {}


def bench_dataset(market: str, seed: Optional[int] = None) -> StockDataset:
    """Load (and cache) a market preset for the bench session."""
    key = (market, BENCH_SEED if seed is None else seed)
    if key not in _dataset_cache:
        _dataset_cache[key] = load_market(market, seed=key[1])
    return _dataset_cache[key]


def bench_config(**overrides) -> TrainConfig:
    """The shared §V-B-4 training configuration at bench scale."""
    defaults = dict(window=BENCH_WINDOW, num_features=4, alpha=0.1,
                    epochs=BENCH_EPOCHS, seed=BENCH_SEED,
                    early_stopping_patience=BENCH_PATIENCE or None,
                    validation_days=BENCH_VALIDATION_DAYS)
    defaults.update(overrides)
    return TrainConfig(**defaults)


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence], note: Optional[str] = None
                 ) -> str:
    """Render an aligned text table in the paper's layout."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [max(len(str(h)), *(len(r[i]) for r in rendered_rows))
              if rendered_rows else len(str(h))
              for i, h in enumerate(headers)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if np.isnan(value):
            return "-"
        if value != 0.0 and abs(value) < 0.005:
            return f"{value:.0e}"
        return f"{value:+.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def publish(name: str, text: str) -> Path:
    """Print a bench artifact and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print("\n" + text + "\n")
    return path


def sanitize_json(value):
    """Replace NaN/Inf floats with ``None``, recursively.

    ``json.dumps`` would otherwise emit bare ``NaN``/``Infinity`` tokens —
    which are not JSON and crash strict parsers — or, with earlier
    handling, the offending keys were dropped before serialization, hiding
    that a measurement degenerated.  An explicit ``null`` keeps the key
    visible so downstream regression tooling can distinguish "not
    measured" from "measured fine".
    """
    if isinstance(value, dict):
        return {key: sanitize_json(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_json(item) for item in value]
    if isinstance(value, (float, np.floating)):
        return float(value) if np.isfinite(value) else None
    if isinstance(value, np.integer):
        return int(value)
    return value


def publish_json(name: str, payload: dict) -> Path:
    """Persist machine-readable telemetry as ``results/<name>.json``.

    Wraps ``payload`` in the :mod:`repro.obs` schema envelope
    (``schema_version``, ``benchmark``, ``created_at``, bench-scale
    settings) so future PRs can regress against these artifacts without
    parsing the text tables.  Non-finite floats are written as ``null``
    (see :func:`sanitize_json`); ``allow_nan=False`` guarantees no bare
    ``NaN`` token can ever reach the artifact.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    envelope = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "settings": {"epochs": BENCH_EPOCHS, "runs": BENCH_RUNS,
                     "window": BENCH_WINDOW, "seed": BENCH_SEED},
        **payload,
    }
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(sanitize_json(envelope), indent=2,
                               sort_keys=True, allow_nan=False) + "\n")
    return path


def speed_entry(measurement: SpeedMeasurement,
                baseline: Optional[SpeedMeasurement] = None) -> dict:
    """JSON-ready record of one :class:`SpeedMeasurement`.

    Timings at or below the timer resolution are *degenerate*: any ratio
    built from them is noise.  Instead of dropping such entries (the old
    behavior, which made a degenerate run indistinguishable from a missing
    one), the record keeps every key, reports the unusable speedups as
    ``None`` and raises a ``degenerate_timing`` flag.
    """
    degenerate = (
        measurement.train_seconds_per_epoch <= MIN_MEASURABLE_SECONDS
        or measurement.test_seconds <= MIN_MEASURABLE_SECONDS)
    entry = {
        "name": measurement.name,
        "train_seconds_per_epoch": measurement.train_seconds_per_epoch,
        "test_seconds": measurement.test_seconds,
        "phases": measurement.phases,
        "degenerate_timing": degenerate,
    }
    if baseline is not None:
        with warnings.catch_warnings():
            # speedup_over already returns NaN for sub-resolution inputs;
            # the flag above carries the signal, so the warning is noise
            # inside a bench run.
            warnings.simplefilter("ignore", RuntimeWarning)
            speedup = measurement.speedup_over(baseline)
        entry["speedup_over"] = baseline.name
        entry["train_speedup"] = speedup["train"]
        entry["test_speedup"] = speedup["test"]
        entry["degenerate_timing"] = degenerate or any(
            np.isnan(v) for v in speedup.values())
    return entry


def checkpoint_telemetry(trainer, directory: Optional[Path] = None) -> dict:
    """Checkpoint-cost fields for the benchmark JSON artifacts.

    Writes one full :class:`~repro.ckpt.TrainingCheckpoint` of
    ``trainer`` (model + optimizer + RNG state) through a
    :class:`~repro.ckpt.CheckpointManager` and reports its size and
    write latency, so artifact diffs catch a checkpoint-format size
    regression the same way they catch a speed regression.
    """
    import shutil
    import tempfile

    from repro.ckpt import CheckpointManager

    target = directory if directory is not None else Path(
        tempfile.mkdtemp(prefix="bench-ckpt-"))
    try:
        manager = CheckpointManager(target)
        manager.save(trainer.state_dict())
        return manager.telemetry()
    finally:
        if directory is None:
            shutil.rmtree(target, ignore_errors=True)


def metric_row(name: str, summary: dict,
               keys: Sequence[str] = ("MRR", "IRR-1", "IRR-5", "IRR-10")
               ) -> List:
    """One Table-IV-style row from a metric-summary dict."""
    return [name] + [summary[k].mean if k in summary else None for k in keys]
