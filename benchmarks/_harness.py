"""Shared infrastructure for the per-table / per-figure benchmarks.

Every bench regenerates one artifact of the paper's evaluation section
(Tables II–VIII, Figures 5–8).  Defaults run the ``*-mini`` market presets
so the whole directory finishes on a laptop CPU; set environment variables
to scale up:

- ``RTGCN_BENCH_EPOCHS``  (default 12)  training epochs per run
- ``RTGCN_BENCH_RUNS``    (default 3)   repeated runs per model (paper: 15)
- ``RTGCN_BENCH_MARKETS`` (default "nasdaq-mini,nyse-mini,csi-mini")
- ``RTGCN_BENCH_WORKERS`` (default 1)   worker processes per experiment
  (results are bitwise-identical to serial; see docs/parallelism.md)

Each bench prints the paper-style table and writes it under
``benchmarks/results/`` so the output survives pytest's capture.  Set
``RTGCN_BENCH_STORE=/path/to/experiments.sqlite`` to additionally record
every JSON artifact in the experiment store (``repro.store``), queryable
via ``repro.cli db``.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import TrainConfig
from repro.data import StockDataset, load_market
from repro.eval.speed import SpeedMeasurement
from repro.store import (JsonSink, ResultSink, StoreSink, TeeSink,
                         bench_envelope, sanitize_payload, speed_record)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: set to a sqlite path to tee bench artifacts into the experiment store
BENCH_STORE = os.environ.get("RTGCN_BENCH_STORE", "")

BENCH_EPOCHS = int(os.environ.get("RTGCN_BENCH_EPOCHS", "12"))
BENCH_RUNS = int(os.environ.get("RTGCN_BENCH_RUNS", "3"))
BENCH_MARKETS = os.environ.get(
    "RTGCN_BENCH_MARKETS", "nasdaq-mini,nyse-mini,csi-mini").split(",")
BENCH_WINDOW = int(os.environ.get("RTGCN_BENCH_WINDOW", "10"))
BENCH_SEED = int(os.environ.get("RTGCN_BENCH_SEED", "0"))
#: early stopping (0 = disabled, the default): the mini presets'
#: validation tail lies in the pre-crash regime while the test period is
#: crash+recovery, so validation-based selection adds regime-mismatch noise
BENCH_PATIENCE = int(os.environ.get("RTGCN_BENCH_PATIENCE", "0"))
BENCH_VALIDATION_DAYS = int(os.environ.get("RTGCN_BENCH_VALIDATION_DAYS",
                                           "30"))
BENCH_WORKERS = int(os.environ.get("RTGCN_BENCH_WORKERS", "1"))

# Keyed by (market, seed): a bench that loads the same market under a
# different seed (e.g. a sensitivity sweep overriding BENCH_SEED) must not
# be served the cached dataset generated under the session seed.
_dataset_cache: Dict[tuple, StockDataset] = {}


def bench_dataset(market: str, seed: Optional[int] = None) -> StockDataset:
    """Load (and cache) a market preset for the bench session."""
    key = (market, BENCH_SEED if seed is None else seed)
    if key not in _dataset_cache:
        _dataset_cache[key] = load_market(market, seed=key[1])
    return _dataset_cache[key]


def bench_config(**overrides) -> TrainConfig:
    """The shared §V-B-4 training configuration at bench scale."""
    defaults = dict(window=BENCH_WINDOW, num_features=4, alpha=0.1,
                    epochs=BENCH_EPOCHS, seed=BENCH_SEED,
                    early_stopping_patience=BENCH_PATIENCE or None,
                    validation_days=BENCH_VALIDATION_DAYS)
    defaults.update(overrides)
    return TrainConfig(**defaults)


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence], note: Optional[str] = None
                 ) -> str:
    """Render an aligned text table in the paper's layout."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [max(len(str(h)), *(len(r[i]) for r in rendered_rows))
              if rendered_rows else len(str(h))
              for i, h in enumerate(headers)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if np.isnan(value):
            return "-"
        if value != 0.0 and abs(value) < 0.005:
            return f"{value:.0e}"
        return f"{value:+.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def publish(name: str, text: str) -> Path:
    """Print a bench artifact and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print("\n" + text + "\n")
    return path


def bench_settings() -> dict:
    """The env-derived bench-scale knobs stamped into every artifact."""
    return {"epochs": BENCH_EPOCHS, "runs": BENCH_RUNS,
            "window": BENCH_WINDOW, "seed": BENCH_SEED}


def bench_sink() -> ResultSink:
    """The artifact sink every bench publishes through.

    Always the byte-compatible ``results/<name>.json`` files; teed into
    the experiment store when ``RTGCN_BENCH_STORE`` is set.
    """
    json_sink = JsonSink(RESULTS_DIR)
    if BENCH_STORE:
        return TeeSink(json_sink, StoreSink(BENCH_STORE))
    return json_sink


def publish_result(name: str, payload: dict,
                   sink: Optional[ResultSink] = None) -> Path:
    """Persist machine-readable telemetry as ``results/<name>.json``.

    Wraps ``payload`` in the :mod:`repro.obs` schema envelope
    (``schema_version``, ``benchmark``, ``created_at``, bench-scale
    settings) so future PRs can regress against these artifacts without
    parsing the text tables, and routes it through the
    :class:`~repro.store.ResultSink` layer: the JSON file bytes are
    unchanged, and with ``RTGCN_BENCH_STORE`` set the same envelope also
    lands in the experiment store's telemetry table.  Non-finite floats
    are written as ``null`` — never a bare (non-JSON) ``NaN`` token.
    """
    envelope = bench_envelope(name, payload, settings=bench_settings())
    return (sink if sink is not None else bench_sink()).write_bench(
        name, envelope)


def sanitize_json(value):
    """Deprecated alias of :func:`repro.store.sanitize_payload`."""
    warnings.warn("benchmarks._harness.sanitize_json is deprecated; use "
                  "repro.store.sanitize_payload", DeprecationWarning,
                  stacklevel=2)
    return sanitize_payload(value)


def publish_json(name: str, payload: dict) -> Path:
    """Deprecated alias of :func:`publish_result` (same file bytes)."""
    warnings.warn("benchmarks._harness.publish_json is deprecated; use "
                  "publish_result (ResultSink-backed, same artifact "
                  "bytes)", DeprecationWarning, stacklevel=2)
    return publish_result(name, payload)


def speed_entry(measurement: SpeedMeasurement,
                baseline: Optional[SpeedMeasurement] = None) -> dict:
    """Deprecated alias of :func:`repro.store.speed_record`."""
    warnings.warn("benchmarks._harness.speed_entry is deprecated; use "
                  "repro.store.speed_record", DeprecationWarning,
                  stacklevel=2)
    return speed_record(measurement, baseline)


def checkpoint_telemetry(trainer, directory: Optional[Path] = None) -> dict:
    """Checkpoint-cost fields for the benchmark JSON artifacts.

    Writes one full :class:`~repro.ckpt.TrainingCheckpoint` of
    ``trainer`` (model + optimizer + RNG state) through a
    :class:`~repro.ckpt.CheckpointManager` and reports its size and
    write latency, so artifact diffs catch a checkpoint-format size
    regression the same way they catch a speed regression.
    """
    import shutil
    import tempfile

    from repro.ckpt import CheckpointManager

    target = directory if directory is not None else Path(
        tempfile.mkdtemp(prefix="bench-ckpt-"))
    try:
        manager = CheckpointManager(target)
        manager.save(trainer.state_dict())
        return manager.telemetry()
    finally:
        if directory is None:
            shutil.rmtree(target, ignore_errors=True)


def metric_row(name: str, summary: dict,
               keys: Sequence[str] = ("MRR", "IRR-1", "IRR-5", "IRR-10")
               ) -> List:
    """One Table-IV-style row from a metric-summary dict."""
    return [name] + [summary[k].mean if k in summary else None for k in keys]
