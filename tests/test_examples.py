"""The example scripts must at least import and expose a main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_imports_cleanly(script):
    """Importing an example must not execute its workload (main guard)."""
    path = EXAMPLES_DIR / script
    spec = importlib.util.spec_from_file_location(f"example_{script[:-3]}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), \
        f"{script} must define main()"


def test_expected_examples_present():
    names = set(EXAMPLES)
    for expected in ["quickstart.py", "strategy_comparison.py",
                     "portfolio_backtest.py", "market_anatomy.py",
                     "hyperparameter_search.py"]:
        assert expected in names
