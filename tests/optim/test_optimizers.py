"""Optimizers: update rules, convergence, clipping, schedulers."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.module import Parameter
from repro.optim import (Adam, AdamW, CosineAnnealingLR, ExponentialLR,
                         ReduceLROnPlateau, RMSprop, SGD, StepLR,
                         clip_grad_norm_, clip_grad_value_)
from repro.tensor import Tensor, mse_loss


def quadratic_param(value=5.0):
    return Parameter(np.array([value]))


def step_once(optimizer, param):
    optimizer.zero_grad()
    loss = (param * param).sum()
    loss.backward()
    optimizer.step()
    return loss.item()


class TestSGD:
    def test_plain_update_rule(self):
        p = quadratic_param(3.0)
        SGD([p], lr=0.1).step_count = None
        opt = SGD([p], lr=0.1)
        step_once(opt, p)
        # grad of x^2 at 3 is 6 -> 3 - 0.1*6 = 2.4
        assert np.isclose(p.data[0], 2.4)

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain, momentum = SGD([p1], lr=0.01), SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(10):
            step_once(plain, p1)
            step_once(momentum, p2)
        assert abs(p2.data[0]) < abs(p1.data[0])

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 1.0

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, nesterov=True)

    def test_converges_to_minimum(self):
        p = quadratic_param(4.0)
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            step_once(opt, p)
        assert abs(p.data[0]) < 1e-4


class TestAdam:
    def test_first_step_size_is_lr(self):
        # Bias correction makes the first Adam step ≈ lr in magnitude.
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.05)
        step_once(opt, p)
        assert np.isclose(p.data[0], 1.0 - 0.05, atol=1e-6)

    def test_converges_quadratic(self):
        p = quadratic_param(3.0)
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            step_once(opt, p)
        assert abs(p.data[0]) < 1e-3

    def test_skips_parameters_without_grad(self):
        p, q = quadratic_param(1.0), quadratic_param(2.0)
        opt = Adam([p, q], lr=0.1)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        assert q.data[0] == 2.0

    def test_trains_real_model(self, rng):
        nn.manual_seed(0)
        model = nn.Sequential(nn.Linear(2, 8), nn.Tanh(), nn.Linear(8, 1))
        X = rng.standard_normal((64, 2))
        y = (X[:, :1] * 2 - X[:, 1:] * 0.5)
        opt = Adam(model.parameters(), lr=0.02)
        first = None
        for _ in range(150):
            opt.zero_grad()
            loss = mse_loss(model(Tensor(X)), Tensor(y))
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
        assert loss.item() < first * 0.05

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], betas=(1.0, 0.9))

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], lr=0.0)


class TestAdamWAndRMSprop:
    def test_adamw_decays_even_with_zero_grad(self):
        p = Parameter(np.array([1.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert np.isclose(p.data[0], 1.0 - 0.1 * 0.5)

    def test_rmsprop_converges(self):
        p = quadratic_param(2.0)
        opt = RMSprop([p], lr=0.05)
        for _ in range(200):
            step_once(opt, p)
        assert abs(p.data[0]) < 1e-2


class TestOptimizerState:
    def test_adam_roundtrip_resumes_bitwise(self):
        full = quadratic_param(3.0)
        opt_full = Adam([full], lr=0.05)
        for _ in range(10):
            step_once(opt_full, full)

        half = quadratic_param(3.0)
        opt_half = Adam([half], lr=0.05)
        for _ in range(4):
            step_once(opt_half, half)
        resumed = Parameter(half.data.copy())
        opt_resumed = Adam([resumed], lr=0.05)
        opt_resumed.load_state_dict(opt_half.state_dict())
        for _ in range(6):
            step_once(opt_resumed, resumed)
        assert resumed.data[0] == full.data[0]   # bitwise, not approximate

    def test_sgd_momentum_buffer_roundtrip(self):
        p = quadratic_param(2.0)
        opt = SGD([p], lr=0.01, momentum=0.9)
        for _ in range(3):
            step_once(opt, p)
        state = opt.state_dict()
        q = Parameter(p.data.copy())
        opt2 = SGD([q], lr=0.01, momentum=0.9)
        opt2.load_state_dict(state)
        step_once(opt, p)
        step_once(opt2, q)
        assert p.data[0] == q.data[0]

    def test_state_dict_is_a_copy(self):
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.1)
        step_once(opt, p)
        state = opt.state_dict()
        state["state"][0]["m"][...] = 99.0
        assert not np.allclose(opt.state[0]["m"], 99.0)

    def test_hyperparameters_restored(self):
        opt = Adam([quadratic_param()], lr=0.5, betas=(0.8, 0.95))
        state = opt.state_dict()
        other = Adam([quadratic_param()], lr=0.001)
        other.load_state_dict(state)
        assert other.lr == 0.5
        assert other.beta1 == 0.8
        assert other.beta2 == 0.95

    def test_type_mismatch_rejected(self):
        sgd_state = SGD([quadratic_param()], lr=0.1).state_dict()
        with pytest.raises(ValueError, match="SGD"):
            Adam([quadratic_param()]).load_state_dict(sgd_state)

    def test_unknown_hyperparameter_rejected(self):
        opt = Adam([quadratic_param()])
        state = opt.state_dict()
        state["hyperparameters"]["temperature"] = 1.0
        with pytest.raises(ValueError, match="temperature"):
            Adam([quadratic_param()]).load_state_dict(state)

    def test_out_of_range_parameter_index_rejected(self):
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.1)
        step_once(opt, p)
        state = opt.state_dict()
        with pytest.raises(ValueError, match="parameter"):
            Adam([quadratic_param(), quadratic_param()]).load_state_dict(
                {**state, "state": {5: state["state"][0]}})

    def test_buffer_shape_mismatch_rejected(self):
        p = Parameter(np.ones(3))
        opt = Adam([p], lr=0.1)
        p.grad = np.ones(3)
        opt.step()
        state = opt.state_dict()
        with pytest.raises(ValueError, match="shape"):
            Adam([Parameter(np.ones(7))]).load_state_dict(state)


class TestSchedulerState:
    def test_steplr_roundtrip_continues_schedule(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        for _ in range(3):
            sched.step()
        opt2 = Adam([quadratic_param()], lr=1.0)
        sched2 = StepLR(opt2, step_size=2, gamma=0.1)
        sched2.load_state_dict(sched.state_dict())
        assert opt2.lr == opt.lr
        sched.step()
        sched2.step()
        assert opt2.lr == opt.lr == pytest.approx(0.01)

    def test_scheduler_type_mismatch_rejected(self):
        opt = Adam([quadratic_param()], lr=1.0)
        state = StepLR(opt, step_size=2).state_dict()
        with pytest.raises(ValueError, match="StepLR"):
            ExponentialLR(opt, gamma=0.5).load_state_dict(state)

    def test_plateau_roundtrip_keeps_counters_and_lr(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=1)
        sched.step(1.0)
        sched.step(1.0)
        sched.step(1.0)   # second bad epoch -> lr 0.5
        opt2 = Adam([quadratic_param()], lr=1.0)
        sched2 = ReduceLROnPlateau(opt2, factor=0.5, patience=1)
        sched2.load_state_dict(sched.state_dict())
        assert opt2.lr == 0.5
        assert sched2.best == 1.0
        sched.step(1.0)
        sched2.step(1.0)
        assert opt2.lr == opt.lr


class TestClipping:
    def test_clip_norm_scales_down(self):
        p = Parameter(np.array([1.0, 1.0]))
        p.grad = np.array([3.0, 4.0])
        total = clip_grad_norm_([p], max_norm=1.0)
        assert np.isclose(total, 5.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_clip_norm_no_change_below_threshold(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        clip_grad_norm_([p], max_norm=10.0)
        assert np.isclose(p.grad[0], 0.5)

    def test_clip_value(self):
        p = Parameter(np.array([1.0, 1.0]))
        p.grad = np.array([-7.0, 0.2])
        clip_grad_value_([p], 0.5)
        assert np.allclose(p.grad, [-0.5, 0.2])


class TestSchedulers:
    def test_step_lr(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        assert np.isclose(opt.lr, 0.25)

    def test_cosine_reaches_eta_min(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.05)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.05)

    def test_cosine_monotone_decreasing(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=8)
        values = []
        for _ in range(8):
            sched.step()
            values.append(opt.lr)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_plateau_reduces_after_patience(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=1)
        sched.step(1.0)
        sched.step(1.0)   # bad epoch 1
        sched.step(1.0)   # bad epoch 2 -> reduce
        assert np.isclose(opt.lr, 0.5)

    def test_plateau_resets_on_improvement(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=1)
        sched.step(1.0)
        sched.step(1.1)
        sched.step(0.5)   # improvement resets counter
        sched.step(0.6)
        assert opt.lr == 1.0

    def test_plateau_max_mode(self):
        opt = Adam([quadratic_param()], lr=1.0)
        sched = ReduceLROnPlateau(opt, factor=0.1, patience=0, mode="max")
        sched.step(1.0)
        sched.step(0.9)   # worse in max mode -> reduce immediately
        assert np.isclose(opt.lr, 0.1)

    def test_plateau_invalid_mode(self):
        with pytest.raises(ValueError):
            ReduceLROnPlateau(Adam([quadratic_param()]), mode="sideways")
