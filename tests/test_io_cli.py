"""Checkpoint round-trips and the command-line interface."""

import dataclasses
import json

import numpy as np
import pytest

import repro.nn as nn
from repro.cli import _config_from_args, build_parser, main
from repro.core import RTGCN, TrainConfig
from repro.io import load_checkpoint, save_checkpoint
from repro.tensor import Tensor


class TestCheckpoints:
    """The deprecated ``repro.io`` shims (every call now warns)."""

    @staticmethod
    def save(model, path, **kwargs):
        with pytest.warns(DeprecationWarning, match="repro.ckpt"):
            return save_checkpoint(model, path, **kwargs)

    @staticmethod
    def load(model, path, **kwargs):
        with pytest.warns(DeprecationWarning, match="repro.ckpt"):
            return load_checkpoint(model, path, **kwargs)

    def test_roundtrip_restores_outputs(self, tmp_path, rng):
        model = nn.Sequential(nn.Linear(4, 8), nn.Tanh(), nn.Linear(8, 2))
        path = self.save(model, tmp_path / "model",
                         metadata={"note": "hello"})
        assert path.suffix == ".npz"

        clone = nn.Sequential(nn.Linear(4, 8), nn.Tanh(), nn.Linear(8, 2))
        meta = self.load(clone, path)
        assert meta["user"]["note"] == "hello"
        assert meta["num_parameters"] == model.num_parameters()
        x = Tensor(rng.standard_normal((3, 4)))
        assert np.allclose(model(x).data, clone(x).data)

    def test_rtgcn_checkpoint(self, tmp_path, nasdaq_mini, rng):
        model = RTGCN(nasdaq_mini.relations, strategy="weight",
                      relational_filters=8, rng=rng)
        path = self.save(model, tmp_path / "rtgcn.npz")
        clone = RTGCN(nasdaq_mini.relations, strategy="weight",
                      relational_filters=8,
                      rng=np.random.default_rng(999))
        self.load(clone, path)
        feats = Tensor(np.random.default_rng(0).standard_normal((6, 48, 4)))
        model.eval()
        clone.eval()
        assert np.allclose(model(feats).data, clone(feats).data)

    def test_class_mismatch_rejected(self, tmp_path):
        model = nn.Linear(3, 2)
        path = self.save(model, tmp_path / "linear.npz")
        other = nn.Sequential(nn.Linear(3, 2))
        with pytest.raises(ValueError, match="Linear"):
            self.load(other, path)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, data=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            self.load(nn.Linear(2, 2), bogus)

    def test_suffix_added_automatically(self, tmp_path):
        model = nn.Linear(2, 2)
        path = self.save(model, tmp_path / "plain")
        assert path.name == "plain.npz"
        self.load(nn.Linear(2, 2), tmp_path / "plain")

    def test_writes_format_v2_readable_by_repro_ckpt(self, tmp_path):
        from repro.ckpt import FORMAT_VERSION, load as load_ckpt
        model = nn.Linear(3, 3)
        path = self.save(model, tmp_path / "v2.npz")
        checkpoint = load_ckpt(path)
        assert checkpoint.format_version == FORMAT_VERSION
        assert checkpoint.model_class == "Linear"
        assert set(checkpoint.model_state) == set(model.state_dict())

    def test_legacy_v1_archive_still_loads(self, tmp_path):
        model = nn.Linear(3, 2)
        blob = np.frombuffer(
            json.dumps({"format_version": 1, "model_class": "Linear",
                        "num_parameters": model.num_parameters(),
                        "user": {"note": "pre-rebase"}}).encode(),
            dtype=np.uint8)
        path = tmp_path / "legacy.npz"
        np.savez(path, __checkpoint_meta__=blob, **model.state_dict())
        clone = nn.Linear(3, 2)
        meta = self.load(clone, path)
        assert meta["user"]["note"] == "pre-rebase"
        assert np.allclose(clone.weight.data, model.weight.data)


class TestCLI:
    def test_markets_command(self, capsys):
        assert main(["markets"]) == 0
        out = capsys.readouterr().out
        assert "nasdaq" in out and "854" in out

    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "RT-GCN (T)" in out and "STHAN-SR" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_command_quick(self, capsys):
        code = main(["train", "--market", "csi-mini", "--model", "LSTM",
                     "--epochs", "1", "--window", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IRR-5" in out

    def test_train_checkpoint_only_for_rtgcn(self):
        with pytest.raises(SystemExit):
            main(["train", "--model", "LSTM", "--checkpoint", "/tmp/x",
                  "--market", "csi-mini", "--epochs", "1"])

    def test_train_checkpoint_dir_and_resume(self, tmp_path, capsys):
        args = ["train", "--market", "csi-mini", "--epochs", "1",
                "--window", "6", "--max-train-days", "8",
                "--checkpoint-dir", str(tmp_path)]
        assert main(args) == 0
        assert any(tmp_path.glob("ckpt-*.npz"))
        # resuming a finished run is a no-op train + fresh evaluation
        assert main(args + ["--resume"]) == 0
        assert "IRR-5" in capsys.readouterr().out

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            main(["train", "--market", "csi-mini", "--resume"])

    def test_checkpoint_dir_only_for_rtgcn(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["train", "--model", "LSTM", "--market", "csi-mini",
                  "--epochs", "1", "--checkpoint-dir", str(tmp_path)])

    def test_compare_command_quick(self, capsys):
        code = main(["compare", "--market", "csi-mini",
                     "--models", "LSTM", "--runs", "1", "--epochs", "1",
                     "--window", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LSTM" in out

    def test_sweep_command_quick(self, capsys):
        code = main(["sweep", "--markets", "csi-mini",
                     "--models", "LSTM", "--runs", "2", "--workers", "2",
                     "--epochs", "1", "--window", "6",
                     "--max-train-days", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "csi-mini" in out and "LSTM" in out
        assert "worker(s)" in out

    def test_sweep_telemetry_report_written(self, tmp_path, capsys):
        code = main(["sweep", "--markets", "csi-mini",
                     "--models", "LSTM", "--runs", "2", "--workers", "2",
                     "--epochs", "1", "--window", "6",
                     "--max-train-days", "8",
                     "--telemetry-dir", str(tmp_path)])
        assert code == 0
        reports = list(tmp_path.glob("*.json"))
        assert len(reports) == 1
        from repro.obs import validate_report
        validate_report(json.loads(reports[0].read_text()))


class TestModelRegistrySync:
    """`repro.cli models` must mirror repro.baselines.registry exactly —
    a model registered there appears in the CLI with no CLI edit."""

    def test_models_output_lists_every_registered_model(self, capsys):
        from repro.baselines import available_baselines

        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in available_baselines():
            assert name in out, f"{name} missing from `models` output"

    def test_models_output_has_no_unregistered_rows(self, capsys):
        from repro.baselines import available_baselines

        assert main(["models"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()[1:]
        names = {line[:12].strip() for line in lines}
        registered = {name[:12].strip()
                      for name in available_baselines()}
        assert names == registered

    def test_strategy_column_matches_registry(self, capsys):
        from repro.baselines import get_spec, rtgcn_strategies

        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name, strategy in rtgcn_strategies().items():
            assert strategy == get_spec(name).strategy
            assert strategy in out

    def test_train_accepts_every_rtgcn_variant(self):
        # The checkpointable-model set is rtgcn_strategies(), not a
        # hand-kept table: every variant takes the trainer path.
        from repro.baselines import rtgcn_strategies

        strategies = rtgcn_strategies()
        assert set(strategies.values()) == {"uniform", "weight", "time"}
        for name in strategies:
            code = main(["train", "--market", "csi-mini", "--model", name,
                         "--epochs", "1", "--window", "6",
                         "--max-train-days", "6"])
            assert code == 0


class TestServeQueryCLI:
    @pytest.fixture(scope="class")
    def ckpt_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-serve")
        assert main(["train", "--market", "csi-mini", "--epochs", "1",
                     "--window", "6", "--max-train-days", "8",
                     "--checkpoint-dir", str(directory)]) == 0
        return directory

    def test_checkpoint_dir_archives_record_model_and_market(self,
                                                             ckpt_dir):
        from repro.ckpt import load

        checkpoint = load(next(iter(sorted(ckpt_dir.glob("*.npz")))))
        assert checkpoint.metadata["model"] == "RT-GCN (T)"
        assert checkpoint.metadata["market"] == "csi-mini"

    def test_query_round_trip(self, ckpt_dir, capsys):
        import json
        import threading

        from repro.serve._deprecation import sanctioned
        from repro.serve.httpd import RankingHTTPServer
        from repro.serve.registry import ModelRegistry
        from repro.serve.service import RankingService

        with sanctioned():
            service = RankingService(ModelRegistry(ckpt_dir))
            server = RankingHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            port = str(server.server_address[1])
            assert main(["query", "--top-k", "10",
                         "--port", port]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert len(payload["top_k"]) == 10
            assert payload["top_k"][0]["rank"] == 1
            assert main(["query", "--endpoint", "health",
                         "--port", port]) == 0
            assert json.loads(
                capsys.readouterr().out)["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)

    def test_serve_refuses_empty_directory(self, tmp_path):
        with pytest.raises(SystemExit, match="no checkpoints"):
            main(["serve", "--checkpoint-dir", str(tmp_path)])

    def test_query_unreachable_server_exits_nonzero(self):
        with pytest.raises(SystemExit, match="query failed"):
            main(["query", "--port", "1", "--timeout", "1"])


class TestConfigSurface:
    def test_every_trainconfig_field_has_a_flag(self):
        parser = build_parser()
        args = parser.parse_args(["train"])
        for spec in dataclasses.fields(TrainConfig):
            assert hasattr(args, spec.name), \
                f"TrainConfig.{spec.name} has no CLI flag"

    def test_previously_dropped_fields_reach_the_config(self):
        args = build_parser().parse_args(
            ["train", "--weight-decay", "1e-4", "--grad-clip", "2.5",
             "--early-stopping-patience", "3", "--max-train-days", "17",
             "--learning-rate", "0.01", "--validation-days", "9",
             "--no-shuffle"])
        config = _config_from_args(args)
        assert config.weight_decay == 1e-4
        assert config.grad_clip == 2.5
        assert config.early_stopping_patience == 3
        assert config.max_train_days == 17
        assert config.learning_rate == 0.01
        assert config.validation_days == 9
        assert config.shuffle is False

    def test_defaults_match_trainconfig_except_cli_overrides(self):
        config = _config_from_args(build_parser().parse_args(["train"]))
        reference = TrainConfig()
        for spec in dataclasses.fields(TrainConfig):
            if spec.name in ("window", "epochs"):   # intentional CLI quicks
                continue
            assert getattr(config, spec.name) == \
                getattr(reference, spec.name), spec.name

    def test_features_alias_still_accepted(self):
        args = build_parser().parse_args(["train", "--features", "2"])
        assert _config_from_args(args).num_features == 2


class TestProfileCommand:
    def test_profile_smoke(self, tmp_path, capsys):
        report_path = tmp_path / "profile.json"
        code = main(["profile", "--market", "csi-mini", "--model", "LSTM",
                     "--epochs", "1", "--window", "6",
                     "--max-train-days", "5", "--top", "5",
                     "--json", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        # op table and phase table are printed
        assert "op" in out and "seconds" in out
        assert "forward" in out and "backward" in out
        assert "inference" in out
        # and the machine-readable report round-trips through the schema
        from repro.obs import RunReport
        payload = json.loads(report_path.read_text())
        report = RunReport.from_dict(payload)
        assert report.kind == "profile"
        assert report.config["model"] == "LSTM"
        assert report.ops and report.phases
        assert len(report.epoch_losses) == 1      # --epochs 1
        ops_seen = {row["op"] for row in report.ops}
        # the LSTM core shows up either as raw matmuls or, with fusion
        # on (the default), as the fused cell/affine tape nodes
        assert ops_seen & {"matmul", "einsum",
                           "lstm_cell_fused", "affine_act_fused"}
