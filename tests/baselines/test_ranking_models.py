"""Gradient ranking/regression baselines: LSTM, SFM, RSR, RT-GAT, STHAN-SR."""

import numpy as np
import pytest

from repro.baselines import (LSTMScorer, RSR, RTGAT, SFMScorer, STHANSR,
                             hyperedges_from_relations)
from repro.baselines.sthan import HawkesAttention, HypergraphConv
from repro.graph import RelationMatrix
from repro.tensor import Tensor, no_grad


def relations(n=6):
    return RelationMatrix.from_edges(n, ["industry:a", "wiki:b"], [
        (0, 1, 0), (1, 2, 0), (2, 3, 1), (4, 5, 0),
    ])


def window(rng, t=6, n=6, d=4):
    return Tensor(rng.standard_normal((t, n, d)))


class TestSequentialScorers:
    @pytest.mark.parametrize("cls", [LSTMScorer, SFMScorer])
    def test_scores_shape(self, cls, rng):
        model = cls(num_features=4, hidden_size=8, rng=rng)
        assert model(window(rng)).shape == (6,)

    @pytest.mark.parametrize("cls", [LSTMScorer, SFMScorer])
    def test_rank_validation(self, cls, rng):
        model = cls(num_features=4, hidden_size=8, rng=rng)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((6, 4))))

    def test_stocks_are_independent(self, rng):
        """Relation-blind scorers: one stock's score ignores the others."""
        model = LSTMScorer(num_features=4, hidden_size=8, rng=rng)
        x = rng.standard_normal((6, 6, 4))
        with no_grad():
            base = model(Tensor(x)).data.copy()
            bumped = x.copy()
            bumped[:, 2, :] += 10.0
            out = model(Tensor(bumped)).data
        others = [i for i in range(6) if i != 2]
        assert np.allclose(out[others], base[others])
        assert not np.isclose(out[2], base[2])

    def test_gradients_flow(self, rng):
        model = SFMScorer(num_features=4, hidden_size=6, rng=rng)
        (model(window(rng)) ** 2).sum().backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name


class TestRSR:
    @pytest.mark.parametrize("mode", ["explicit", "implicit"])
    def test_scores_shape(self, mode, rng):
        model = RSR(relations(), hidden_size=8, mode=mode, rng=rng)
        assert model(window(rng)).shape == (6,)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            RSR(relations(), mode="magic")

    def test_neighbor_information_flows(self, rng):
        model = RSR(relations(), hidden_size=8, mode="explicit", rng=rng)
        model.eval()
        x = rng.standard_normal((6, 6, 4))
        with no_grad():
            base = model(Tensor(x)).data.copy()
            bumped = x.copy()
            bumped[:, 1, :] += 5.0     # neighbor of stock 0
            out = model(Tensor(bumped)).data
        assert not np.isclose(out[0], base[0])

    def test_strengths_rows_are_distributions(self, rng):
        model = RSR(relations(), hidden_size=8, mode="implicit", rng=rng)
        embeddings = Tensor(rng.standard_normal((6, 8)))
        strengths = model._strengths(embeddings).data
        assert np.allclose(strengths.sum(axis=1), 1.0)
        # Non-neighbors get (numerically) zero strength.
        assert strengths[0, 3] < 1e-6

    def test_gradients_reach_relation_weights(self, rng):
        model = RSR(relations(), hidden_size=6, mode="explicit", rng=rng)
        (model(window(rng)) ** 2).sum().backward()
        assert model.rel_weight.grad is not None
        assert np.isfinite(model.rel_weight.grad).all()

    @pytest.mark.parametrize("mode", ["explicit", "implicit"])
    def test_all_params_get_grads(self, mode, rng):
        model = RSR(relations(), hidden_size=6, mode=mode, rng=rng)
        (model(window(rng)) ** 2).sum().backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name


class TestRTGAT:
    def test_scores_shape(self, rng):
        model = RTGAT(relations(), filters=8, n_heads=2, rng=rng)
        assert model(window(rng)).shape == (6,)

    def test_unrelated_stock_isolated(self, rng):
        rel = RelationMatrix.from_edges(5, ["t"], [(0, 1, 0)])
        model = RTGAT(rel, filters=4, n_heads=1, dropout=0.0, rng=rng)
        model.eval()
        x = rng.standard_normal((6, 5, 4))
        with no_grad():
            base = model(Tensor(x)).data.copy()
            bumped = x.copy()
            bumped[:, 0, :] += 4.0
            out = model(Tensor(bumped)).data
        assert np.isclose(out[3], base[3])       # not connected to 0
        assert not np.isclose(out[1], base[1])   # attends to 0

    def test_multi_layer(self, rng):
        model = RTGAT(relations(), filters=8, num_layers=2, rng=rng)
        assert model(window(rng)).shape == (6,)

    def test_gradients_flow(self, rng):
        model = RTGAT(relations(), filters=4, dropout=0.0, rng=rng)
        (model(window(rng)) ** 2).sum().backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name


class TestSTHANSR:
    def test_hyperedges_from_relations(self):
        incidence = hyperedges_from_relations(relations())
        # type 0 links stocks {0,1,2} and {4,5}; type 1 links {2,3}
        assert incidence.shape == (6, 2)
        assert incidence[:, 0].sum() == 5.0
        assert incidence[:, 1].sum() == 2.0

    def test_empty_hypergraph_rejected(self):
        rel = RelationMatrix.empty(4, ["t"])
        with pytest.raises(ValueError):
            hyperedges_from_relations(rel)

    def test_scores_shape(self, rng):
        model = STHANSR(relations(), hidden_size=8, rng=rng)
        assert model(window(rng)).shape == (6,)

    def test_hawkes_weights_pool_over_time(self, rng):
        hawkes = HawkesAttention(4, rng=rng)
        states = Tensor(rng.standard_normal((3, 7, 4)))
        assert hawkes(states).shape == (3, 4)

    def test_hawkes_decay_prefers_recent(self, rng):
        hawkes = HawkesAttention(4, rng=rng)
        hawkes.raw_decay.data[:] = 3.0     # strong decay
        # With uniform content scores, decay should put almost all weight
        # on the final step.
        hawkes.context.data[:] = 0.0       # content scores all equal
        states = np.zeros((1, 6, 4))
        states[0, 0] = 100.0               # old step has huge features
        states[0, -1] = 1.0
        pooled = hawkes(Tensor(states)).data
        assert np.allclose(pooled[0], states[0, -1], atol=0.1)

    def test_hypergraph_conv_mixes_members(self, rng):
        incidence = np.array([[1.0], [1.0], [0.0]])
        conv = HypergraphConv(incidence, 2, 2, rng=rng)
        x = rng.standard_normal((3, 2))
        base = conv(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0] += 5.0
        out = conv(Tensor(x2)).data
        assert not np.allclose(out[1], base[1])   # shares hyperedge with 0
        assert np.allclose(out[2], base[2])       # isolated

    def test_gradients_flow(self, rng):
        model = STHANSR(relations(), hidden_size=6, rng=rng)
        (model(window(rng)) ** 2).sum().backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name
