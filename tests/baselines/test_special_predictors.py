"""Non-gradient predictors: ARIMA, A-LSTM, DQN, iRDPG + the registry."""

import numpy as np
import pytest

from repro.baselines import (ARIMAClassifier, AdversarialLSTMClassifier,
                             BASELINE_SPECS, DQNTrader, IRDPGTrader,
                             RANKING_MODELS, ReplayBuffer, TABLE_IV_MODELS,
                             available_baselines, get_spec, make_predictor,
                             movement_classes)
from repro.core import TrainConfig


def quick_config(**overrides):
    defaults = dict(window=6, epochs=1, max_train_days=10, seed=0)
    defaults.update(overrides)
    return TrainConfig(**defaults)


class TestMovementClasses:
    def test_terciles_balanced(self, rng):
        labels = movement_classes(rng.standard_normal(300))
        counts = np.bincount(labels, minlength=3)
        assert counts.min() > 60     # roughly a third each

    def test_order_respected(self):
        labels = movement_classes(np.array([-1.0, 0.0, 1.0]))
        assert labels.tolist() == [0, 1, 2]


class TestARIMA:
    def test_fit_predict_shapes(self, nasdaq_mini):
        result = ARIMAClassifier(order=3).fit_predict(nasdaq_mini,
                                                      quick_config())
        _, test_days = nasdaq_mini.split(6)
        assert result.predictions.shape == (len(test_days), 48)
        assert result.actuals.shape == result.predictions.shape

    def test_cannot_rank(self):
        assert not ARIMAClassifier().can_rank

    def test_scores_encode_classes(self, nasdaq_mini):
        result = ARIMAClassifier(order=2).fit_predict(nasdaq_mini,
                                                      quick_config())
        # Scores are class + U(0,1): classes recoverable via floor.
        classes = np.floor(result.predictions)
        assert set(np.unique(classes)) <= {0.0, 1.0, 2.0}

    def test_forecast_tracks_ar_signal(self):
        """On a strongly autocorrelated series the AR fit must predict the
        next value with positive correlation."""
        rng = np.random.default_rng(0)
        steps = 400
        r = np.zeros(steps)
        for t in range(1, steps):
            r[t] = 0.8 * r[t - 1] + rng.normal(0, 0.1)
        clf = ARIMAClassifier(order=3)
        days = list(range(10, 300))
        coef = clf._fit_coefficients(r[None, :], days)
        assert coef[0, 1] > 0.5    # first lag dominates

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            ARIMAClassifier(order=0)


class TestALSTM:
    def test_fit_predict_shapes(self, nasdaq_mini):
        clf = AdversarialLSTMClassifier(hidden_size=8)
        result = clf.fit_predict(nasdaq_mini,
                                 quick_config(max_train_days=5))
        assert result.predictions.shape[1] == 48
        assert result.train_seconds > 0

    def test_cannot_rank(self):
        assert not AdversarialLSTMClassifier().can_rank


class TestReplayBuffer:
    def test_push_and_sample(self, rng):
        buf = ReplayBuffer(capacity=10, state_dim=3)
        buf.push(rng.standard_normal((4, 3)), rng.standard_normal(4))
        states, rewards = buf.sample(2, rng)
        assert states.shape == (2, 3)
        assert rewards.shape == (2,)

    def test_fifo_overwrite(self, rng):
        buf = ReplayBuffer(capacity=3, state_dim=1)
        buf.push(np.arange(5).reshape(5, 1), np.arange(5.0))
        assert buf.size == 3
        assert set(buf.rewards.tolist()) == {2.0, 3.0, 4.0}

    def test_empty_sample_rejected(self, rng):
        with pytest.raises(ValueError):
            ReplayBuffer(5, 2).sample(1, rng)


class TestRLTraders:
    def test_dqn_fit_predict(self, nasdaq_mini):
        trader = DQNTrader(n_agents=2, hidden=16, batch_size=32)
        result = trader.fit_predict(nasdaq_mini,
                                    quick_config(max_train_days=8))
        assert result.predictions.shape[1] == 48
        assert np.isfinite(result.predictions).all()

    def test_dqn_learns_reward_signal(self, nasdaq_mini):
        """After training, ensemble Q should correlate with realized
        returns better than chance on the training data distribution."""
        trader = DQNTrader(n_agents=2, hidden=32, batch_size=128,
                           updates_per_day=4, seed=1)
        result = trader.fit_predict(
            nasdaq_mini, quick_config(epochs=4, max_train_days=40))
        assert np.isfinite(result.predictions).all()

    def test_irdpg_fit_predict(self, nasdaq_mini):
        trader = IRDPGTrader(hidden=8)
        result = trader.fit_predict(nasdaq_mini,
                                    quick_config(max_train_days=8))
        assert result.predictions.shape[1] == 48

    def test_rl_traders_can_rank(self):
        assert DQNTrader().can_rank
        assert IRDPGTrader().can_rank


class TestRegistry:
    def test_all_table_iv_rows_present(self):
        expected = {"ARIMA", "A-LSTM", "SFM", "LSTM", "DQN", "iRDPG",
                    "Rank_LSTM", "RSR_I", "RSR_E", "STHAN-SR", "RT-GAT",
                    "RT-GCN (U)", "RT-GCN (W)", "RT-GCN (T)"}
        assert set(TABLE_IV_MODELS) == expected

    def test_ranking_models_subset(self):
        assert set(RANKING_MODELS) <= set(TABLE_IV_MODELS)
        assert "ARIMA" not in RANKING_MODELS

    def test_categories(self):
        assert get_spec("ARIMA").category == "CLF"
        assert get_spec("LSTM").category == "REG"
        assert get_spec("DQN").category == "RL"
        assert get_spec("RSR_E").category == "RAN"
        assert get_spec("RT-GCN (T)").category == "Ours"

    def test_relation_usage_flags(self):
        assert not get_spec("Rank_LSTM").uses_relations
        assert get_spec("RSR_I").uses_relations
        assert get_spec("RT-GAT").uses_relations

    def test_regression_models_drop_ranking_loss(self):
        cfg = TrainConfig(alpha=0.3)
        assert get_spec("LSTM").adapt_config(cfg).alpha == 0.0
        assert get_spec("Rank_LSTM").adapt_config(cfg).alpha == 0.3

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_spec("GPT-Trader")

    def test_make_predictor_runs(self, nasdaq_mini):
        predictor = make_predictor("Rank_LSTM", nasdaq_mini, seed=0)
        result = predictor.fit_predict(nasdaq_mini,
                                       quick_config(max_train_days=4))
        assert result.predictions.shape[1] == 48

    def test_available_baselines_matches_specs(self):
        assert available_baselines() == list(BASELINE_SPECS)
