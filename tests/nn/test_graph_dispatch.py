"""Dense↔sparse dispatch of the graph layers (ISSUE-2 satellites a/c).

The vectorized multi-head :class:`GraphAttention` is checked against a
faithful reimplementation of the original per-head Python loop; the sparse
segment-softmax path is checked against the dense masked softmax; and
:class:`GraphConv` is checked to propagate identically through ``spmm``
and dense matmul.
"""

import numpy as np
import pytest

from repro.baselines.rtgat import RTGAT
from repro.graph import RelationMatrix
from repro.nn import GraphAttention, GraphConv, set_graph_mode
from repro.tensor import Tensor
from repro.tensor.sparse import SparseTensor


def reference_attention(layer, x, mask):
    """The pre-vectorization per-head loop, kept as a numerical oracle."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[-2]
    mask = np.asarray(mask, dtype=bool) | np.eye(n, dtype=bool)
    neg_inf = np.where(mask, 0.0, -1e9)
    heads = []
    for h in range(layer.n_heads):
        proj = x @ layer.weight.data[h].T                     # (..., N, d)
        src = proj @ layer.attn_src.data[h]                   # (..., N)
        dst = proj @ layer.attn_dst.data[h]
        logits = src[..., :, None] + dst[..., None, :]
        slope = layer.negative_slope
        logits = np.where(logits > 0, logits, slope * logits) + neg_inf
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        alpha = exp / exp.sum(axis=-1, keepdims=True)
        heads.append(alpha @ proj)
    if layer.concat_heads:
        out = np.concatenate(heads, axis=-1)
    else:
        out = np.mean(heads, axis=0)
    return out + layer.bias.data


def mask_for(n, rng, density=0.3):
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    return mask | mask.T


class TestVectorizedAttention:
    @pytest.mark.parametrize("shape", [(9, 5), (4, 9, 5), (2, 3, 9, 5)])
    @pytest.mark.parametrize("concat_heads", [True, False])
    def test_matches_per_head_loop(self, rng, shape, concat_heads):
        layer = GraphAttention(5, 8, n_heads=2, concat_heads=concat_heads,
                               graph_mode="dense",
                               rng=np.random.default_rng(0))
        x = rng.standard_normal(shape)
        mask = mask_for(shape[-2], rng)
        out = layer(Tensor(x), mask).data
        expected = reference_attention(layer, x, mask)
        assert out.shape == expected.shape
        assert np.allclose(out, expected, atol=1e-12)

    def test_sparse_matches_dense(self, rng):
        x = rng.standard_normal((3, 10, 6))
        mask = mask_for(10, rng, density=0.2)
        outs = []
        for mode in ("dense", "sparse"):
            layer = GraphAttention(6, 8, n_heads=4, graph_mode=mode,
                                   rng=np.random.default_rng(1))
            outs.append(layer(Tensor(x), mask).data)
        assert np.allclose(outs[0], outs[1], atol=1e-12)

    def test_sparse_matches_dense_gradients(self, rng):
        x = rng.standard_normal((2, 8, 4))
        mask = mask_for(8, rng)
        grads = []
        for mode in ("dense", "sparse"):
            layer = GraphAttention(4, 6, n_heads=2, graph_mode=mode,
                                   rng=np.random.default_rng(2))
            inp = Tensor(x.copy(), requires_grad=True)
            (layer(inp, mask) ** 2.0).sum().backward()
            grads.append([inp.grad.copy()]
                         + [p.grad.copy() for p in layer.parameters()])
        for g_dense, g_sparse in zip(*grads):
            assert np.allclose(g_dense, g_sparse, atol=1e-10)

    def test_isolated_node_attends_to_itself(self, rng):
        # A node with no neighbors must fall back to its self-loop, in
        # both backends, rather than producing NaNs.
        x = rng.standard_normal((5, 3))
        mask = np.zeros((5, 5), dtype=bool)
        for mode in ("dense", "sparse"):
            layer = GraphAttention(3, 4, graph_mode=mode,
                                   rng=np.random.default_rng(3))
            out = layer(Tensor(x), mask).data
            assert np.isfinite(out).all()

    def test_pattern_cached_per_mask_instance(self, rng):
        layer = GraphAttention(3, 4, graph_mode="sparse",
                               rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((6, 3)))
        mask = mask_for(6, rng)
        layer(x, mask)
        layer(x, mask)
        assert len(layer._pattern_cache) == 1


class TestGraphConvDispatch:
    def test_sparse_adjacency_matches_dense(self, rng):
        conv = GraphConv(4, 6, rng=np.random.default_rng(0))
        adj = np.abs(mask_for(7, rng).astype(float))
        x = Tensor(rng.standard_normal((3, 7, 4)))
        dense_out = conv(x, Tensor(adj)).data
        sparse_out = conv(x, SparseTensor.from_dense(adj)).data
        assert np.allclose(dense_out, sparse_out, atol=1e-12)

    def test_sparse_adjacency_gradients(self, rng):
        conv = GraphConv(3, 5, rng=np.random.default_rng(1))
        adj = mask_for(6, rng).astype(float)
        x = rng.standard_normal((6, 3))
        grads = []
        for rep in (Tensor(adj), SparseTensor.from_dense(adj)):
            for p in conv.parameters():
                p.grad = None
            (conv(Tensor(x), rep) ** 2.0).sum().backward()
            grads.append([p.grad.copy() for p in conv.parameters()])
        for g_dense, g_sparse in zip(*grads):
            assert np.allclose(g_dense, g_sparse, atol=1e-10)

    def test_size_mismatch_rejected(self, rng):
        conv = GraphConv(3, 4)
        adj = SparseTensor.from_dense(np.eye(5))
        with pytest.raises(ValueError, match="adjacency size"):
            conv(Tensor(np.ones((4, 3))), adj)


class TestSetGraphMode:
    def test_walks_nested_modules(self):
        rel = RelationMatrix.from_edges(5, ["industry:a"],
                                        [(0, 1, 0), (2, 3, 0)])
        model = RTGAT(rel, num_features=3, filters=4, n_heads=2,
                      num_layers=2, rng=np.random.default_rng(0))
        touched = set_graph_mode(model, "sparse")
        assert touched == 2      # both attention layers
        for index in range(2):
            assert model._modules[f"attention{index}"].graph_mode == "sparse"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="graph mode"):
            set_graph_mode(GraphConv(2, 2), "blocked")

    def test_rtgat_sparse_matches_dense(self, rng):
        rel = RelationMatrix.from_edges(8, ["industry:a"], [
            (0, 1, 0), (1, 2, 0), (3, 4, 0), (5, 6, 0), (6, 7, 0)])
        feats = rng.standard_normal((4, 8, 3))
        outs = []
        for mode in ("dense", "sparse"):
            model = RTGAT(rel, num_features=3, filters=4, n_heads=2,
                          dropout=0.0, graph_mode=mode,
                          rng=np.random.default_rng(5))
            model.eval()
            outs.append(model(Tensor(feats)).data)
        assert np.allclose(outs[0], outs[1], atol=1e-10)
