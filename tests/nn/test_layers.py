"""Linear, convolution, normalization and dropout layers."""

import numpy as np
import pytest

import repro.nn as nn
from repro.tensor import Tensor, gradcheck


class TestLinear:
    def test_shapes(self, rng):
        layer = nn.Linear(4, 7)
        assert layer(Tensor(rng.standard_normal((3, 4)))).shape == (3, 7)

    def test_batched_leading_dims(self, rng):
        layer = nn.Linear(4, 2)
        out = layer(Tensor(rng.standard_normal((5, 3, 4))))
        assert out.shape == (5, 3, 2)

    def test_no_bias(self, rng):
        layer = nn.Linear(3, 2, bias=False)
        assert layer.bias is None
        x = np.zeros((1, 3))
        assert np.allclose(layer(Tensor(x)).data, 0.0)

    def test_gradcheck(self, rng):
        layer = nn.Linear(3, 2)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        gradcheck(lambda: layer(x).sum(), [x, layer.weight, layer.bias])

    def test_wrong_input_dim_raises(self, rng):
        with pytest.raises(ValueError):
            nn.Linear(3, 2)(Tensor(rng.standard_normal((4, 5))))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 2)


class TestConvLayers:
    def test_conv1d_shapes(self, rng):
        layer = nn.Conv1d(3, 5, kernel_size=3, padding=1)
        out = layer(Tensor(rng.standard_normal((2, 3, 8))))
        assert out.shape == (2, 5, 8)

    def test_conv1d_gradcheck(self, rng):
        layer = nn.Conv1d(2, 3, kernel_size=2)
        x = Tensor(rng.standard_normal((1, 2, 6)), requires_grad=True)
        gradcheck(lambda: layer(x).sum(),
                  [x, layer.weight, layer.bias])

    def test_causal_preserves_length(self, rng):
        layer = nn.CausalConv1d(2, 2, kernel_size=3, dilation=2)
        out = layer(Tensor(rng.standard_normal((1, 2, 10))))
        assert out.shape == (1, 2, 10)

    def test_causal_no_future_leakage(self):
        layer = nn.CausalConv1d(1, 1, kernel_size=3, dilation=1)
        base = layer(Tensor(np.zeros((1, 1, 12)))).data
        bumped = np.zeros((1, 1, 12))
        bumped[0, 0, 8] = 1.0
        out = layer(Tensor(bumped)).data
        # Output strictly before the bump must be unchanged.
        assert np.allclose(out[0, 0, :8], base[0, 0, :8])
        assert not np.allclose(out[0, 0, 8:], base[0, 0, 8:])

    def test_weight_norm_matches_plain_at_init(self, rng):
        gen = np.random.default_rng(3)
        wn = nn.WeightNormConv1d(2, 3, kernel_size=2, rng=gen)
        x = Tensor(rng.standard_normal((1, 2, 6)))
        # At init g = ||v||, so effective weight equals v.
        effective = wn._weight().data
        assert np.allclose(effective, wn.weight_v.data, atol=1e-10)
        assert wn(x).shape == (1, 3, 5)

    def test_weight_norm_direction_invariance(self, rng):
        wn = nn.WeightNormConv1d(1, 1, kernel_size=2)
        wn.weight_v.data *= 10.0    # scaling v must not change w
        w_scaled = wn._weight().data.copy()
        wn.weight_v.data /= 10.0
        assert np.allclose(wn._weight().data, w_scaled)

    def test_weight_norm_gradcheck(self, rng):
        wn = nn.WeightNormConv1d(2, 2, kernel_size=2)
        x = Tensor(rng.standard_normal((1, 2, 5)), requires_grad=True)
        gradcheck(lambda: wn(x).sum(),
                  [x, wn.weight_g, wn.weight_v, wn.bias])

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            nn.Conv1d(1, 1, kernel_size=0)


class TestTemporalBlocks:
    def test_block_output_shape_stride(self, rng):
        block = nn.TemporalBlock(3, 6, kernel_size=3, stride=2, dropout=0.0)
        out = block(Tensor(rng.standard_normal((4, 3, 10))))
        assert out.shape == (4, 6, 5)

    def test_block_residual_identity_path(self, rng):
        # same channels, stride 1 -> no downsample module
        block = nn.TemporalBlock(4, 4, dropout=0.0)
        assert block.downsample is None

    def test_block_downsample_created_when_needed(self):
        assert nn.TemporalBlock(3, 5, dropout=0.0).downsample is not None
        assert nn.TemporalBlock(4, 4, stride=2,
                                dropout=0.0).downsample is not None

    def test_block_gradient_flows_to_all_params(self, rng):
        block = nn.TemporalBlock(2, 3, dropout=0.0)
        x = Tensor(rng.standard_normal((2, 2, 8)), requires_grad=True)
        block(x).sum().backward()
        for name, p in block.named_parameters():
            assert p.grad is not None, name

    def test_tcn_dilation_stack(self, rng):
        tcn = nn.TemporalConvNet(2, [4, 4, 4], kernel_size=2, dropout=0.0)
        out = tcn(Tensor(rng.standard_normal((3, 2, 16))))
        assert out.shape == (3, 4, 16)

    def test_tcn_causality_end_to_end(self):
        tcn = nn.TemporalConvNet(1, [3, 3], kernel_size=2, dropout=0.0)
        base = tcn(Tensor(np.zeros((1, 1, 12)))).data
        bumped = np.zeros((1, 1, 12))
        bumped[0, 0, 9] = 1.0
        out = tcn(Tensor(bumped)).data
        assert np.allclose(out[..., :9], base[..., :9])

    def test_tcn_rejects_empty_channels(self):
        with pytest.raises(ValueError):
            nn.TemporalConvNet(2, [])


class TestNorm:
    def test_layernorm_zero_mean_unit_var(self, rng):
        layer = nn.LayerNorm(8, elementwise_affine=False)
        out = layer(Tensor(rng.standard_normal((5, 8)) * 3 + 2)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-3)

    def test_layernorm_affine_params(self, rng):
        layer = nn.LayerNorm(4)
        layer.bias.data[...] = 5.0
        out = layer(Tensor(rng.standard_normal((3, 4)))).data
        assert abs(out.mean() - 5.0) < 1e-6

    def test_layernorm_gradcheck(self, rng):
        layer = nn.LayerNorm(4)
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        gradcheck(lambda: (layer(x) ** 2).sum(),
                  [x, layer.weight, layer.bias])

    def test_layernorm_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            nn.LayerNorm(5)(Tensor(rng.standard_normal((2, 4))))

    def test_batchnorm_normalizes_in_train(self, rng):
        layer = nn.BatchNorm1d(6)
        out = layer(Tensor(rng.standard_normal((64, 6)) * 4 + 1)).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)

    def test_batchnorm_running_stats_used_in_eval(self, rng):
        layer = nn.BatchNorm1d(3, momentum=1.0)
        data = rng.standard_normal((32, 3)) * 2 + 5
        layer(Tensor(data))
        layer.eval()
        out = layer(Tensor(data)).data
        # With momentum 1.0 running stats equal last batch stats (biased var)
        expected = (data - data.mean(0)) / np.sqrt(data.var(0) + 1e-5)
        assert np.allclose(out, expected, atol=1e-6)

    def test_batchnorm_3d_input(self, rng):
        layer = nn.BatchNorm1d(4)
        out = layer(Tensor(rng.standard_normal((8, 4, 10))))
        assert out.shape == (8, 4, 10)

    def test_batchnorm_wrong_features(self, rng):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(3)(Tensor(rng.standard_normal((4, 5))))


class TestDropoutLayers:
    def test_eval_identity(self, rng):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = Tensor(rng.standard_normal(50))
        assert np.allclose(layer(x).data, x.data)

    def test_train_zeroes_fraction(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones(10000))).data
        assert abs((out == 0).mean() - 0.5) < 0.03

    def test_spatial_dropout_zeroes_whole_channels(self):
        layer = nn.SpatialDropout1d(0.5, rng=np.random.default_rng(1))
        out = layer(Tensor(np.ones((8, 16, 20)))).data
        per_channel = out.reshape(-1, 20)
        # Each channel is entirely zero or entirely scaled.
        for row in per_channel:
            assert np.all(row == 0) or np.all(row == row[0])

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)
        with pytest.raises(ValueError):
            nn.SpatialDropout1d(1.0)


class TestActivationsModules:
    @pytest.mark.parametrize("layer,fn", [
        (nn.ReLU(), lambda x: np.maximum(x, 0)),
        (nn.Tanh(), np.tanh),
        (nn.Sigmoid(), lambda x: 1 / (1 + np.exp(-x))),
        (nn.LeakyReLU(0.1), lambda x: np.where(x > 0, x, 0.1 * x)),
    ])
    def test_matches_numpy(self, layer, fn, rng):
        x = rng.standard_normal(20)
        assert np.allclose(layer(Tensor(x)).data, fn(x))

    def test_elu_negative_saturation(self):
        out = nn.ELU(alpha=2.0)(Tensor(np.array([-100.0]))).data
        assert np.isclose(out[0], -2.0)
