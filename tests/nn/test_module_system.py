"""Module/Parameter registration, modes, state dicts, containers, init."""

import math

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = nn.Linear(3, 4)
        self.second = nn.Linear(4, 2)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.second(self.first(x).relu()) * self.scale


class TestRegistration:
    def test_parameters_found_recursively(self):
        model = TwoLayer()
        names = dict(model.named_parameters())
        assert "first.weight" in names
        assert "second.bias" in names
        assert "scale" in names
        assert len(list(model.parameters())) == 5

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2) + 1

    def test_modules_iteration(self):
        model = TwoLayer()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds == ["TwoLayer", "Linear", "Linear"]

    def test_named_modules_dotted_names(self):
        model = TwoLayer()
        names = dict(model.named_modules())
        assert set(names) == {"", "first", "second"}
        assert names[""] is model
        assert names["first"] is model.first

    def test_named_modules_nested_prefixing(self):
        outer = nn.Sequential(nn.Linear(2, 2),
                              nn.Sequential(nn.Linear(2, 2)))
        names = [name for name, _ in outer.named_modules()]
        assert names == ["", "0", "1", "1.0"]

    def test_children_are_direct_only(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Sequential(nn.Linear(2, 2)))
        assert len(list(model.children())) == 2

    def test_reassignment_replaces_parameter(self):
        model = TwoLayer()
        model.scale = Parameter(np.zeros(1))
        assert np.allclose(dict(model.named_parameters())["scale"].data, 0.0)
        assert len(list(model.parameters())) == 5

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestModes:
    def test_train_eval_propagates(self):
        model = TwoLayer()
        model.eval()
        assert not model.training
        assert not model.first.training
        model.train()
        assert model.second.training

    def test_zero_grad_clears_all(self, rng):
        model = TwoLayer()
        x = Tensor(rng.standard_normal((5, 3)))
        model(x).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        a, b = TwoLayer(), TwoLayer()
        b.load_state_dict(a.state_dict())
        x = Tensor(rng.standard_normal((4, 3)))
        assert np.allclose(a(x).data, b(x).data)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"][...] = 99.0
        assert not np.allclose(model.scale.data, 99.0)

    def test_strict_missing_key_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_non_strict_ignores_extra(self):
        model = TwoLayer()
        state = model.state_dict()
        state["ghost"] = np.zeros(3)
        model.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_clean_load_returns_empty_falsy_result(self):
        model = TwoLayer()
        result = model.load_state_dict(model.state_dict())
        assert result.missing_keys == ()
        assert result.unexpected_keys == ()
        assert not result    # empty result reads as "nothing went wrong"

    def test_non_strict_reports_missing_and_unexpected(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["scale"]
        state["ghost"] = np.zeros(3)
        result = model.load_state_dict(state, strict=False)
        assert result.missing_keys == ("scale",)
        assert result.unexpected_keys == ("ghost",)
        assert result    # mismatches make the result truthy


class TestContainers:
    def test_sequential_applies_in_order(self, rng):
        model = nn.Sequential(nn.Linear(3, 5), nn.ReLU(), nn.Linear(5, 2))
        out = model(Tensor(rng.standard_normal((4, 3))))
        assert out.shape == (4, 2)

    def test_sequential_indexing_and_len(self):
        model = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(model) == 2
        assert isinstance(model[1], nn.Tanh)

    def test_sequential_append(self, rng):
        model = nn.Sequential(nn.Linear(3, 3))
        model.append(nn.Linear(3, 1))
        assert model(Tensor(rng.standard_normal((2, 3)))).shape == (2, 1)

    def test_module_list_registers_params(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(list(ml.parameters())) == 4

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList([nn.ReLU()])(1)


class TestInit:
    def test_xavier_uniform_bound(self):
        p = Parameter(np.empty((50, 30)))
        init.xavier_uniform_(p, rng=np.random.default_rng(0))
        bound = math.sqrt(6.0 / 80)
        assert np.abs(p.data).max() <= bound

    def test_xavier_normal_std(self):
        p = Parameter(np.empty((400, 400)))
        init.xavier_normal_(p, rng=np.random.default_rng(0))
        assert abs(p.data.std() - math.sqrt(2.0 / 800)) < 5e-4

    def test_kaiming_respects_fan_in(self):
        p = Parameter(np.empty((10, 1000)))
        init.kaiming_uniform_(p, rng=np.random.default_rng(0))
        assert np.abs(p.data).max() < 0.15   # bound ~ sqrt(3/fan_in)*gain

    def test_conv_fans_include_kernel(self):
        fan_in, fan_out = init._fan_in_fan_out((8, 4, 3))
        assert fan_in == 12 and fan_out == 24

    def test_constant_fills(self):
        p = Parameter(np.empty(5))
        init.zeros_(p)
        assert np.allclose(p.data, 0)
        init.ones_(p)
        assert np.allclose(p.data, 1)
        init.constant_(p, 2.5)
        assert np.allclose(p.data, 2.5)

    def test_scalar_fan_rejected(self):
        with pytest.raises(ValueError):
            init._fan_in_fan_out(())

    def test_manual_seed_reproducible(self):
        nn.manual_seed(7)
        a = nn.Linear(4, 4)
        nn.manual_seed(7)
        b = nn.Linear(4, 4)
        assert np.allclose(a.weight.data, b.weight.data)

    def test_fork_rng_streams_differ(self):
        g1, g2 = nn.fork_rng(1), nn.fork_rng(2)
        assert not np.allclose(g1.standard_normal(5), g2.standard_normal(5))

    def test_fork_rng_deterministic(self):
        assert np.allclose(nn.fork_rng(3).standard_normal(5),
                           nn.fork_rng(3).standard_normal(5))
