"""Recurrent cells (LSTM/GRU/SFM) and graph layers (GCN/GAT)."""

import numpy as np
import pytest

import repro.nn as nn
from repro.tensor import Tensor, gradcheck


class TestLSTM:
    def test_output_shapes(self, rng):
        lstm = nn.LSTM(3, 5)
        out, (h, c) = lstm(Tensor(rng.standard_normal((4, 7, 3))))
        assert out.shape == (4, 7, 5)
        assert h.shape == (4, 5) and c.shape == (4, 5)

    def test_last_output_equals_final_hidden(self, rng):
        lstm = nn.LSTM(3, 4)
        out, (h, _) = lstm(Tensor(rng.standard_normal((2, 5, 3))))
        assert np.allclose(out.data[:, -1, :], h.data)

    def test_stacked_layers(self, rng):
        lstm = nn.LSTM(3, 4, num_layers=2)
        out, _ = lstm(Tensor(rng.standard_normal((2, 5, 3))))
        assert out.shape == (2, 5, 4)

    def test_forget_bias_initialized_to_one(self):
        cell = nn.LSTMCell(3, 4)
        assert np.allclose(cell.bias.data[4:8], 1.0)

    def test_gradient_reaches_early_timesteps(self, rng):
        lstm = nn.LSTM(2, 3)
        x = Tensor(rng.standard_normal((1, 6, 2)), requires_grad=True)
        _, (h, _) = lstm(x)
        h.sum().backward()
        assert np.abs(x.grad[:, 0, :]).max() > 0   # BPTT reaches step 0

    def test_gradcheck_small(self, rng):
        lstm = nn.LSTM(2, 2)
        x = Tensor(rng.standard_normal((1, 3, 2)), requires_grad=True)
        gradcheck(lambda: lstm(x)[0].sum(), [x])

    def test_hidden_bounded_by_tanh(self, rng):
        lstm = nn.LSTM(2, 4)
        out, _ = lstm(Tensor(rng.standard_normal((3, 20, 2)) * 10))
        assert np.abs(out.data).max() <= 1.0

    def test_rejects_2d_input(self, rng):
        with pytest.raises(ValueError):
            nn.LSTM(2, 3)(Tensor(rng.standard_normal((4, 2))))

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            nn.LSTM(2, 3, num_layers=0)


class TestGRU:
    def test_output_shapes(self, rng):
        gru = nn.GRU(3, 5)
        out, h = gru(Tensor(rng.standard_normal((4, 7, 3))))
        assert out.shape == (4, 7, 5) and h.shape == (4, 5)

    def test_gradcheck_small(self, rng):
        gru = nn.GRU(2, 2)
        x = Tensor(rng.standard_normal((1, 3, 2)), requires_grad=True)
        gradcheck(lambda: gru(x)[1].sum(), [x])

    def test_zero_update_gate_keeps_state(self):
        # With z ≈ 1 the GRU keeps h_prev: force via huge bias.
        cell = nn.GRUCell(2, 3)
        cell.bias_ih.data[3:6] = 100.0   # update gate z -> 1
        h0 = Tensor(np.ones((1, 3)) * 0.7)
        h1 = cell(Tensor(np.zeros((1, 2))), h0)
        assert np.allclose(h1.data, 0.7, atol=1e-6)

    def test_two_layer_stack(self, rng):
        gru = nn.GRU(3, 4, num_layers=2)
        out, _ = gru(Tensor(rng.standard_normal((2, 5, 3))))
        assert out.shape == (2, 5, 4)


class TestSFM:
    def test_output_shapes(self, rng):
        sfm = nn.SFM(3, 5, n_freq=4)
        out, h = sfm(Tensor(rng.standard_normal((2, 6, 3))))
        assert out.shape == (2, 6, 5) and h.shape == (2, 5)

    def test_state_shapes(self):
        cell = nn.SFMCell(3, 4, n_freq=5)
        h, re, im = cell.initial_state(2)
        assert h.shape == (2, 4)
        assert re.shape == (2, 4, 5) and im.shape == (2, 4, 5)

    def test_frequencies_distinct(self):
        cell = nn.SFMCell(2, 2, n_freq=4)
        assert len(np.unique(cell.omegas)) == 4

    def test_gradcheck_small(self, rng):
        sfm = nn.SFM(2, 2, n_freq=2)
        x = Tensor(rng.standard_normal((1, 3, 2)), requires_grad=True)
        gradcheck(lambda: sfm(x)[1].sum(), [x])

    def test_invalid_n_freq(self):
        with pytest.raises(ValueError):
            nn.SFMCell(2, 2, n_freq=0)

    def test_rejects_2d_input(self, rng):
        with pytest.raises(ValueError):
            nn.SFM(2, 3)(Tensor(rng.standard_normal((4, 2))))


class TestGraphConv:
    def test_identity_adjacency_is_linear_map(self, rng):
        gc = nn.GraphConv(3, 4)
        x = Tensor(rng.standard_normal((5, 3)))
        out = gc(x, Tensor(np.eye(5)))
        manual = x.data @ gc.weight.data.T + gc.bias.data
        assert np.allclose(out.data, manual)

    def test_aggregation_mixes_neighbors(self, rng):
        gc = nn.GraphConv(2, 2, bias=False)
        x = Tensor(rng.standard_normal((3, 2)))
        adj = np.zeros((3, 3))
        adj[0, 1] = 1.0   # node 0 reads node 1 only
        out = gc(x, Tensor(adj))
        assert np.allclose(out.data[0], x.data[1] @ gc.weight.data.T)
        assert np.allclose(out.data[2], 0.0)

    def test_batched_adjacency(self, rng):
        gc = nn.GraphConv(3, 4)
        x = Tensor(rng.standard_normal((6, 5, 3)))
        adj = Tensor(rng.uniform(size=(6, 5, 5)))
        assert gc(x, adj).shape == (6, 5, 4)

    def test_shared_adjacency_broadcasts_over_time(self, rng):
        gc = nn.GraphConv(3, 4)
        x = Tensor(rng.standard_normal((6, 5, 3)))
        adj = Tensor(rng.uniform(size=(5, 5)))
        assert gc(x, adj).shape == (6, 5, 4)

    def test_gradcheck(self, rng):
        gc = nn.GraphConv(2, 3)
        x = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        adj = Tensor(rng.uniform(size=(4, 4)), requires_grad=True)
        gradcheck(lambda: gc(x, adj).sum(), [x, adj, gc.weight, gc.bias])

    def test_dimension_validation(self, rng):
        gc = nn.GraphConv(3, 2)
        with pytest.raises(ValueError):
            gc(Tensor(rng.standard_normal((4, 5))), Tensor(np.eye(4)))
        with pytest.raises(ValueError):
            gc(Tensor(rng.standard_normal((4, 3))), Tensor(np.eye(3)))


class TestGraphAttention:
    def test_output_shape_multihead(self, rng):
        gat = nn.GraphAttention(3, 8, n_heads=2)
        x = Tensor(rng.standard_normal((6, 3)))
        mask = rng.uniform(size=(6, 6)) > 0.5
        assert gat(x, mask).shape == (6, 8)

    def test_averaged_heads_output_shape(self, rng):
        gat = nn.GraphAttention(3, 4, n_heads=3, concat_heads=False)
        x = Tensor(rng.standard_normal((5, 3)))
        assert gat(x, np.ones((5, 5))).shape == (5, 4)

    def test_masked_nodes_do_not_influence(self, rng):
        gat = nn.GraphAttention(2, 4, n_heads=1)
        x = rng.standard_normal((4, 2))
        mask = np.zeros((4, 4), dtype=bool)     # only self-loops
        base = gat(Tensor(x), mask).data.copy()
        x2 = x.copy()
        x2[3] += 100.0                            # perturb an unrelated node
        out = gat(Tensor(x2), mask).data
        assert np.allclose(out[:3], base[:3])

    def test_attention_time_batched(self, rng):
        gat = nn.GraphAttention(3, 6, n_heads=2)
        x = Tensor(rng.standard_normal((7, 5, 3)))   # (T, N, D)
        mask = rng.uniform(size=(5, 5)) > 0.3
        assert gat(x, mask).shape == (7, 5, 6)

    def test_gradcheck(self, rng):
        gat = nn.GraphAttention(2, 4, n_heads=2)
        x = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        mask = rng.uniform(size=(4, 4)) > 0.4
        gradcheck(lambda: gat(x, mask).sum(),
                  [x, gat.weight, gat.attn_src, gat.attn_dst])

    def test_head_divisibility_enforced(self):
        with pytest.raises(ValueError):
            nn.GraphAttention(3, 5, n_heads=2)
