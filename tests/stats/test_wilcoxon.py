"""Wilcoxon signed-rank tests, cross-validated against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.stats import (RunSummary, improvement_percent,
                         one_sample_wilcoxon, paired_wilcoxon,
                         summarize_runs, wilcoxon_signed_rank)


class TestAgainstScipy:
    @pytest.mark.parametrize("alternative", ["two-sided", "greater", "less"])
    def test_exact_matches_scipy(self, alternative, rng):
        for _ in range(8):
            diffs = rng.standard_normal(15) + 0.3
            ours = wilcoxon_signed_rank(diffs, alternative=alternative)
            ref = sps.wilcoxon(diffs, alternative=alternative, mode="exact")
            assert np.isclose(ours.p_value, ref.pvalue, atol=1e-10), \
                (alternative, ours.p_value, ref.pvalue)

    def test_normal_approx_matches_scipy(self, rng):
        diffs = rng.standard_normal(60) + 0.2
        ours = wilcoxon_signed_rank(diffs, alternative="greater")
        ref = sps.wilcoxon(diffs, alternative="greater", mode="approx",
                           correction=True)
        assert np.isclose(ours.p_value, ref.pvalue, atol=5e-3)

    def test_statistic_is_w_plus(self, rng):
        diffs = rng.standard_normal(12)
        ours = wilcoxon_signed_rank(diffs)
        # scipy returns min(W+, W-) by default; reconstruct W+ by ranks.
        from scipy.stats import rankdata
        ranks = rankdata(np.abs(diffs))
        w_plus = ranks[diffs > 0].sum()
        assert np.isclose(ours.statistic, w_plus)


class TestBehaviour:
    def test_strong_positive_shift_significant(self, rng):
        diffs = np.abs(rng.standard_normal(15)) + 0.1
        result = wilcoxon_signed_rank(diffs, alternative="greater")
        assert result.p_value < 0.001
        assert result.significant()

    def test_symmetric_sample_not_significant(self, rng):
        diffs = np.concatenate([rng.standard_normal(10),
                                -rng.standard_normal(10)])
        result = wilcoxon_signed_rank(diffs, alternative="greater")
        assert result.p_value > 0.05

    def test_zeros_dropped(self):
        result = wilcoxon_signed_rank([0.0, 0.0, 1.0, 2.0, 3.0],
                                      alternative="greater")
        assert result.n_used == 3

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([0.0, 0.0])

    def test_too_small_sample_rejected(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0])

    def test_unknown_alternative_rejected(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0, 2.0], alternative="different")

    def test_ties_use_normal_path(self, rng):
        diffs = np.array([1.0, 1.0, -1.0, 2.0, 2.0, 3.0, 0.5, -0.5])
        result = wilcoxon_signed_rank(diffs)
        assert 0.0 <= result.p_value <= 1.0


class TestPairedAndOneSample:
    def test_paired_on_15_runs_mirrors_paper(self, rng):
        """Table IV setting: 15 paired runs, ours shifted above baseline."""
        baseline = rng.normal(0.5, 0.05, 15)
        ours = baseline + rng.uniform(0.02, 0.08, 15)
        result = paired_wilcoxon(ours, baseline, alternative="greater")
        assert result.p_value < 0.001
        assert result.n_used == 15

    def test_paired_shape_mismatch(self):
        with pytest.raises(ValueError):
            paired_wilcoxon([1.0, 2.0], [1.0])

    def test_one_sample_mirrors_table_v(self, rng):
        """Table V setting: 15 runs vs a fixed published value."""
        runs = rng.normal(0.48, 0.02, 15)
        strong = one_sample_wilcoxon(runs, 0.44, alternative="greater")
        weak = one_sample_wilcoxon(runs, 0.60, alternative="greater")
        assert strong.p_value < 0.05 < weak.p_value

    def test_paired_direction(self, rng):
        a = rng.normal(0.0, 1.0, 15)
        b = a + 1.0
        worse = paired_wilcoxon(a, b, alternative="greater")
        better = paired_wilcoxon(b, a, alternative="greater")
        assert better.p_value < 0.05 < worse.p_value


class TestSummaries:
    def test_run_summary_statistics(self):
        summary = RunSummary.from_values([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0 and summary.maximum == 3.0
        assert np.isclose(summary.std, 1.0)
        assert summary.n_runs == 3

    def test_single_run_std_zero(self):
        assert RunSummary.from_values([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RunSummary.from_values([])

    def test_summarize_runs(self):
        runs = [{"MRR": 0.1, "IRR-5": 1.0}, {"MRR": 0.3, "IRR-5": 2.0}]
        summary = summarize_runs(runs)
        assert np.isclose(summary["MRR"].mean, 0.2)
        assert np.isclose(summary["IRR-5"].mean, 1.5)

    def test_inconsistent_runs_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([{"MRR": 0.1}, {"IRR-5": 1.0}])

    def test_improvement_percent(self):
        assert np.isclose(improvement_percent(1.25, 1.0), 25.0)
        assert np.isclose(improvement_percent(0.9, 1.0), -10.0)

    def test_improvement_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            improvement_percent(1.0, 0.0)

    def test_str_format(self):
        text = str(RunSummary.from_values([1.0, 2.0]))
        assert "n=2" in text


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=5, max_value=24),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_exact_p_matches_scipy_property(n, seed):
    rng = np.random.default_rng(seed)
    diffs = rng.standard_normal(n)
    diffs = diffs[diffs != 0]
    if len(np.unique(np.abs(diffs))) != len(diffs) or len(diffs) < 2:
        return
    ours = wilcoxon_signed_rank(diffs, alternative="two-sided")
    ref = sps.wilcoxon(diffs, alternative="two-sided", mode="exact")
    assert np.isclose(ours.p_value, ref.pvalue, atol=1e-10)
