"""The benchmark harness's telemetry publishing (ISSUE-2 satellite f).

``benchmarks/`` is not on the import path of the tier-1 suite, so the
harness module is loaded by file location.  These tests pin the NaN
contract of ``publish_json`` — degenerate measurements must surface as
explicit ``null`` + ``degenerate_timing`` flags in the artifact, never as
bare ``NaN`` tokens (not JSON) and never silently dropped.
"""

import importlib.util
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.eval.speed import SpeedMeasurement

_HARNESS_PATH = (Path(__file__).resolve().parents[1]
                 / "benchmarks" / "_harness.py")


@pytest.fixture()
def harness(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location("_bench_harness_under_test",
                                                  _HARNESS_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path)
    return module


def _strict_load(path):
    """Parse rejecting the non-JSON NaN/Infinity tokens."""
    def refuse(token):
        raise AssertionError(f"bare {token} token in published JSON")
    return json.loads(path.read_text(), parse_constant=refuse)


class TestDatasetCache:
    def test_cache_keyed_by_market_and_seed(self, harness):
        """A seed override must not be served another seed's dataset."""
        default = harness.bench_dataset("csi-mini")
        same = harness.bench_dataset("csi-mini")
        assert same is default                        # cached
        other = harness.bench_dataset("csi-mini", seed=1234)
        assert other is not default
        assert not np.array_equal(default.simulated.prices,
                                  other.simulated.prices)
        # The explicit session seed and the default hit the same entry.
        assert harness.bench_dataset("csi-mini",
                                     seed=harness.BENCH_SEED) is default

    def test_bench_workers_default(self, harness):
        assert harness.BENCH_WORKERS == 1   # opt-in via RTGCN_BENCH_WORKERS


class TestSanitizeJson:
    def test_nan_and_inf_become_null(self, harness):
        payload = {"a": float("nan"), "b": float("inf"),
                   "c": [1.0, float("-inf"), {"d": float("nan")}]}
        out = harness.sanitize_json(payload)
        assert out == {"a": None, "b": None, "c": [1.0, None, {"d": None}]}

    def test_numpy_scalars_coerced(self, harness):
        out = harness.sanitize_json({"f": np.float64(2.5),
                                     "i": np.int64(3),
                                     "nan": np.float64("nan")})
        assert out == {"f": 2.5, "i": 3, "nan": None}
        json.dumps(out, allow_nan=False)   # round-trips strictly

    def test_finite_values_untouched(self, harness):
        payload = {"x": 1.25, "s": "text", "n": None, "l": [1, 2]}
        assert harness.sanitize_json(payload) == payload


class TestPublishJson:
    def test_nan_payload_becomes_null_not_dropped(self, harness):
        path = harness.publish_json(
            "t", {"speedup": float("nan"), "seconds": 1.5})
        data = _strict_load(path)
        assert "speedup" in data          # key survives ...
        assert data["speedup"] is None    # ... as an explicit null
        assert data["seconds"] == 1.5
        assert data["benchmark"] == "t"
        assert "schema_version" in data

    def test_nested_nan_sanitized(self, harness):
        path = harness.publish_json(
            "t", {"models": {"m": {"train_speedup": float("inf")}}})
        assert _strict_load(path)["models"]["m"]["train_speedup"] is None


class TestSpeedEntry:
    def test_healthy_measurement(self, harness):
        ours = SpeedMeasurement("ours", 0.5, 0.1)
        base = SpeedMeasurement("base", 2.0, 0.3)
        entry = harness.speed_entry(ours, baseline=base)
        assert entry["degenerate_timing"] is False
        assert entry["train_speedup"] == pytest.approx(4.0)
        assert entry["speedup_over"] == "base"

    def test_degenerate_timing_flagged_not_hidden(self, harness):
        ours = SpeedMeasurement("ours", 0.0, 0.1)   # below timer resolution
        base = SpeedMeasurement("base", 2.0, 0.3)
        entry = harness.speed_entry(ours, baseline=base)
        assert entry["degenerate_timing"] is True
        assert math.isnan(entry["train_speedup"])
        # Published, the NaN becomes an explicit null under its key.
        path = harness.publish_json("t", {"entry": entry})
        published = _strict_load(path)["entry"]
        assert published["train_speedup"] is None
        assert published["degenerate_timing"] is True

    def test_degenerate_baseline_flagged(self, harness):
        ours = SpeedMeasurement("ours", 1.0, 0.1)
        base = SpeedMeasurement("base", 0.0, 0.3)
        entry = harness.speed_entry(ours, baseline=base)
        assert entry["degenerate_timing"] is True

    def test_no_baseline_keeps_raw_timings(self, harness):
        entry = harness.speed_entry(SpeedMeasurement("m", 1.0, 0.25))
        assert entry == {"name": "m", "train_seconds_per_epoch": 1.0,
                         "test_seconds": 0.25, "phases": {},
                         "degenerate_timing": False}
