"""Row-touch CSR edit ops: set/delete/get semantics and structural drops.

Every op returns a *new* matrix; the oracle throughout is the dense
mirror of the same edit applied with plain indexing.
"""

import numpy as np
import pytest

from repro.sparse import CSRMatrix
from repro.sparse.edit import (csr_delete_entries, csr_drop_rowcol,
                               csr_get_entries, csr_set_entries,
                               row_edit_chunks, splice_rows)


def random_csr(n, density, seed):
    rng = np.random.default_rng(seed)
    dense = np.where(rng.random((n, n)) < density, rng.random((n, n)), 0.0)
    return CSRMatrix.from_dense(dense), dense


class TestSetEntries:
    def test_overwrite_insert_delete_match_dense(self):
        matrix, dense = random_csr(12, 0.3, seed=0)
        rows = [0, 0, 5, 11]
        cols = [1, 2, 5, 0]
        vals = [9.0, 0.0, 3.5, -1.0]
        edited, touched = csr_set_entries(matrix, rows, cols, vals)
        for r, c, v in zip(rows, cols, vals):
            dense[r, c] = v
        np.testing.assert_array_equal(edited.to_dense(), dense)
        np.testing.assert_array_equal(touched, [0, 5, 11])
        # original untouched (ops are persistent)
        assert matrix.nnz != edited.nnz or not np.array_equal(
            matrix.data, edited.data)

    def test_duplicates_resolve_last_wins(self):
        matrix, dense = random_csr(8, 0.2, seed=1)
        edited, _ = csr_set_entries(matrix, [2, 2, 2], [3, 3, 3],
                                    [1.0, 0.0, 7.0])
        dense[2, 3] = 7.0
        np.testing.assert_array_equal(edited.to_dense(), dense)

    def test_delete_then_readd_in_one_batch(self):
        matrix, dense = random_csr(8, 0.4, seed=2)
        r, c = 1, int(matrix.indices[matrix.indptr[1]])
        edited, _ = csr_set_entries(matrix, [r, r], [c, c], [0.0, 2.25])
        dense[r, c] = 2.25
        np.testing.assert_array_equal(edited.to_dense(), dense)

    def test_empty_edit_returns_same_matrix(self):
        matrix, _ = random_csr(6, 0.3, seed=3)
        edited, touched = csr_set_entries(matrix, [], [], [])
        assert edited is matrix
        assert touched.size == 0

    def test_out_of_range_rejected(self):
        matrix, _ = random_csr(6, 0.3, seed=4)
        with pytest.raises(ValueError, match="out of range"):
            csr_set_entries(matrix, [6], [0], [1.0])


class TestDeleteAndGet:
    def test_delete_removes_and_ignores_absent(self):
        matrix, dense = random_csr(10, 0.3, seed=5)
        present = (int(matrix.pattern.rows[0]), int(matrix.indices[0]))
        absent = next((r, c) for r in range(10) for c in range(10)
                      if dense[r, c] == 0.0)
        edited, _ = csr_delete_entries(
            matrix, [present[0], absent[0]], [present[1], absent[1]])
        dense[present] = 0.0
        np.testing.assert_array_equal(edited.to_dense(), dense)

    def test_get_entries_zero_where_absent(self):
        matrix, dense = random_csr(10, 0.3, seed=6)
        rows = np.repeat(np.arange(10), 10)
        cols = np.tile(np.arange(10), 10)
        got = csr_get_entries(matrix, rows, cols)
        np.testing.assert_array_equal(got, dense[rows, cols])


class TestRowChunksAndSplice:
    def test_splice_preserves_untouched_rows(self):
        matrix, dense = random_csr(9, 0.4, seed=7)
        chunks = row_edit_chunks(matrix, [4], [0], [5.0])
        spliced = splice_rows(matrix, chunks)
        dense[4, 0] = 5.0
        np.testing.assert_array_equal(spliced.to_dense(), dense)

    def test_splice_empty_chunks_is_identity(self):
        matrix, _ = random_csr(5, 0.3, seed=8)
        assert splice_rows(matrix, {}) is matrix

    def test_splice_row_out_of_range(self):
        matrix, _ = random_csr(5, 0.3, seed=9)
        chunks = {7: (np.array([0]), np.array([1.0]))}
        with pytest.raises(ValueError, match="out of range"):
            splice_rows(matrix, chunks)


class TestDropRowCol:
    def test_drop_compacts_and_remaps(self):
        matrix, dense = random_csr(10, 0.4, seed=10)
        dropped = csr_drop_rowcol(matrix, [2, 7])
        keep = [i for i in range(10) if i not in (2, 7)]
        np.testing.assert_array_equal(dropped.to_dense(),
                                      dense[np.ix_(keep, keep)])
        assert dropped.shape == (8, 8)

    def test_drop_requires_square(self):
        rect = CSRMatrix.from_dense(np.ones((3, 4)))
        with pytest.raises(ValueError, match="square"):
            csr_drop_rowcol(rect, [0])


class TestWithPattern:
    def test_shares_pattern_and_caches(self):
        matrix, _ = random_csr(8, 0.3, seed=11)
        _ = matrix.pattern.rows          # warm the row-expansion cache
        swapped = CSRMatrix.with_pattern(matrix.pattern,
                                         matrix.data * 2.0)
        assert swapped.pattern is matrix.pattern
        np.testing.assert_array_equal(swapped.to_dense(),
                                      matrix.to_dense() * 2.0)

    def test_rejects_wrong_length_data(self):
        matrix, _ = random_csr(8, 0.3, seed=12)
        with pytest.raises(ValueError, match="does not match"):
            CSRMatrix.with_pattern(matrix.pattern, np.ones(matrix.nnz + 1))
