"""Fault injection: crash callbacks, file corruption, SIGKILL recovery."""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.ckpt import (CRASH_EXIT_CODE, CheckpointCallback,
                        CrashAfterBatches, SimulatedCrash, corrupt_archive)

from tests.ckpt.recipe import CRASH_BATCH, SAVE_EVERY, make_trainer

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestCrashAfterBatches:
    def test_soft_crash_raises_after_n_batches(self, csi_mini):
        crash = CrashAfterBatches(4)
        with pytest.raises(SimulatedCrash, match="after 4 batches"):
            make_trainer(csi_mini).fit(callbacks=[crash])
        assert crash.batches_seen == 4

    def test_counts_across_epochs(self, csi_mini):
        crash = CrashAfterBatches(CRASH_BATCH)    # epoch 1 of 12-day epochs
        with pytest.raises(SimulatedCrash, match="epoch 1"):
            make_trainer(csi_mini).fit(callbacks=[crash])

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            CrashAfterBatches(0)


class TestCorruptArchive:
    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "f.npz"
        path.write_bytes(b"x" * 256)
        with pytest.raises(ValueError, match="unknown corruption mode"):
            corrupt_archive(path, mode="gamma-ray")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            corrupt_archive(tmp_path / "nope.npz")

    def test_truncate_shrinks_file(self, tmp_path):
        path = tmp_path / "f.npz"
        path.write_bytes(b"x" * 1000)
        corrupt_archive(path, mode="truncate")
        assert 0 < path.stat().st_size < 1000

    def test_flip_keeps_size_changes_bytes(self, tmp_path):
        path = tmp_path / "f.npz"
        original = bytes(range(256)) * 4
        path.write_bytes(original)
        corrupt_archive(path, mode="flip")
        assert path.stat().st_size == len(original)
        assert path.read_bytes() != original


class TestCrashRecovery:
    def test_resume_past_corrupted_newest_checkpoint(self, csi_mini,
                                                     tmp_path):
        """A crash that also corrupts the newest file (the classic
        interrupted-write footprint) still recovers — from the last good
        checkpoint — and still reproduces the baseline bitwise, because
        resume replays deterministically from wherever it lands."""
        baseline = make_trainer(csi_mini).fit()
        callback = CheckpointCallback(tmp_path, every_n_batches=SAVE_EVERY)
        with pytest.raises(SimulatedCrash):
            make_trainer(csi_mini).fit(
                callbacks=[callback, CrashAfterBatches(CRASH_BATCH)])
        assert len(callback.manager.checkpoints()) >= 2
        corrupt_archive(callback.manager.latest(), mode="truncate")
        losses = make_trainer(csi_mini).fit(resume_from=tmp_path)
        assert losses == baseline

    def test_hard_crash_then_resume_is_bitwise_identical(self, csi_mini,
                                                         tmp_path):
        """SIGKILL-equivalent crash (``os._exit``: no cleanup, no flush)
        in a child process; the parent resumes from the survivors."""
        script = textwrap.dedent(f"""
            from repro.ckpt import CheckpointCallback, CrashAfterBatches
            from repro.data import load_market
            from tests.ckpt.recipe import make_trainer

            dataset = load_market("csi-mini", seed=7)
            make_trainer(dataset).fit(callbacks=[
                CheckpointCallback({str(tmp_path)!r},
                                   every_n_batches={SAVE_EVERY}),
                CrashAfterBatches({CRASH_BATCH}, hard=True)])
            raise SystemExit("unreachable: the crash did not fire")
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        result = subprocess.run([sys.executable, "-c", script],
                                cwd=REPO_ROOT, env=env,
                                capture_output=True, text=True, timeout=300)
        assert result.returncode == CRASH_EXIT_CODE, result.stderr
        assert any(tmp_path.glob("ckpt-*.npz"))

        baseline = make_trainer(csi_mini).fit()
        losses = make_trainer(csi_mini).fit(resume_from=tmp_path)
        assert losses == baseline
