"""Checkpoint format: round-trips, atomic writes, checksums, versions."""

import json
import os

import numpy as np
import pytest

from repro.ckpt import (FORMAT_VERSION, CheckpointError, TrainingCheckpoint,
                        atomic_write_bytes, corrupt_archive, load,
                        read_archive, restore_rng, rng_state, save,
                        verify_archive, write_archive)


def sample_checkpoint():
    return TrainingCheckpoint(
        model_state={"layer.weight": np.arange(6.0).reshape(2, 3),
                     "layer.bias": np.zeros(2)},
        optimizer_state={"type": "Adam", "step_count": 7,
                         "hyperparameters": {"lr": 1e-3, "beta1": 0.9},
                         "state": {0: {"m": np.ones((2, 3)),
                                       "v": np.full((2, 3), 2.0)}}},
        rng={"shuffle": rng_state(np.random.default_rng(3))},
        cursor={"epoch": 1, "batch_index": 4, "day_order": [5, 2, 9],
                "epoch_loss": 0.25, "losses": [0.5]},
        early_stopping={"best_val": 0.4, "bad_epochs": 1},
        best_model_state={"layer.weight": np.full((2, 3), 9.0),
                          "layer.bias": np.ones(2)},
        config={"window": 6, "epochs": 3},
        model_class="RTGCN",
        metadata={"note": "format test"})


class TestRoundTrip:
    def test_everything_survives(self, tmp_path):
        original = sample_checkpoint()
        path = save(original, tmp_path / "ckpt.npz")
        loaded = load(path)
        for key, array in original.model_state.items():
            assert np.array_equal(loaded.model_state[key], array)
        for key, array in original.best_model_state.items():
            assert np.array_equal(loaded.best_model_state[key], array)
        opt = loaded.optimizer_state
        assert opt["type"] == "Adam"
        assert opt["step_count"] == 7
        assert opt["hyperparameters"]["lr"] == 1e-3
        assert np.array_equal(opt["state"][0]["m"], np.ones((2, 3)))
        assert loaded.rng == original.rng
        assert loaded.cursor == original.cursor
        assert loaded.early_stopping == original.early_stopping
        assert loaded.config == original.config
        assert loaded.model_class == "RTGCN"
        assert loaded.metadata == {"note": "format test"}
        assert loaded.format_version == FORMAT_VERSION

    def test_epoch_and_batch_properties(self):
        assert sample_checkpoint().epoch == 1
        assert sample_checkpoint().batch_index == 4
        assert TrainingCheckpoint(model_state={}).epoch == 0

    def test_npz_suffix_appended(self, tmp_path):
        path = save(sample_checkpoint(), tmp_path / "ckpt")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_no_best_state_stays_none(self, tmp_path):
        checkpoint = sample_checkpoint()
        checkpoint.best_model_state = None
        loaded = load(save(checkpoint, tmp_path / "ckpt.npz"))
        assert loaded.best_model_state is None

    def test_verify_archive_returns_meta(self, tmp_path):
        path = save(sample_checkpoint(), tmp_path / "ckpt.npz")
        meta = verify_archive(path)
        assert meta["format_version"] == FORMAT_VERSION
        assert meta["model_class"] == "RTGCN"

    def test_rng_state_restores_stream(self):
        source = np.random.default_rng(99)
        source.standard_normal(10)
        state = rng_state(source)
        expected = source.standard_normal(5)
        clone = np.random.default_rng(0)
        restore_rng(clone, state)
        assert np.array_equal(clone.standard_normal(5), expected)


class TestAtomicity:
    def test_no_tmp_files_after_save(self, tmp_path):
        save(sample_checkpoint(), tmp_path / "ckpt.npz")
        leftovers = [p for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []

    def test_failed_replace_leaves_no_tmp_file(self, tmp_path, monkeypatch):
        def explode(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            atomic_write_bytes(tmp_path / "ckpt.npz", b"payload")
        assert list(tmp_path.iterdir()) == []

    def test_overwrite_is_complete_replacement(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save(sample_checkpoint(), path)
        smaller = TrainingCheckpoint(model_state={"w": np.zeros(2)})
        save(smaller, path)
        loaded = load(path)
        assert set(loaded.model_state) == {"w"}


class TestCorruptionDetection:
    def test_flipped_bytes_fail_checksum(self, tmp_path):
        path = save(sample_checkpoint(), tmp_path / "ckpt.npz")
        corrupt_archive(path, mode="flip")
        with pytest.raises(CheckpointError,
                           match="checksum|unreadable|corrupt"):
            load(path)

    def test_truncated_archive_is_actionable(self, tmp_path):
        path = save(sample_checkpoint(), tmp_path / "ckpt.npz")
        corrupt_archive(path, mode="truncate")
        with pytest.raises(CheckpointError, match="older checkpoint"):
            load(path)

    def test_empty_file_is_unreadable(self, tmp_path):
        path = save(sample_checkpoint(), tmp_path / "ckpt.npz")
        corrupt_archive(path, mode="empty")
        with pytest.raises(CheckpointError, match="unreadable"):
            load(path)

    def test_missing_file_names_the_path(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load(tmp_path / "nope.npz")

    def test_archive_without_metadata_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, weights=np.ones(3))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load(path)

    def test_future_format_version_rejected(self, tmp_path):
        path = write_archive(tmp_path / "ckpt.npz", {"model/w": np.ones(2)},
                             {"format_version": 99})
        with pytest.raises(CheckpointError, match="upgrade"):
            load(path)


class TestLegacyV1:
    def _write_v1(self, path, params, meta):
        blob = np.frombuffer(json.dumps(meta).encode("utf-8"),
                             dtype=np.uint8)
        np.savez(path, __checkpoint_meta__=blob, **params)

    def test_v1_loads_as_model_only_checkpoint(self, tmp_path):
        path = tmp_path / "legacy.npz"
        self._write_v1(path, {"weight": np.arange(4.0)},
                       {"model_class": "Linear", "user": {"note": "old"}})
        loaded = load(path)
        assert loaded.format_version == 1
        assert np.array_equal(loaded.model_state["weight"], np.arange(4.0))
        assert loaded.model_class == "Linear"
        assert loaded.metadata == {"note": "old"}
        assert loaded.optimizer_state == {}
        assert loaded.cursor == {}

    def test_v1_read_archive_reports_version(self, tmp_path):
        path = tmp_path / "legacy.npz"
        self._write_v1(path, {"weight": np.zeros(2)}, {})
        _, meta = read_archive(path)
        assert meta["format_version"] == 1
