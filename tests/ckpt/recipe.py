"""Shared training recipe for the checkpoint/resume tests.

One fixed, fast configuration (validated to produce a mid-epoch crash
point at batch 17 of 36) used by the in-process resume tests, the NaN
rollback tests, and the hard-crash subprocess in ``test_faults.py`` —
both sides of a crash/resume pair must build byte-identical trainers.
"""

import numpy as np

import repro.nn as nn
from repro.core import RTGCN, TrainConfig, Trainer

#: 12 train days x 3 epochs = 36 batches; a crash at batch 17 lands
#: mid-epoch 1, after the epoch-0 boundary checkpoint.
CRASH_BATCH = 17
SAVE_EVERY = 5


def make_trainer(dataset, graph_mode="dense", **overrides):
    """A fresh, deterministic trainer (model + RNG streams re-seeded)."""
    nn.manual_seed(1234)
    settings = dict(window=6, epochs=3, max_train_days=12, seed=3,
                    graph_mode=graph_mode)
    settings.update(overrides)
    config = TrainConfig(**settings)
    model = RTGCN(dataset.relations, num_features=config.num_features,
                  strategy="time", relational_filters=4, dropout=0.1,
                  rng=np.random.default_rng(42))
    return Trainer(model, dataset, config)
