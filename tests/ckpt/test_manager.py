"""CheckpointManager: naming, retention, corrupt-file fallback, telemetry."""

import numpy as np
import pytest

from repro.ckpt import (CheckpointManager, TrainingCheckpoint,
                        corrupt_archive)


def checkpoint_at(epoch, batch_index, value=0.0):
    return TrainingCheckpoint(
        model_state={"w": np.full(3, value)},
        cursor={"epoch": epoch, "batch_index": batch_index})


class TestNamingAndListing:
    def test_path_encodes_epoch_and_batch(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.path_for(2, 17).name == "ckpt-e0002-b000017.npz"

    def test_checkpoints_sorted_oldest_first(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=10)
        for epoch, batch in [(1, 0), (0, 5), (0, 10), (2, 3)]:
            manager.save(checkpoint_at(epoch, batch))
        names = [p.name for p in manager.checkpoints()]
        assert names == ["ckpt-e0000-b000005.npz", "ckpt-e0000-b000010.npz",
                         "ckpt-e0001-b000000.npz", "ckpt-e0002-b000003.npz"]

    def test_empty_directory(self, tmp_path):
        manager = CheckpointManager(tmp_path / "missing")
        assert manager.checkpoints() == []
        assert manager.latest() is None
        assert manager.latest_valid() is None
        assert manager.load_best() is None

    def test_keep_last_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointManager(tmp_path, keep_last=0)


class TestRetention:
    def test_keep_last_k_prunes_oldest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2)
        for epoch in range(5):
            manager.save(checkpoint_at(epoch, 0))
        names = [p.name for p in manager.checkpoints()]
        assert names == ["ckpt-e0003-b000000.npz", "ckpt-e0004-b000000.npz"]

    def test_best_is_exempt_from_retention(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=1)
        manager.save(checkpoint_at(0, 0), is_best=True)
        for epoch in range(1, 4):
            manager.save(checkpoint_at(epoch, 0))
        assert manager.best_path.exists()
        assert len(manager.checkpoints()) == 1
        assert manager.load_best().epoch == 0

    def test_save_best_only_touches_best(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save_best(checkpoint_at(3, 0, value=7.0))
        assert manager.checkpoints() == []
        assert np.array_equal(manager.load_best().model_state["w"],
                              np.full(3, 7.0))


class TestRecovery:
    def test_latest_valid_skips_corrupt_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=5)
        manager.save(checkpoint_at(0, 0, value=1.0))
        newest = manager.save(checkpoint_at(1, 0, value=2.0))
        corrupt_archive(newest, mode="truncate")
        recovered = manager.latest_valid()
        assert recovered is not None
        assert recovered.epoch == 0
        assert np.array_equal(recovered.model_state["w"], np.full(3, 1.0))

    def test_latest_valid_none_when_all_corrupt(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=5)
        for epoch in range(2):
            corrupt_archive(manager.save(checkpoint_at(epoch, 0)),
                            mode="empty")
        assert manager.latest_valid() is None

    def test_load_best_none_when_corrupt(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save_best(checkpoint_at(0, 0))
        corrupt_archive(manager.best_path, mode="flip")
        assert manager.load_best() is None


class TestTelemetry:
    def test_counters_track_saves(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2)
        for epoch in range(3):
            manager.save(checkpoint_at(epoch, 0))
        telemetry = manager.telemetry()
        assert telemetry["checkpoint_saves"] == 3
        assert telemetry["checkpoint_files_retained"] == 2
        assert telemetry["checkpoint_latest_bytes"] > 0
        assert (telemetry["checkpoint_bytes_written"]
                >= 3 * telemetry["checkpoint_latest_bytes"])
        assert telemetry["checkpoint_write_seconds"] > 0
