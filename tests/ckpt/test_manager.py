"""CheckpointManager: naming, retention, corrupt-file fallback, telemetry."""

import numpy as np
import pytest

from repro.ckpt import (CheckpointError, CheckpointManager,
                        TrainingCheckpoint, corrupt_archive)


def checkpoint_at(epoch, batch_index, value=0.0):
    return TrainingCheckpoint(
        model_state={"w": np.full(3, value)},
        cursor={"epoch": epoch, "batch_index": batch_index})


class TestNamingAndListing:
    def test_path_encodes_epoch_and_batch(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.path_for(2, 17).name == "ckpt-e0002-b000017.npz"

    def test_checkpoints_sorted_oldest_first(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=10)
        for epoch, batch in [(1, 0), (0, 5), (0, 10), (2, 3)]:
            manager.save(checkpoint_at(epoch, batch))
        names = [p.name for p in manager.checkpoints()]
        assert names == ["ckpt-e0000-b000005.npz", "ckpt-e0000-b000010.npz",
                         "ckpt-e0001-b000000.npz", "ckpt-e0002-b000003.npz"]

    def test_empty_directory(self, tmp_path):
        manager = CheckpointManager(tmp_path / "missing")
        assert manager.checkpoints() == []
        assert manager.latest() is None
        assert manager.latest_valid() is None
        assert manager.load_best() is None

    def test_keep_last_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointManager(tmp_path, keep_last=0)


class TestRetention:
    def test_keep_last_k_prunes_oldest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2)
        for epoch in range(5):
            manager.save(checkpoint_at(epoch, 0))
        names = [p.name for p in manager.checkpoints()]
        assert names == ["ckpt-e0003-b000000.npz", "ckpt-e0004-b000000.npz"]

    def test_best_is_exempt_from_retention(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=1)
        manager.save(checkpoint_at(0, 0), is_best=True)
        for epoch in range(1, 4):
            manager.save(checkpoint_at(epoch, 0))
        assert manager.best_path.exists()
        assert len(manager.checkpoints()) == 1
        assert manager.load_best().epoch == 0

    def test_save_best_only_touches_best(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save_best(checkpoint_at(3, 0, value=7.0))
        assert manager.checkpoints() == []
        assert np.array_equal(manager.load_best().model_state["w"],
                              np.full(3, 7.0))


class TestRecovery:
    def test_latest_valid_skips_corrupt_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=5)
        manager.save(checkpoint_at(0, 0, value=1.0))
        newest = manager.save(checkpoint_at(1, 0, value=2.0))
        corrupt_archive(newest, mode="truncate")
        recovered = manager.latest_valid()
        assert recovered is not None
        assert recovered.epoch == 0
        assert np.array_equal(recovered.model_state["w"], np.full(3, 1.0))

    def test_latest_valid_raises_when_all_corrupt(self, tmp_path):
        # Every archive corrupt is unrecoverable data loss; it must be a
        # loud error, not the same silent None as an empty directory.
        manager = CheckpointManager(tmp_path, keep_last=5)
        for epoch in range(2):
            corrupt_archive(manager.save(checkpoint_at(epoch, 0)),
                            mode="empty")
        with pytest.raises(CheckpointError, match="all 2 checkpoint"):
            manager.latest_valid()

    def test_load_best_none_when_corrupt(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save_best(checkpoint_at(0, 0))
        corrupt_archive(manager.best_path, mode="flip")
        assert manager.load_best() is None


class TestTelemetry:
    def test_counters_track_saves(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2)
        for epoch in range(3):
            manager.save(checkpoint_at(epoch, 0))
        telemetry = manager.telemetry()
        assert telemetry["checkpoint_saves"] == 3
        assert telemetry["checkpoint_files_retained"] == 2
        assert telemetry["checkpoint_latest_bytes"] > 0
        assert (telemetry["checkpoint_bytes_written"]
                >= 3 * telemetry["checkpoint_latest_bytes"])
        assert telemetry["checkpoint_write_seconds"] > 0


def checkpoint_with_metric(epoch, batch_index, best_val=None, **metrics):
    ckpt = checkpoint_at(epoch, batch_index, value=float(epoch))
    if best_val is not None:
        ckpt.early_stopping = {"best_val": best_val}
    if metrics:
        ckpt.metadata = {"metrics": metrics}
    return ckpt


class TestBestCheckpointSelection:
    def test_picks_minimum_metric(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=10)
        manager.save(checkpoint_with_metric(0, 0, best_val=0.9))
        manager.save(checkpoint_with_metric(1, 0, best_val=0.4))
        manager.save(checkpoint_with_metric(2, 0, best_val=0.7))
        assert manager.best_checkpoint().epoch == 1

    def test_max_mode_reads_user_metrics(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=10)
        manager.save(checkpoint_with_metric(0, 0, MRR=0.31))
        manager.save(checkpoint_with_metric(1, 0, MRR=0.44))
        best = manager.best_checkpoint(metric="MRR", mode="max")
        assert best.epoch == 1

    def test_tie_breaks_to_newest_deterministically(self, tmp_path):
        # Two checkpoints with the exact same best metric: the newer one
        # (higher epoch/batch cursor) must win, every time.
        manager = CheckpointManager(tmp_path, keep_last=10)
        manager.save(checkpoint_with_metric(0, 3, best_val=0.5))
        manager.save(checkpoint_with_metric(2, 1, best_val=0.5))
        manager.save(checkpoint_with_metric(1, 0, best_val=0.8))
        for _ in range(3):                      # stable across calls
            best = manager.best_checkpoint()
            assert (best.epoch, best.batch_index) == (2, 1)

    def test_skips_corrupt_and_metricless(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=10)
        manager.save(checkpoint_at(0, 0))                 # no metric
        manager.save(checkpoint_with_metric(1, 0, best_val=0.2))
        corrupt_archive(manager.save(
            checkpoint_with_metric(2, 0, best_val=0.1)), mode="flip")
        assert manager.best_checkpoint().epoch == 1

    def test_none_when_metric_absent_everywhere(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=10)
        manager.save(checkpoint_at(0, 0))
        assert manager.best_checkpoint() is None
        assert manager.best_checkpoint(metric="MRR", mode="max") is None

    def test_raises_when_all_corrupt(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=10)
        for epoch in range(2):
            corrupt_archive(manager.save(
                checkpoint_with_metric(epoch, 0, best_val=0.5)),
                mode="truncate")
        with pytest.raises(CheckpointError, match="corrupt"):
            manager.best_checkpoint()

    def test_rejects_unknown_mode(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(ValueError, match="mode"):
            manager.best_checkpoint(mode="median")

    def test_empty_directory_returns_none(self, tmp_path):
        assert CheckpointManager(tmp_path / "nothing").best_checkpoint() \
            is None
