"""Trainer state-dict contract: bitwise resume, config guards, NaN policy."""

import numpy as np
import pytest

from repro.ckpt import (CheckpointCallback, CheckpointError,
                        CheckpointManager, CrashAfterBatches,
                        SimulatedCrash, TrainingCheckpoint)
from repro.core import NonFiniteLossError, Trainer
from repro.core.losses import combined_loss
from repro.tensor import Tensor

from tests.ckpt.recipe import CRASH_BATCH, SAVE_EVERY, make_trainer


@pytest.mark.parametrize("graph_mode", ["dense", "sparse"])
class TestBitwiseResume:
    """The acceptance criterion: kill at batch k, resume, losses equal
    the uninterrupted run exactly — under both graph backends."""

    def test_crash_and_resume_reproduces_losses(self, csi_mini, tmp_path,
                                                graph_mode):
        baseline = make_trainer(csi_mini, graph_mode).fit()

        crashed = make_trainer(csi_mini, graph_mode)
        with pytest.raises(SimulatedCrash):
            crashed.fit(callbacks=[
                CheckpointCallback(tmp_path, every_n_batches=SAVE_EVERY),
                CrashAfterBatches(CRASH_BATCH)])

        resumed = make_trainer(csi_mini, graph_mode)
        losses = resumed.fit(
            callbacks=[CheckpointCallback(tmp_path,
                                          every_n_batches=SAVE_EVERY)],
            resume_from=tmp_path)
        assert losses == baseline    # bitwise, not approximately

    def test_uncrashed_checkpointed_run_matches_plain_run(self, csi_mini,
                                                          tmp_path,
                                                          graph_mode):
        plain = make_trainer(csi_mini, graph_mode).fit()
        checkpointed = make_trainer(csi_mini, graph_mode).fit(
            callbacks=[CheckpointCallback(tmp_path,
                                          every_n_batches=SAVE_EVERY)])
        assert checkpointed == plain    # checkpointing never perturbs


class TestResumeSemantics:
    def test_resume_from_explicit_file(self, csi_mini, tmp_path):
        baseline = make_trainer(csi_mini).fit()
        crashed = make_trainer(csi_mini)
        callback = CheckpointCallback(tmp_path, every_n_batches=SAVE_EVERY)
        with pytest.raises(SimulatedCrash):
            crashed.fit(callbacks=[callback,
                                   CrashAfterBatches(CRASH_BATCH)])
        assert callback.last_path is not None
        losses = make_trainer(csi_mini).fit(resume_from=callback.last_path)
        assert losses == baseline

    def test_resume_from_manager(self, csi_mini, tmp_path):
        manager = CheckpointManager(tmp_path)
        crashed = make_trainer(csi_mini)
        with pytest.raises(SimulatedCrash):
            crashed.fit(callbacks=[
                CheckpointCallback(manager, every_n_batches=SAVE_EVERY),
                CrashAfterBatches(CRASH_BATCH)])
        losses = make_trainer(csi_mini).fit(resume_from=manager)
        assert len(losses) == 3

    def test_extending_epochs_is_allowed(self, csi_mini, tmp_path):
        baseline = make_trainer(csi_mini, epochs=3).fit()
        short = make_trainer(csi_mini, epochs=2)
        short.fit(callbacks=[CheckpointCallback(tmp_path)])
        extended = make_trainer(csi_mini, epochs=3)
        losses = extended.fit(resume_from=tmp_path)
        assert losses == baseline

    def test_config_mismatch_refused(self, csi_mini, tmp_path):
        trainer = make_trainer(csi_mini)
        checkpoint = trainer.state_dict()
        other = make_trainer(csi_mini, window=8)
        with pytest.raises(CheckpointError, match="window"):
            other.load_state_dict(checkpoint)

    def test_model_class_mismatch_refused(self, csi_mini):
        trainer = make_trainer(csi_mini)
        checkpoint = trainer.state_dict()
        checkpoint.model_class = "Rank_LSTM"
        with pytest.raises(CheckpointError, match="Rank_LSTM"):
            trainer.load_state_dict(checkpoint)

    def test_v1_checkpoint_cannot_resume(self, csi_mini):
        trainer = make_trainer(csi_mini)
        legacy = TrainingCheckpoint(model_state=trainer.model.state_dict(),
                                    format_version=1)
        with pytest.raises(CheckpointError, match="parameters-only"):
            trainer.load_state_dict(legacy)

    def test_resume_from_empty_directory_refused(self, csi_mini, tmp_path):
        with pytest.raises(CheckpointError, match="resume"):
            make_trainer(csi_mini).fit(resume_from=tmp_path)

    def test_fresh_fit_still_restarts_from_epoch_zero(self, csi_mini):
        trainer = make_trainer(csi_mini, epochs=1)
        first = trainer.fit()
        second = trainer.fit()    # historical contract: no implicit resume
        assert len(first) == len(second) == 1

    def test_state_dict_captures_all_streams(self, csi_mini):
        trainer = make_trainer(csi_mini, epochs=1)
        trainer.fit()
        checkpoint = trainer.state_dict()
        assert checkpoint.model_class == "RTGCN"
        assert checkpoint.optimizer_state["type"] == "Adam"
        assert checkpoint.optimizer_state["step_count"] == 12
        assert checkpoint.optimizer_state["state"]   # Adam moments present
        assert "shuffle" in checkpoint.rng
        assert "global" in checkpoint.rng
        assert any(key.startswith("module:") for key in checkpoint.rng)
        assert checkpoint.cursor["epoch"] == 1
        assert checkpoint.config["window"] == 6


class PoisonLoss:
    """The paper's combined loss, multiplied into NaN on chosen calls."""

    def __init__(self, poison_at, once=True):
        self.calls = 0
        self.poison_at = poison_at
        self.once = once
        self.fired = False

    def __call__(self, scores, labels, params):
        self.calls += 1
        loss = combined_loss(scores, labels, 0.1, parameters=params,
                             weight_decay=1e-6)
        poisoned = (self.calls >= self.poison_at if not self.once
                    else self.calls == self.poison_at and not self.fired)
        if poisoned:
            self.fired = True
            return loss * float("nan")
        return loss


class TestNanPolicy:
    def nan_trainer(self, dataset, policy, loss_fn, **overrides):
        trainer = make_trainer(dataset, epochs=1, max_train_days=8,
                               nan_policy=policy, **overrides)
        trainer.loss_fn = loss_fn
        return trainer

    def test_default_policy_raises(self, csi_mini):
        trainer = self.nan_trainer(csi_mini, "raise", PoisonLoss(3))
        with pytest.raises(NonFiniteLossError, match="non-finite loss"):
            trainer.fit()

    def test_ignore_warns_and_finishes(self, csi_mini):
        trainer = self.nan_trainer(csi_mini, "ignore", PoisonLoss(3))
        with pytest.warns(RuntimeWarning, match="ignore"):
            losses = trainer.fit()
        assert len(losses) == 1

    def test_rollback_recovers_and_halves_lr(self, csi_mini, tmp_path):
        trainer = self.nan_trainer(csi_mini, "rollback", PoisonLoss(5))
        original_lr = trainer.optimizer.lr
        with pytest.warns(RuntimeWarning, match="rolled back"):
            losses = trainer.fit(callbacks=[
                CheckpointCallback(tmp_path, every_n_batches=2)])
        assert len(losses) == 1
        assert np.isfinite(losses[0])
        assert trainer.optimizer.lr == original_lr / 2

    def test_rollback_without_checkpoint_raises(self, csi_mini):
        trainer = self.nan_trainer(csi_mini, "rollback", PoisonLoss(3))
        with pytest.raises(NonFiniteLossError, match="CheckpointCallback"):
            trainer.fit()

    def test_rollback_gives_up_when_diverging(self, csi_mini, tmp_path):
        poison = PoisonLoss(2, once=False)    # every batch NaN from call 2
        trainer = self.nan_trainer(csi_mini, "rollback", poison,
                                   max_rollbacks=2)
        with pytest.warns(RuntimeWarning, match="rolled back"):
            with pytest.raises(NonFiniteLossError, match="gave up"):
                trainer.fit(callbacks=[
                    CheckpointCallback(tmp_path, every_n_batches=1)])

    def test_invalid_policy_rejected(self, csi_mini):
        with pytest.raises(ValueError, match="nan_policy"):
            make_trainer(csi_mini, nan_policy="shrug")
