"""Classical-ML substrate (trees, boosting) and the MTDNN extra baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EXTRA_MODELS, MTDNN, multiscale_design_row
from repro.ml import GradientBoostingRegressor, RegressionTree


def stepwise_data(rng, rows=300):
    """Piecewise-constant target: trees should fit this near-perfectly."""
    features = rng.uniform(-1, 1, size=(rows, 3))
    targets = np.where(features[:, 0] > 0.2, 1.0, -1.0) \
        + np.where(features[:, 1] > 0.0, 0.5, 0.0)
    return features, targets


class TestRegressionTree:
    def test_fits_piecewise_constant(self, rng):
        features, targets = stepwise_data(rng)
        tree = RegressionTree(max_depth=3, min_samples_leaf=5).fit(
            features, targets)
        mse = ((tree.predict(features) - targets) ** 2).mean()
        assert mse < 0.02

    def test_depth_zero_predicts_mean(self, rng):
        features, targets = stepwise_data(rng)
        tree = RegressionTree(max_depth=0).fit(features, targets)
        assert np.allclose(tree.predict(features), targets.mean())

    def test_depth_bounded(self, rng):
        features, targets = stepwise_data(rng)
        tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(
            features, targets)
        assert tree.depth <= 2

    def test_min_samples_leaf_respected(self, rng):
        features = rng.uniform(size=(12, 1))
        targets = rng.standard_normal(12)
        tree = RegressionTree(max_depth=5, min_samples_leaf=6).fit(
            features, targets)
        assert tree.depth <= 1   # only one split can satisfy 6+6

    def test_constant_target_single_leaf(self, rng):
        features = rng.uniform(size=(40, 2))
        tree = RegressionTree(max_depth=3).fit(features, np.full(40, 2.5))
        assert tree.depth == 0
        assert np.allclose(tree.predict(features), 2.5)

    def test_unfitted_predict_raises(self, rng):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(rng.uniform(size=(3, 2)))

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            RegressionTree().fit(rng.uniform(size=10), rng.uniform(size=10))
        with pytest.raises(ValueError):
            RegressionTree().fit(rng.uniform(size=(10, 2)),
                                 rng.uniform(size=9))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=-1)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)


class TestGradientBoosting:
    def test_improves_over_single_tree(self, rng):
        features = rng.uniform(-1, 1, size=(400, 2))
        targets = np.sin(3 * features[:, 0]) + 0.5 * features[:, 1]
        tree = RegressionTree(max_depth=2, min_samples_leaf=10).fit(
            features, targets)
        booster = GradientBoostingRegressor(
            n_estimators=60, max_depth=2, learning_rate=0.2).fit(
            features, targets)
        tree_mse = ((tree.predict(features) - targets) ** 2).mean()
        boost_mse = ((booster.predict(features) - targets) ** 2).mean()
        assert boost_mse < tree_mse * 0.5

    def test_staged_predictions_monotone_on_train(self, rng):
        features = rng.uniform(-1, 1, size=(300, 2))
        targets = features[:, 0] ** 2
        booster = GradientBoostingRegressor(
            n_estimators=30, max_depth=2).fit(features, targets)
        stages = booster.staged_predict(features)
        errors = [((s - targets) ** 2).mean() for s in stages]
        assert errors[-1] < errors[0]
        assert len(stages) == 30

    def test_subsampling_reproducible(self, rng):
        features, targets = stepwise_data(rng)
        a = GradientBoostingRegressor(n_estimators=10, subsample=0.5,
                                      seed=3).fit(features, targets)
        b = GradientBoostingRegressor(n_estimators=10, subsample=0.5,
                                      seed=3).fit(features, targets)
        assert np.allclose(a.predict(features), b.predict(features))

    def test_generalizes_to_holdout(self, rng):
        features = rng.uniform(-1, 1, size=(500, 2))
        targets = np.where(features[:, 0] > 0, 1.0, -1.0) \
            + rng.normal(0, 0.1, 500)
        booster = GradientBoostingRegressor(
            n_estimators=40, max_depth=2).fit(features[:400], targets[:400])
        holdout_mse = ((booster.predict(features[400:])
                        - targets[400:]) ** 2).mean()
        assert holdout_mse < 0.1

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(rng.uniform(size=(3, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)


class TestMTDNN:
    def test_multiscale_row_length(self, rng):
        window = rng.standard_normal((10, 4))
        row = multiscale_design_row(window, levels=2)
        # raw 40 + level-1 approx 4*5 + level-2 approx 4*3 + downsample 4*5
        assert row.shape == (40 + 20 + 12 + 20,)

    def test_registered_as_extra(self):
        assert "MTDNN" in EXTRA_MODELS

    def test_fit_predict_shapes(self, csi_mini):
        from repro.core import TrainConfig
        predictor = MTDNN(n_estimators=10, max_boost_days=8, seed=0)
        config = TrainConfig(window=6, epochs=1, max_train_days=8)
        result = predictor.fit_predict(csi_mini, config)
        _, test_days = csi_mini.split(6)
        assert result.predictions.shape == (len(test_days),
                                            csi_mini.num_stocks)
        assert np.isfinite(result.predictions).all()


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_tree_prediction_bounded_by_target_range(seed):
    """Tree leaf values are means of targets, so predictions stay in the
    convex hull of the training targets."""
    rng = np.random.default_rng(seed)
    features = rng.uniform(size=(60, 2))
    targets = rng.uniform(-2, 5, size=60)
    tree = RegressionTree(max_depth=4, min_samples_leaf=3).fit(features,
                                                               targets)
    predictions = tree.predict(rng.uniform(size=(30, 2)))
    assert predictions.min() >= targets.min() - 1e-12
    assert predictions.max() <= targets.max() + 1e-12
