"""ParamStore / GradSlots: shared parameters, moments, gradient return."""

import numpy as np
import pytest

from repro.dist import GradSlots, ParamStore
from repro.nn import Linear
from repro.optim import Adam
from repro.serve.shm import shm_available
from repro.tensor import Tensor

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="needs multiprocessing.shared_memory")


def small_model(seed=0):
    return Linear(4, 3, rng=np.random.default_rng(seed))


@pytest.fixture
def store_and_model():
    model = small_model()
    optimizer = Adam(model.parameters(), lr=1e-2)
    store = ParamStore(model, optimizer)
    yield store, model, optimizer
    store.close()


class TestParamStore:
    def test_parent_adoption_is_zero_copy_broadcast(self, store_and_model):
        store, model, _ = store_and_model
        store.adopt_parent()
        views = store.params_state.views(writable=True)
        name, param = next(iter(model.named_parameters()))
        param.data[...] = 42.0
        assert np.all(views[name] == 42.0)         # same bytes

    def test_worker_views_are_read_only(self, store_and_model):
        store, model, _ = store_and_model
        reader = small_model()
        store.adopt_worker(reader)
        _, param = next(iter(reader.named_parameters()))
        with pytest.raises((ValueError, RuntimeError)):
            param.data[...] = 1.0

    def test_worker_sees_parent_writes(self, store_and_model):
        store, model, _ = store_and_model
        store.adopt_parent()
        reader = small_model(seed=9)
        store.adopt_worker(reader)
        _, writer_param = next(iter(model.named_parameters()))
        _, reader_param = next(iter(reader.named_parameters()))
        writer_param.data[...] = 7.5
        assert np.all(reader_param.data == 7.5)

    def test_commit_copies_adam_moments(self, store_and_model):
        store, model, optimizer = store_and_model
        store.adopt_parent()
        # one real step so Adam materialises m/v
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        optimizer.step()
        store.commit(1)
        assert store.generation() == 1
        moments = store.moments()
        live = optimizer.state[0]["m"]
        assert np.array_equal(moments["m:0"], live)
        # Adam rebinds its moment arrays each step; the mirror must be a
        # copy, not an alias, or the next rebind would desynchronise it
        live[...] = -1.0
        assert not np.array_equal(store.moments()["m:0"], live)

    def test_generation_seqlock_round_trip(self, store_and_model):
        store, _, _ = store_and_model
        for generation in (1, 2, 40):
            store.commit(generation)
            assert store.generation() == generation


class TestGradSlots:
    def test_slots_isolated_and_read_copies(self):
        templates = {"w": np.zeros((3, 2)), "b": np.zeros(3)}
        slots = GradSlots(templates, n_slots=2)
        try:
            slots.views(0)["w"][...] = 1.0
            slots.views(1)["w"][...] = 2.0
            first = slots.read(0)
            assert np.all(first["w"] == 1.0)
            assert np.all(slots.read(1)["w"] == 2.0)
            # read() owns its arrays: later writes don't retro-change it
            slots.views(0)["w"][...] = 9.0
            assert np.all(first["w"] == 1.0)
        finally:
            slots.close()

    def test_slot_count_validated(self):
        with pytest.raises(ValueError, match="n_slots"):
            GradSlots({"w": np.zeros(1)}, n_slots=0)
