"""ShardPlan: pure-function partitioning; row blocks bitwise-safe."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import ShardPlan, block_spmm, row_blocks
from repro.sparse import CSRMatrix


class TestShardPlan:
    def test_contiguous_steps_and_shards(self):
        plan = ShardPlan.for_days([10, 11, 12, 13, 14], days_per_step=2)
        assert [group.days for group in plan.steps] == [
            (10, 11), (12, 13), (14,)]
        assert [shard.days for shard in plan.steps[0].shards] == [
            (10,), (11,)]
        assert plan.steps[2].shards[0].days == (14,)   # ragged tail

    def test_multi_day_shards(self):
        plan = ShardPlan.for_days(list(range(10)), days_per_step=6,
                                  days_per_shard=2)
        assert [shard.days for shard in plan.steps[0].shards] == [
            (0, 1), (2, 3), (4, 5)]
        assert plan.max_shards == 3

    def test_degenerate_is_serial_schedule(self):
        plan = ShardPlan.for_days([3, 1, 2], days_per_step=1)
        assert len(plan) == 3
        assert all(len(group) == 1 and len(group.shards[0]) == 1
                   for group in plan.steps)

    def test_validation(self):
        with pytest.raises(ValueError, match="days_per_step"):
            ShardPlan.for_days([1], days_per_step=0)
        with pytest.raises(ValueError, match="days_per_shard"):
            ShardPlan.for_days([1], days_per_step=1, days_per_shard=0)

    @given(days=st.lists(st.integers(0, 500), min_size=0, max_size=60),
           per_step=st.integers(1, 9), per_shard=st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_plan_partitions_exactly(self, days, per_step, per_shard):
        plan = ShardPlan.for_days(days, per_step, per_shard)
        flat = [day for group in plan.steps for day in group.days]
        assert flat == list(days)                  # order preserved
        assert plan.num_days == len(days)
        for group in plan.steps:
            assert len(group.days) <= per_step
            assert [shard.index for shard in group.shards] == \
                list(range(len(group.shards)))
            for shard in group.shards:
                assert 1 <= len(shard) <= per_shard

    def test_plan_is_worker_count_free(self):
        # Nothing about the plan depends on any worker count: same
        # inputs, same plan — the determinism bar in one line.
        a = ShardPlan.for_days(range(17), 4, 2)
        b = ShardPlan.for_days(range(17), 4, 2)
        assert a == b


class TestRowBlocks:
    def test_sizes_differ_by_at_most_one(self):
        blocks = row_blocks(10, 3)
        assert blocks == [(0, 4), (4, 7), (7, 10)]

    def test_more_blocks_than_rows(self):
        assert row_blocks(2, 5) == [(0, 1), (1, 2)]
        assert row_blocks(0, 3) == []

    @given(n_rows=st.integers(0, 300), n_blocks=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_blocks_tile_the_range(self, n_rows, n_blocks):
        blocks = row_blocks(n_rows, n_blocks)
        cursor = 0
        for start, stop in blocks:
            assert start == cursor and stop > start
            cursor = stop
        assert cursor == n_rows


class TestBlockSpmm:
    def _random_csr(self, rng, n_rows, n_cols, density=0.2):
        mask = rng.random((n_rows, n_cols)) < density
        dense = np.where(mask, rng.standard_normal((n_rows, n_cols)), 0.0)
        return CSRMatrix.from_dense(dense), dense

    @given(seed=st.integers(0, 2**16), n_blocks=st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_bitwise_equal_to_whole_matrix_kernel(self, seed, n_blocks):
        rng = np.random.default_rng(seed)
        matrix, _ = self._random_csr(rng, 13, 11)
        dense = rng.standard_normal((11, 5))
        whole = matrix.matmul(dense)
        blocked = block_spmm(matrix, dense, n_blocks)
        assert np.array_equal(whole, blocked)      # bitwise, not approx

    def test_vector_rhs(self):
        rng = np.random.default_rng(0)
        matrix, _ = self._random_csr(rng, 9, 9)
        vector = rng.standard_normal(9)
        assert np.array_equal(matrix.matmul(vector),
                              block_spmm(matrix, vector, 4))
