"""The acceptance bar: worker count never changes the numbers.

2- and 4-worker ``fit`` runs must be bitwise-identical to the 1-worker
(inline serial reference) run — epoch losses AND final ``state_dict()``
— under float64, in both dense and sparse graph modes; fp32/mixed runs
are tolerance-bounded.  The property-based test drives the schedule
shape (seed, days-per-step, day count) through hypothesis so the
equality is a property of the design, not of one lucky configuration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RTGCN, TrainConfig, Trainer
from repro.dist import DistTrainer, fit_distributed
from repro.parallel import fork_available
from repro.serve.shm import shm_available

pytestmark = pytest.mark.skipif(
    not (shm_available() and fork_available()),
    reason="needs shared_memory + fork")


def fit_once(dataset, workers, *, epochs=1, days=8, seed=0,
             days_per_step=4, graph_mode="auto", dtype_policy="float64",
             dropout=0.1, **overrides):
    cfg = TrainConfig(window=6, epochs=epochs, max_train_days=days,
                      seed=seed, graph_mode=graph_mode,
                      dtype_policy=dtype_policy, dist_workers=workers,
                      dist_days_per_step=days_per_step, **overrides)
    model = RTGCN(dataset.relations, strategy="uniform",
                  relational_filters=4, dropout=dropout,
                  rng=np.random.default_rng(3))
    losses = Trainer(model, dataset, cfg).fit()
    return losses, model.state_dict()


def assert_bitwise(first, second):
    losses_a, state_a = first
    losses_b, state_b = second
    assert losses_a == losses_b
    assert list(state_a) == list(state_b)
    for key in state_a:
        assert np.array_equal(state_a[key], state_b[key]), key


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("graph_mode", ["auto", "dense", "sparse"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bitwise_equal_to_inline_reference(self, nasdaq_mini,
                                               graph_mode, workers):
        reference = fit_once(nasdaq_mini, 1, graph_mode=graph_mode)
        parallel = fit_once(nasdaq_mini, workers, graph_mode=graph_mode)
        assert_bitwise(reference, parallel)

    @given(seed=st.integers(0, 2**10), days_per_step=st.integers(1, 5),
           days=st.integers(2, 8))
    @settings(max_examples=5, deadline=None)
    def test_schedule_shape_is_a_property(self, nasdaq_mini, seed,
                                          days_per_step, days):
        reference = fit_once(nasdaq_mini, 1, seed=seed, days=days,
                             days_per_step=days_per_step)
        parallel = fit_once(nasdaq_mini, 2, seed=seed, days=days,
                            days_per_step=days_per_step)
        assert_bitwise(reference, parallel)

    @pytest.mark.parametrize("policy", ["float32", "mixed"])
    def test_reduced_precision_tolerance_bounded(self, nasdaq_mini,
                                                 policy):
        losses_a, state_a = fit_once(nasdaq_mini, 1, dtype_policy=policy)
        losses_b, state_b = fit_once(nasdaq_mini, 2, dtype_policy=policy)
        # the association order is still frozen, so the runs agree to
        # storage precision (in practice they are byte-equal; the bound
        # documents the contract, not the observation)
        np.testing.assert_allclose(losses_a, losses_b, rtol=1e-5)
        for key in state_a:
            np.testing.assert_allclose(
                np.asarray(state_a[key], dtype=np.float64),
                np.asarray(state_b[key], dtype=np.float64),
                rtol=1e-4, atol=1e-6, err_msg=key)

    def test_two_epochs_stay_locked(self, nasdaq_mini):
        assert_bitwise(fit_once(nasdaq_mini, 1, epochs=2),
                       fit_once(nasdaq_mini, 2, epochs=2))


class TestSerialBridge:
    def test_days_per_step_one_matches_plain_trainer_dropout_free(
            self, nasdaq_mini):
        # With one day per step and dropout off, the dist loop IS the
        # serial trainer's algorithm — bitwise, not just close.  (With
        # dropout on, only the mask streams differ: dist reseeds them
        # per shard so they are worker-count invariant.)
        cfg = TrainConfig(window=6, epochs=1, max_train_days=8, seed=0)
        model = RTGCN(nasdaq_mini.relations, strategy="uniform",
                      relational_filters=4, dropout=0.0,
                      rng=np.random.default_rng(3))
        serial_losses = Trainer(model, nasdaq_mini, cfg).fit()
        serial_state = model.state_dict()
        dist = fit_once(nasdaq_mini, 1, days_per_step=1, dropout=0.0)
        assert_bitwise((serial_losses, serial_state), dist)


class TestDistTrainerSurface:
    def test_dist_trainer_always_uses_the_dist_loop(self, nasdaq_mini):
        cfg = TrainConfig(window=6, epochs=1, max_train_days=8, seed=0,
                          dist_workers=0, dist_days_per_step=4)
        model = RTGCN(nasdaq_mini.relations, strategy="uniform",
                      relational_filters=4, dropout=0.1,
                      rng=np.random.default_rng(3))
        losses = DistTrainer(model, nasdaq_mini, cfg).fit()
        assert_bitwise((losses, model.state_dict()),
                       fit_once(nasdaq_mini, 1))

    def test_resume_from_rejected(self, nasdaq_mini):
        cfg = TrainConfig(window=6, epochs=1, max_train_days=4, seed=0,
                          dist_workers=1)
        model = RTGCN(nasdaq_mini.relations, strategy="uniform",
                      relational_filters=4,
                      rng=np.random.default_rng(3))
        trainer = Trainer(model, nasdaq_mini, cfg)
        with pytest.raises(NotImplementedError, match="resume"):
            trainer.fit(resume_from="anything")

    def test_rollback_policy_rejected(self, nasdaq_mini):
        cfg = TrainConfig(window=6, epochs=1, max_train_days=4, seed=0,
                          dist_workers=1, nan_policy="rollback")
        model = RTGCN(nasdaq_mini.relations, strategy="uniform",
                      relational_filters=4,
                      rng=np.random.default_rng(3))
        with pytest.raises(ValueError, match="rollback"):
            Trainer(model, nasdaq_mini, cfg).fit()

    def test_early_stopping_runs_in_parent(self, nasdaq_mini):
        result = fit_once(nasdaq_mini, 2, epochs=3, days=10,
                          early_stopping_patience=1, validation_days=2)
        reference = fit_once(nasdaq_mini, 1, epochs=3, days=10,
                             early_stopping_patience=1,
                             validation_days=2)
        assert_bitwise(reference, result)

    def test_final_params_are_process_private(self, nasdaq_mini):
        _, state = fit_once(nasdaq_mini, 2)
        model_arrays = list(state.values())
        for array in model_arrays:
            array[...] = 0.0                       # must not raise
