"""Process-global tensor state across fork(): what a dist worker inherits.

The dist workers fork from a parent whose process-global tensor state —
buffer arena, dtype policy, RNG streams — is mid-training.  These tests
pin the inheritance contract: the arena starts *empty* in every child
(an ``os.register_at_fork`` hook; inherited backward buffers belong to
the parent's graph), the dtype policy carries over (workers re-enter it
from config anyway), and per-shard reseeding realigns every RNG stream
so a forked worker and the inline path draw identical dropout masks.
"""

import multiprocessing

import numpy as np
import pytest

from repro.nn import Dropout, Sequential, Linear
from repro.nn.random import get_rng, manual_seed
from repro.dist import reseed_shard
from repro.dist.worker import shard_rngs
from repro.parallel import fork_available
from repro.tensor import (Tensor, arena, arena_stats, clear_arena,
                          default_dtype, dtype_policy)
from repro.tensor.arena import materialize, release

pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="needs the fork start method")

_CTX = multiprocessing.get_context("fork")


def _in_child(target):
    """Run ``target`` in a forked child; returns what it sends back."""
    parent_conn, child_conn = _CTX.Pipe(duplex=False)

    def main():
        child_conn.send(target())

    process = _CTX.Process(target=main, daemon=True)
    process.start()
    try:
        assert parent_conn.poll(30.0), "child produced no result"
        return parent_conn.recv()
    finally:
        process.join(timeout=10.0)


class TestArenaAcrossFork:
    def test_child_starts_with_empty_arena(self):
        clear_arena()
        with arena():
            # populate the pool and leave a live buffer outstanding
            pooled = materialize(np.ones((4, 4)), np.float64)
            release(pooled)
            live = materialize(np.ones((2, 2)), np.float64)

            stats = _in_child(arena_stats)
            # the hook wiped pooled + live buffers and zeroed counters...
            assert stats["live"] == 0
            assert stats["pooled"] == 0 if "pooled" in stats else True
            assert stats["hits"] == 0 and stats["misses"] == 0
            # ...but enablement (plain bool) carries over
            assert stats["enabled"] is True

            # the parent's arena is untouched by the child's hook
            parent = arena_stats()
            assert parent["live"] == 1
            assert parent["misses"] == 2
            release(live)

    def test_child_reuse_never_aliases_parent_buffers(self):
        clear_arena()
        with arena():
            first = materialize(np.full((3, 3), 7.0), np.float64)
            release(first)

            def child():
                # a pool hit here would hand back the parent's buffer
                buf = materialize(np.zeros((3, 3)), np.float64)
                return arena_stats()["hits"]

            assert _in_child(child) == 0           # miss: fresh memory
        clear_arena()


class TestDtypePolicyAcrossFork:
    def test_policy_carries_over_fork(self):
        with dtype_policy("float32"):
            assert _in_child(lambda: default_dtype().str) == \
                np.dtype(np.float32).str
        assert default_dtype() == np.float64


class TestShardRngAlignment:
    def _model(self):
        # one module aliasing the global stream, one with its own
        manual_seed(123)
        return Sequential(
            Linear(4, 4, rng=np.random.default_rng(5)),
            Dropout(0.5),
            Dropout(0.5, rng=np.random.default_rng(11)),
        )

    def test_global_alias_deduplicated(self):
        model = self._model()
        streams = shard_rngs(model)
        names = [name for name, _ in streams]
        assert names[0] == "<global>"
        # Dropout without an explicit rng aliases the global generator —
        # it must appear once, not once per module
        assert len(streams) == len({id(gen) for _, gen in streams})
        assert len([n for n in names if n == "<global>"]) == 1

    def test_forked_worker_draws_parent_identical_masks(self):
        model = self._model()

        def draw():
            reseed_shard(model, seed=42, epoch=1, step=3, shard=2)
            model.train()
            out = model(Tensor(np.ones((5, 4))))
            return out.data

        # parent advances its streams arbitrarily before each side draws
        get_rng().standard_normal(17)
        inline = draw()
        get_rng().standard_normal(31)
        forked = _in_child(draw)
        assert np.array_equal(inline, forked)      # bitwise masks

    def test_distinct_shards_get_distinct_streams(self):
        model = self._model()
        reseed_shard(model, seed=42, epoch=0, step=0, shard=0)
        first = get_rng().standard_normal(8)
        reseed_shard(model, seed=42, epoch=0, step=0, shard=1)
        second = get_rng().standard_normal(8)
        reseed_shard(model, seed=42, epoch=0, step=0, shard=0)
        replay = get_rng().standard_normal(8)
        assert not np.array_equal(first, second)
        assert np.array_equal(first, replay)
