"""repro.dist: deterministic intra-run data parallelism."""
