"""ShardExecutor: inline == forked, crash replay, telemetry."""

import os
import signal

import numpy as np
import pytest

from repro.core import RTGCN, TrainConfig, Trainer
from repro.dist import GradSlots, ParamStore, ShardExecutor, ShardPlan, \
    WorkerContext
from repro.dist.worker import WorkerCrashError
from repro.parallel import fork_available
from repro.serve.shm import shm_available

pytestmark = pytest.mark.skipif(
    not (shm_available() and fork_available()),
    reason="needs shared_memory + fork")


def quick_config(**overrides):
    defaults = dict(window=6, epochs=1, max_train_days=8, seed=0,
                    dist_days_per_step=4)
    defaults.update(overrides)
    return TrainConfig(**defaults)


def build_stack(dataset, workers, **overrides):
    cfg = quick_config(dist_workers=workers, **overrides)
    model = RTGCN(dataset.relations, strategy="uniform",
                  relational_filters=4, rng=np.random.default_rng(3))
    trainer = Trainer(model, dataset, cfg)
    store = ParamStore(model, trainer.optimizer)
    slots = GradSlots({name: p.data
                       for name, p in model.named_parameters()},
                      n_slots=workers)
    store.adopt_parent()
    store.commit(0)
    executor = ShardExecutor(
        WorkerContext(model=model, dataset=dataset, config=cfg,
                      loss_fn=trainer.loss_fn, store=store, slots=slots),
        workers=workers)
    return cfg, model, trainer, store, slots, executor


def teardown_stack(model, store, slots, executor):
    executor.shutdown()
    for _, param in model.named_parameters():
        param.data = np.array(param.data)
        param.grad = None
    store.close()
    slots.close()


def one_step(dataset, workers):
    cfg, model, trainer, store, slots, executor = build_stack(
        dataset, workers)
    try:
        days = trainer._training_days()[0][:4]
        plan = ShardPlan.for_days(days, cfg.dist_days_per_step)
        grads, losses = executor.run_step(0, 0, plan.steps[0])
        return grads, losses
    finally:
        teardown_stack(model, store, slots, executor)


class TestRunStep:
    def test_inline_and_forked_grads_bitwise_equal(self, nasdaq_mini):
        inline_grads, inline_losses = one_step(nasdaq_mini, workers=1)
        forked_grads, forked_losses = one_step(nasdaq_mini, workers=2)
        assert inline_losses == forked_losses
        assert len(inline_grads) == len(forked_grads)
        for a, b in zip(inline_grads, forked_grads):
            assert list(a) == list(b)
            for key in a:
                assert np.array_equal(a[key], b[key]), key

    def test_losses_keyed_by_shard_in_day_order(self, nasdaq_mini):
        _, losses = one_step(nasdaq_mini, workers=2)
        assert sorted(losses) == list(range(4))    # one shard per day
        for pairs in losses.values():
            assert all(np.isfinite(loss) for _, loss in pairs)

    def test_sigkill_replays_the_lost_shard(self, nasdaq_mini):
        cfg, model, trainer, store, slots, executor = build_stack(
            nasdaq_mini, workers=2)
        try:
            days = trainer._training_days()[0][:4]
            plan = ShardPlan.for_days(days, cfg.dist_days_per_step)
            clean_grads, clean_losses = executor.run_step(
                0, 0, plan.steps[0])
            os.kill(executor.handles[0].process.pid, signal.SIGKILL)
            with pytest.warns(RuntimeWarning, match="replaying"):
                replay_grads, replay_losses = executor.run_step(
                    0, 0, plan.steps[0])
            assert clean_losses == replay_losses
            for a, b in zip(clean_grads, replay_grads):
                for key in a:
                    assert np.array_equal(a[key], b[key]), key
            assert executor.telemetry.crashes >= 1
        finally:
            teardown_stack(model, store, slots, executor)

    def test_repeated_crashes_exhaust_attempts(self, nasdaq_mini):
        cfg, model, trainer, store, slots, executor = build_stack(
            nasdaq_mini, workers=2)
        executor.max_attempts = 1
        try:
            days = trainer._training_days()[0][:4]
            plan = ShardPlan.for_days(days, cfg.dist_days_per_step)
            os.kill(executor.handles[0].process.pid, signal.SIGKILL)
            os.kill(executor.handles[1].process.pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashError):
                executor.run_step(0, 0, plan.steps[0])
        finally:
            teardown_stack(model, store, slots, executor)

    def test_worker_count_validated_against_slots(self, nasdaq_mini):
        cfg, model, trainer, store, slots, executor = build_stack(
            nasdaq_mini, workers=1)
        try:
            with pytest.raises(ValueError, match="grad"):
                ShardExecutor(executor.context, workers=2)
        finally:
            teardown_stack(model, store, slots, executor)

    def test_telemetry_reports_per_worker_utilization(self, nasdaq_mini):
        cfg, model, trainer, store, slots, executor = build_stack(
            nasdaq_mini, workers=2)
        try:
            days = trainer._training_days()[0][:4]
            plan = ShardPlan.for_days(days, cfg.dist_days_per_step)
            executor.run_step(0, 0, plan.steps[0])
            report = executor.telemetry.report(kind="dist")
            assert report.kind == "dist"
            assert report.metrics["tasks_completed"] == 4
            assert any(key.startswith("worker-")
                       for key in report.phases)
        finally:
            teardown_stack(model, store, slots, executor)
