"""GradReducer: frozen association order, bitwise reproducibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import GradReducer


class TestReductionOrder:
    def test_fan_in_two_tree(self):
        assert GradReducer().reduction_order(4) == [(0, 1), (2, 3),
                                                    (0, 2)]

    def test_odd_singleton_passes_through(self):
        assert GradReducer().reduction_order(5) == [
            (0, 1), (2, 3), (0, 2), (0, 4)]

    def test_wide_fan_in_is_serial_fold(self):
        assert GradReducer(fan_in=8).reduction_order(5) == [
            (0, 1, 2, 3, 4)]

    def test_trivial_cases(self):
        assert GradReducer().reduction_order(1) == []
        assert GradReducer().reduction_order(0) == []

    def test_fan_in_validated(self):
        with pytest.raises(ValueError, match="fan_in"):
            GradReducer(fan_in=1)


class TestReduceArrays:
    def test_matches_explicit_tree(self):
        arrays = [np.array([1e16]), np.array([1.0]),
                  np.array([-1e16]), np.array([1.0])]
        tree = (arrays[0] + arrays[1]) + (arrays[2] + arrays[3])
        assert np.array_equal(GradReducer().reduce_arrays(arrays), tree)
        # and the tree genuinely differs from a left fold here, which is
        # why the order must be frozen
        fold = ((arrays[0] + arrays[1]) + arrays[2]) + arrays[3]
        assert not np.array_equal(tree, fold)

    def test_inputs_not_mutated_and_single_is_copy(self):
        source = np.ones(3)
        result = GradReducer().reduce_arrays([source])
        result += 5.0
        assert np.array_equal(source, np.ones(3))

    @given(seed=st.integers(0, 2**16), n=st.integers(1, 9),
           fan_in=st.integers(2, 4))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_across_calls(self, seed, n, fan_in):
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(7) for _ in range(n)]
        reducer = GradReducer(fan_in=fan_in)
        first = reducer.reduce_arrays(arrays)
        again = reducer.reduce_arrays([np.array(a) for a in arrays])
        assert np.array_equal(first, again)        # bitwise


class TestReduceDicts:
    def test_reduces_per_key(self):
        shards = [{"w": np.full(2, float(i)), "b": np.ones(1)}
                  for i in range(3)]
        out = GradReducer().reduce(shards)
        assert np.array_equal(out["w"], np.full(2, 3.0))
        assert np.array_equal(out["b"], np.full(1, 3.0))

    def test_key_order_mismatch_rejected(self):
        good = {"a": np.ones(1), "b": np.ones(1)}
        reordered = {"b": np.ones(1), "a": np.ones(1)}
        with pytest.raises(ValueError, match="keys differ"):
            GradReducer().reduce([good, reordered])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GradReducer().reduce([])
