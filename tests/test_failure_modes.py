"""Failure injection: the library must fail loudly on bad inputs.

Production code paths are exercised with malformed shapes, NaNs, and
contract violations; every case must raise a clear error (or, where NaN
propagation is the documented behavior, be detectable downstream).
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import RTGCN, TrainConfig, Trainer
from repro.data import FeaturePanel, SimulationConfig, StockDataset
from repro.graph import RelationMatrix, normalize_adjacency
from repro.tensor import Tensor, conv1d


class TestTensorContracts:
    def test_mismatched_matmul_raises(self, rng):
        a = Tensor(rng.standard_normal((2, 3)))
        b = Tensor(rng.standard_normal((4, 5)))
        with pytest.raises(ValueError):
            a @ b

    def test_bad_reshape_raises(self, rng):
        with pytest.raises(ValueError):
            Tensor(rng.standard_normal(6)).reshape(4, 2)

    def test_nan_propagates_visibly(self):
        x = Tensor(np.array([1.0, np.nan]), requires_grad=True)
        out = (x * 2).sum()
        assert np.isnan(out.item())

    def test_conv_on_empty_batch(self):
        x = Tensor(np.zeros((0, 2, 8)))
        w = Tensor(np.zeros((3, 2, 2)))
        out = conv1d(x, w)
        assert out.shape == (0, 3, 7)


class TestDataContracts:
    def test_negative_prices_rejected(self):
        with pytest.raises(ValueError):
            FeaturePanel.from_prices(np.full((2, 30), -1.0))

    def test_nan_prices_rejected(self):
        prices = np.full((2, 30), 10.0)
        prices[0, 5] = np.nan
        with pytest.raises(ValueError):
            FeaturePanel.from_prices(prices)

    def test_simulation_rejects_degenerate_horizon(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_days=1)
            from repro.data import generate_universe, simulate_market
            simulate_market(generate_universe("X", 5, 2, 0.3), [],
                            config=SimulationConfig(num_days=1))

    def test_window_larger_than_history(self, nasdaq_mini):
        with pytest.raises(ValueError):
            nasdaq_mini.split(window=10_000)


class TestGraphContracts:
    def test_non_square_adjacency(self):
        with pytest.raises(ValueError):
            normalize_adjacency(np.ones((2, 3)))

    def test_relation_tensor_nan_visible(self):
        tensor = np.zeros((3, 3, 1))
        tensor[0, 1, 0] = tensor[1, 0, 0] = 1.0
        rel = RelationMatrix(tensor)
        # NaN injection post-construction is detectable in the adjacency.
        rel.tensor[0, 1, 0] = np.nan
        assert np.isnan(rel.tensor).any()


class TestModelContracts:
    def test_model_relation_count_mismatch(self, nasdaq_mini, csi_mini, rng):
        """A model built for one universe must reject another's features."""
        model = RTGCN(csi_mini.relations, relational_filters=4, rng=rng)
        features = nasdaq_mini.features(60, window=6)    # 48 stocks
        with pytest.raises(ValueError):
            model(Tensor(features))

    def test_trainer_with_incompatible_model(self, nasdaq_mini, csi_mini,
                                             rng):
        model = RTGCN(csi_mini.relations, relational_filters=4, rng=rng)
        trainer = Trainer(model, nasdaq_mini,
                          TrainConfig(window=6, epochs=1, max_train_days=2))
        with pytest.raises(ValueError):
            trainer.train()

    def test_module_rejects_bad_state_shape(self, rng):
        layer = nn.Linear(3, 2)
        with pytest.raises(ValueError):
            layer.load_state_dict({"weight": np.zeros((9, 9)),
                                   "bias": np.zeros(2)})

    def test_training_survives_extreme_inputs(self, nasdaq_mini, rng):
        """Huge-but-finite features must not produce NaN losses (clipping
        and normalization keep the pipeline stable)."""
        model = RTGCN(nasdaq_mini.relations, relational_filters=4,
                      dropout=0.0, rng=rng)
        features = nasdaq_mini.features(60, window=6) * 50.0
        scores = model(Tensor(features))
        assert np.isfinite(scores.data).all()


def test_rtgcn_mismatched_adjacency_in_graphconv(rng):
    from repro.nn import GraphConv
    conv = GraphConv(3, 4)
    with pytest.raises(ValueError):
        conv(Tensor(rng.standard_normal((5, 3))),
             Tensor(np.eye(4)))
