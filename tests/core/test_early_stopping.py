"""Early stopping in the trainer."""

import numpy as np
import pytest

from repro.core import RTGCN, TrainConfig, Trainer


def make_model(dataset, seed=0):
    return RTGCN(dataset.relations, strategy="uniform",
                 relational_filters=8, rng=np.random.default_rng(seed))


class TestEarlyStopping:
    def test_stops_before_max_epochs(self, csi_mini):
        cfg = TrainConfig(window=8, epochs=40, max_train_days=50,
                          early_stopping_patience=2, validation_days=12,
                          seed=0)
        losses = Trainer(make_model(csi_mini), csi_mini, cfg).train()
        assert len(losses) < 40

    def test_disabled_by_default(self, csi_mini):
        cfg = TrainConfig(window=8, epochs=3, max_train_days=15, seed=0)
        losses = Trainer(make_model(csi_mini), csi_mini, cfg).train()
        assert len(losses) == 3

    def test_requires_positive_validation_days(self, csi_mini):
        cfg = TrainConfig(window=8, epochs=2, early_stopping_patience=1,
                          validation_days=0)
        with pytest.raises(ValueError):
            Trainer(make_model(csi_mini), csi_mini, cfg).train()

    def test_validation_cannot_exhaust_training(self, csi_mini):
        cfg = TrainConfig(window=8, epochs=2, max_train_days=10,
                          early_stopping_patience=1, validation_days=10)
        with pytest.raises(ValueError):
            Trainer(make_model(csi_mini), csi_mini, cfg).train()

    def test_best_state_restored(self, csi_mini):
        """After stopping, the model carries the best-validation weights:
        its validation loss equals the minimum seen, not the last."""
        cfg = TrainConfig(window=8, epochs=25, max_train_days=60,
                          early_stopping_patience=3, validation_days=12,
                          seed=1)
        model = make_model(csi_mini, seed=1)
        trainer = Trainer(model, csi_mini, cfg)
        seen = []
        original_eval = trainer._validation_loss

        def spy(days):
            value = original_eval(days)
            seen.append(value)
            return value

        trainer._validation_loss = spy
        trainer.train()
        final = original_eval(csi_mini.split(8)[0][-12:])
        assert np.isclose(final, min(seen), atol=1e-9)
