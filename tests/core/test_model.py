"""RT-GCN model: shapes, strategies, ablations, causality, gradient flow."""

import numpy as np
import pytest

from repro.core import (RTGCN, RelationalGraphConvolution,
                        TemporalConvolution)
from repro.graph import RelationMatrix, make_strategy
from repro.tensor import Tensor, no_grad


def relations(n=6):
    return RelationMatrix.from_edges(n, ["industry:a", "wiki:b"], [
        (0, 1, 0), (1, 2, 0), (2, 3, 1), (4, 5, 0),
    ])


def features(rng, t=8, n=6, d=4):
    return Tensor(rng.standard_normal((t, n, d)))


class TestRelationalGraphConvolution:
    def test_static_strategy_shape(self, rng):
        conv = RelationalGraphConvolution(
            make_strategy("uniform", relations()), 4, 10)
        assert conv(features(rng)).shape == (8, 6, 10)

    def test_time_strategy_shape(self, rng):
        conv = RelationalGraphConvolution(
            make_strategy("time", relations()), 4, 10)
        assert conv(features(rng)).shape == (8, 6, 10)

    def test_output_nonnegative_after_relu(self, rng):
        conv = RelationalGraphConvolution(
            make_strategy("weight", relations()), 4, 5)
        assert np.all(conv(features(rng)).data >= 0)

    def test_rank_validated(self, rng):
        conv = RelationalGraphConvolution(
            make_strategy("uniform", relations()), 4, 5)
        with pytest.raises(ValueError):
            conv(Tensor(rng.standard_normal((6, 4))))

    def test_isolated_node_uses_own_features_only(self, rng):
        # A fully isolated stock's output depends only on itself (plus the
        # self-loop of the renormalization trick).
        rel = RelationMatrix.from_edges(4, ["t"], [(0, 1, 0)])
        conv = RelationalGraphConvolution(make_strategy("uniform", rel), 3, 2)
        x = rng.standard_normal((2, 4, 3))
        base = conv(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[:, 0, :] += 10.0      # perturb stock 0 (unrelated to stock 3)
        out = conv(Tensor(x2)).data
        assert np.allclose(out[:, 3, :], base[:, 3, :])
        assert not np.allclose(out[:, 1, :], base[:, 1, :])


class TestTemporalConvolution:
    def test_shape_stride_compression(self, rng):
        conv = TemporalConvolution(4, 6, stride=2, dropout=0.0)
        out = conv(features(rng, t=10, d=4))
        assert out.shape == (5, 6, 6)

    def test_causality_across_time_axis(self):
        conv = TemporalConvolution(1, 1, kernel_size=3, dropout=0.0)
        base = conv(Tensor(np.zeros((10, 2, 1)))).data
        bumped = np.zeros((10, 2, 1))
        bumped[7, 0, 0] = 1.0
        out = conv(Tensor(bumped)).data
        assert np.allclose(out[:7], base[:7])   # past unaffected by future

    def test_rank_validated(self, rng):
        with pytest.raises(ValueError):
            TemporalConvolution(4, 4)(Tensor(rng.standard_normal((5, 4))))


class TestRTGCN:
    @pytest.mark.parametrize("strategy", ["uniform", "weight", "time"])
    def test_scores_shape(self, strategy, rng):
        model = RTGCN(relations(), strategy=strategy, relational_filters=8,
                      rng=rng)
        scores = model(features(rng))
        assert scores.shape == (6,)

    def test_stacked_layers(self, rng):
        model = RTGCN(relations(), strategy="uniform", num_layers=2,
                      relational_filters=8, rng=rng)
        assert model(features(rng)).shape == (6,)

    def test_feature_dim_validated(self, rng):
        model = RTGCN(relations(), num_features=4, rng=rng)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((8, 6, 3))))

    def test_rank_validated(self, rng):
        model = RTGCN(relations(), rng=rng)
        with pytest.raises(ValueError):
            model(Tensor(rng.standard_normal((8, 6))))

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            RTGCN(relations(), num_layers=0)

    def test_all_parameters_receive_gradients(self, rng):
        model = RTGCN(relations(), strategy="time", relational_filters=4,
                      dropout=0.0, rng=rng)
        scores = model(features(rng))
        (scores ** 2).sum().backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no grad for {name}"
            assert np.isfinite(param.grad).all(), f"bad grad for {name}"

    def test_deterministic_in_eval_mode(self, rng):
        model = RTGCN(relations(), strategy="weight", dropout=0.5, rng=rng)
        model.eval()
        x = features(rng)
        with no_grad():
            a = model(x).data.copy()
            b = model(x).data.copy()
        assert np.allclose(a, b)

    def test_dropout_varies_in_train_mode(self, rng):
        model = RTGCN(relations(), strategy="uniform", dropout=0.5, rng=rng)
        x = features(rng)
        a = model(x).data.copy()
        b = model(x).data.copy()
        assert not np.allclose(a, b)

    def test_related_stock_features_influence_scores(self, rng):
        """The relational signal path: perturbing a neighbor changes a
        stock's score; perturbing an unrelated stock does not (1 layer)."""
        rel = RelationMatrix.from_edges(5, ["t"], [(0, 1, 0)])
        model = RTGCN(rel, strategy="uniform", dropout=0.0, rng=rng)
        model.eval()
        x = rng.standard_normal((8, 5, 4))
        with no_grad():
            base = model(Tensor(x)).data.copy()
            bumped = x.copy()
            bumped[:, 1, :] += 1.0
            out = model(Tensor(bumped)).data
        assert abs(out[0] - base[0]) > 1e-9      # neighbor moved
        assert np.isclose(out[4], base[4])        # unrelated stock untouched


class TestAblations:
    def test_r_conv_has_no_temporal_module(self, rng):
        model = RTGCN.r_conv(relations(), relational_filters=4, rng=rng)
        assert model._modules["layer0"].temporal is None
        assert model._modules["layer0"].relational is not None
        assert model(features(rng)).shape == (6,)

    def test_r_conv_uses_uniform_strategy(self, rng):
        model = RTGCN.r_conv(relations(), rng=rng)
        assert model.strategy_name == "uniform"

    def test_t_conv_has_no_relational_module(self, rng):
        model = RTGCN.t_conv(relations(), relational_filters=4, rng=rng)
        assert model._modules["layer0"].relational is None
        assert model._modules["layer0"].temporal is not None
        assert model(features(rng)).shape == (6,)

    def test_t_conv_ignores_relations(self, rng):
        """T-Conv output for stock i depends only on stock i's features."""
        model = RTGCN.t_conv(relations(), dropout=0.0, rng=rng)
        model.eval()
        x = rng.standard_normal((8, 6, 4))
        with no_grad():
            base = model(Tensor(x)).data.copy()
            bumped = x.copy()
            bumped[:, 1, :] += 5.0     # stock 1 is related to stock 0
            out = model(Tensor(bumped)).data
        assert np.isclose(out[0], base[0])    # no relational propagation

    def test_layer_must_keep_one_module(self):
        with pytest.raises(ValueError):
            RTGCN(relations(), use_relational=False, use_temporal=False)
