"""Trainer: loss descent, prediction shapes, determinism, custom losses."""

import numpy as np
import pytest

from repro.core import RTGCN, TrainConfig, Trainer
from repro.core.losses import regression_loss
from repro.tensor import Tensor


def quick_config(**overrides):
    defaults = dict(window=8, epochs=2, max_train_days=25, seed=0)
    defaults.update(overrides)
    return TrainConfig(**defaults)


class TestTraining:
    def test_loss_decreases(self, nasdaq_mini, rng):
        model = RTGCN(nasdaq_mini.relations, strategy="uniform",
                      relational_filters=8, dropout=0.0, rng=rng)
        losses = Trainer(model, nasdaq_mini,
                         quick_config(epochs=4)).train()
        assert len(losses) == 4
        assert losses[-1] < losses[0]

    def test_progress_callback_invoked(self, nasdaq_mini, rng):
        model = RTGCN(nasdaq_mini.relations, relational_filters=4, rng=rng)
        seen = []
        with pytest.warns(DeprecationWarning):   # legacy hook still works
            Trainer(model, nasdaq_mini, quick_config(epochs=2)).train(
                progress=lambda epoch, loss: seen.append((epoch, loss)))
        assert [e for e, _ in seen] == [0, 1]

    def test_max_train_days_limits_samples(self, nasdaq_mini, rng):
        model = RTGCN(nasdaq_mini.relations, relational_filters=4, rng=rng)
        trainer = Trainer(model, nasdaq_mini,
                          quick_config(max_train_days=5, epochs=1))
        losses = trainer.train()
        assert len(losses) == 1   # smoke: runs with 5 days only

    def test_custom_loss_fn_used(self, nasdaq_mini, rng):
        model = RTGCN(nasdaq_mini.relations, relational_filters=4, rng=rng)
        calls = []

        def loss_fn(scores, labels, params):
            calls.append(1)
            return regression_loss(scores, labels)

        Trainer(model, nasdaq_mini, quick_config(epochs=1,
                                                 max_train_days=3),
                loss_fn=loss_fn).train()
        assert len(calls) == 3


class TestPrediction:
    def test_run_produces_full_test_matrix(self, nasdaq_mini, rng):
        model = RTGCN(nasdaq_mini.relations, relational_filters=4, rng=rng)
        result = Trainer(model, nasdaq_mini, quick_config(epochs=1)).run()
        _, test_days = nasdaq_mini.split(8)
        assert result.predictions.shape == (len(test_days), 48)
        assert result.actuals.shape == (len(test_days), 48)
        assert result.test_days == list(test_days)
        assert result.train_seconds > 0
        assert result.test_seconds > 0

    def test_predictions_finite(self, nasdaq_mini, rng):
        model = RTGCN(nasdaq_mini.relations, strategy="time",
                      relational_filters=4, rng=rng)
        result = Trainer(model, nasdaq_mini, quick_config(epochs=1)).run()
        assert np.isfinite(result.predictions).all()

    def test_predict_is_deterministic(self, nasdaq_mini, rng):
        model = RTGCN(nasdaq_mini.relations, dropout=0.5,
                      relational_filters=4, rng=rng)
        trainer = Trainer(model, nasdaq_mini, quick_config())
        _, test_days = nasdaq_mini.split(8)
        a = trainer.predict(test_days[:5])
        b = trainer.predict(test_days[:5])
        assert np.allclose(a, b)    # eval mode disables dropout

    def test_model_back_in_train_mode_after_predict(self, nasdaq_mini, rng):
        model = RTGCN(nasdaq_mini.relations, relational_filters=4, rng=rng)
        trainer = Trainer(model, nasdaq_mini, quick_config())
        trainer.predict(nasdaq_mini.split(8)[1][:2])
        assert model.training


class TestDeterminism:
    def test_same_seed_same_losses(self, nasdaq_mini):
        def run(seed):
            model = RTGCN(nasdaq_mini.relations, relational_filters=4,
                          dropout=0.0,
                          rng=np.random.default_rng(99))
            cfg = quick_config(epochs=1, seed=seed, max_train_days=10)
            return Trainer(model, nasdaq_mini, cfg).train()
        assert np.allclose(run(5), run(5))

    def test_actuals_match_dataset_labels(self, nasdaq_mini, rng):
        model = RTGCN(nasdaq_mini.relations, relational_filters=4, rng=rng)
        result = Trainer(model, nasdaq_mini,
                         quick_config(epochs=1, max_train_days=3)).run()
        day = result.test_days[0]
        assert np.allclose(result.actuals[0], nasdaq_mini.label(day))
