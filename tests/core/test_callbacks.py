"""Trainer event API: callback order, the deprecation shim, evaluate()."""

import numpy as np
import pytest

from repro.core import (CallbackList, RTGCN, TrainConfig, Trainer,
                        TrainerCallback)


class RecordingCallback(TrainerCallback):
    def __init__(self, log=None):
        self.log = log if log is not None else []

    def on_epoch_start(self, trainer, epoch):
        self.log.append(("epoch_start", epoch))

    def on_batch_end(self, trainer, epoch, day, loss):
        self.log.append(("batch_end", epoch))

    def on_epoch_end(self, trainer, epoch, mean_loss):
        self.log.append(("epoch_end", epoch))

    def on_fit_end(self, trainer, losses):
        self.log.append(("fit_end", len(losses)))


def make_trainer(dataset, **overrides):
    defaults = dict(window=8, epochs=2, max_train_days=3, seed=0)
    defaults.update(overrides)
    model = RTGCN(dataset.relations, relational_filters=4,
                  rng=np.random.default_rng(0))
    return Trainer(model, dataset, TrainConfig(**defaults))


class TestCallbackOrder:
    def test_events_fire_in_order(self, nasdaq_mini):
        cb = RecordingCallback()
        trainer = make_trainer(nasdaq_mini)
        trainer.fit(callbacks=[cb])
        expected = []
        for epoch in range(2):
            expected.append(("epoch_start", epoch))
            expected.extend([("batch_end", epoch)] * 3)
            expected.append(("epoch_end", epoch))
        expected.append(("fit_end", 2))
        assert cb.log == expected

    def test_batch_end_sees_day_and_loss(self, nasdaq_mini):
        seen = []

        class Spy(TrainerCallback):
            def on_batch_end(self, trainer, epoch, day, loss):
                seen.append((epoch, day, loss))

        trainer = make_trainer(nasdaq_mini, epochs=1)
        trainer.fit(callbacks=[Spy()])
        assert len(seen) == 3
        train_days, _ = nasdaq_mini.split(8)
        for epoch, day, loss in seen:
            assert epoch == 0
            assert day in train_days
            assert np.isfinite(loss)

    def test_multiple_callbacks_fan_out_in_order(self, nasdaq_mini):
        log = []
        first = RecordingCallback(log)
        second = RecordingCallback(log)
        trainer = make_trainer(nasdaq_mini, epochs=1)
        trainer.fit(callbacks=[first, second])
        # each event appears twice, back to back (first then second)
        assert log[0] == log[1] == ("epoch_start", 0)
        assert log[-1] == log[-2] == ("fit_end", 1)

    def test_callback_list_is_a_callback(self, nasdaq_mini):
        cb = RecordingCallback()
        trainer = make_trainer(nasdaq_mini, epochs=1)
        trainer.fit(callbacks=[CallbackList([cb])])
        assert ("fit_end", 1) in cb.log

    def test_fit_end_fires_on_early_stopping(self, csi_mini):
        cb = RecordingCallback()
        trainer = make_trainer(csi_mini, epochs=6, max_train_days=12,
                               early_stopping_patience=1,
                               validation_days=3)
        losses = trainer.fit(callbacks=[cb])
        assert cb.log[-1] == ("fit_end", len(losses))
        assert cb.log.count(("fit_end", len(losses))) == 1


class TestDeprecationShim:
    def test_train_progress_warns_but_still_fires(self, nasdaq_mini):
        seen = []
        trainer = make_trainer(nasdaq_mini)
        with pytest.warns(DeprecationWarning, match="TrainerCallback"):
            trainer.train(progress=lambda e, loss: seen.append(e))
        assert seen == [0, 1]

    def test_train_without_progress_does_not_warn(self, nasdaq_mini):
        import warnings

        trainer = make_trainer(nasdaq_mini, epochs=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            losses = trainer.train()
        assert len(losses) == 1

    def test_run_progress_warns(self, nasdaq_mini):
        trainer = make_trainer(nasdaq_mini, epochs=1)
        with pytest.warns(DeprecationWarning):
            result = trainer.run(progress=lambda e, loss: None)
        assert len(result.epoch_losses) == 1


class TestEvaluate:
    def test_evaluate_defaults_to_test_split(self, nasdaq_mini):
        trainer = make_trainer(nasdaq_mini, epochs=1)
        trainer.fit()
        out = trainer.evaluate()
        _, test_days = nasdaq_mini.split(8)
        assert out["num_days"] == len(test_days)
        assert np.isfinite(out["loss"])

    def test_evaluate_explicit_days(self, nasdaq_mini):
        trainer = make_trainer(nasdaq_mini, epochs=1)
        _, test_days = nasdaq_mini.split(8)
        out = trainer.evaluate(test_days[:4])
        assert out["num_days"] == 4

    def test_evaluate_restores_train_mode(self, nasdaq_mini):
        trainer = make_trainer(nasdaq_mini, epochs=1)
        trainer.evaluate(nasdaq_mini.split(8)[1][:2])
        assert trainer.model.training
