"""The paper's loss functions (Eqs. 7–9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import combined_loss, l2_penalty, ranking_loss, regression_loss
from repro.nn.module import Parameter
from repro.tensor import Tensor, gradcheck


def t(data, grad=True):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=grad)


class TestRegressionLoss:
    def test_zero_at_perfect_prediction(self):
        y = t([0.1, -0.2, 0.3], grad=False)
        assert regression_loss(y, y).item() == 0.0

    def test_known_value(self):
        loss = regression_loss(t([1.0, 2.0]), t([0.0, 0.0]))
        assert np.isclose(loss.item(), 2.5)

    def test_gradcheck(self, rng):
        pred = t(rng.standard_normal(6))
        actual = Tensor(rng.standard_normal(6))
        gradcheck(lambda: regression_loss(pred, actual), [pred])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            regression_loss(t([1.0]), t([1.0, 2.0]))


class TestRankingLoss:
    def test_zero_for_perfectly_ordered(self):
        # Predictions in the same order as ground truth: every pairwise
        # product is positive -> ReLU(-x) = 0.
        pred = t([3.0, 2.0, 1.0])
        actual = t([0.3, 0.2, 0.1], grad=False)
        assert ranking_loss(pred, actual).item() == 0.0

    def test_positive_for_inverted_order(self):
        pred = t([1.0, 2.0, 3.0])
        actual = t([0.3, 0.2, 0.1], grad=False)
        assert ranking_loss(pred, actual).item() > 0.0

    def test_penalty_scales_with_margin(self):
        actual = t([0.2, 0.1], grad=False)
        mild = ranking_loss(t([0.0, 0.01]), actual).item()
        severe = ranking_loss(t([0.0, 1.0]), actual).item()
        assert severe > mild

    def test_single_stock_is_zero(self):
        assert ranking_loss(t([1.0]), t([0.5], grad=False)).item() == 0.0

    def test_gradcheck(self, rng):
        pred = t(rng.standard_normal(5))
        actual = Tensor(rng.standard_normal(5))
        gradcheck(lambda: ranking_loss(pred, actual), [pred])

    def test_requires_vectors(self):
        with pytest.raises(ValueError):
            ranking_loss(t(np.ones((2, 2))), t(np.ones((2, 2))))

    def test_invariant_to_common_shift(self, rng):
        """Adding a constant to all predictions keeps pairwise diffs."""
        actual = Tensor(rng.standard_normal(6))
        pred = rng.standard_normal(6)
        a = ranking_loss(t(pred), actual).item()
        b = ranking_loss(t(pred + 5.0), actual).item()
        assert np.isclose(a, b)


class TestCombinedLoss:
    def test_alpha_zero_equals_regression(self, rng):
        pred = t(rng.standard_normal(5))
        actual = Tensor(rng.standard_normal(5))
        assert np.isclose(combined_loss(pred, actual, alpha=0.0).item(),
                          regression_loss(pred, actual).item())

    def test_alpha_adds_ranking_term(self, rng):
        pred = t(rng.standard_normal(5))
        actual = Tensor(rng.standard_normal(5))
        base = combined_loss(pred, actual, alpha=0.0).item()
        with_rank = combined_loss(pred, actual, alpha=0.5).item()
        rank = ranking_loss(pred, actual).item()
        assert np.isclose(with_rank, base + 0.5 * rank)

    def test_weight_decay_term(self, rng):
        pred = t(rng.standard_normal(4))
        actual = Tensor(rng.standard_normal(4))
        params = [Parameter(np.array([2.0, 1.0]))]
        plain = combined_loss(pred, actual, alpha=0.0).item()
        decayed = combined_loss(pred, actual, alpha=0.0, parameters=params,
                                weight_decay=0.1).item()
        assert np.isclose(decayed, plain + 0.1 * 5.0)

    def test_gradcheck_full(self, rng):
        pred = t(rng.standard_normal(4))
        actual = Tensor(rng.standard_normal(4))
        param = Parameter(rng.standard_normal(3))
        gradcheck(lambda: combined_loss(pred, actual, alpha=0.2,
                                        parameters=[param],
                                        weight_decay=0.05), [pred, param])


class TestL2Penalty:
    def test_value(self):
        params = [Parameter(np.array([3.0])), Parameter(np.array([4.0]))]
        assert np.isclose(l2_penalty(params).item(), 25.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            l2_penalty([])


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=10),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_ranking_loss_nonnegative_and_zero_iff_concordant(n, seed):
    rng = np.random.default_rng(seed)
    actual = rng.standard_normal(n)
    pred_concordant = actual * 2.0 + 1.0     # strictly monotone transform
    loss = ranking_loss(Tensor(pred_concordant, requires_grad=True),
                        Tensor(actual))
    assert loss.item() <= 1e-12
    pred_random = rng.standard_normal(n)
    loss2 = ranking_loss(Tensor(pred_random, requires_grad=True),
                         Tensor(actual))
    assert loss2.item() >= 0.0
