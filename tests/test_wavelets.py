"""Haar wavelet substrate and the WSAE-LSTM extra baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import WSAELSTM, EXTRA_MODELS
from repro.signal import (denoise, haar_dwt, haar_idwt, multiscale_features,
                          soft_threshold, wavedec, waverec)
from repro.tensor import Tensor


class TestHaarTransform:
    def test_constant_signal_has_zero_detail(self):
        approx, detail = haar_dwt(np.full(8, 3.0))
        assert np.allclose(detail, 0.0)
        assert np.allclose(approx, 3.0 * np.sqrt(2.0))

    def test_perfect_reconstruction_even_length(self, rng):
        signal = rng.standard_normal(16)
        approx, detail = haar_dwt(signal)
        assert np.allclose(haar_idwt(approx, detail, 16), signal)

    def test_perfect_reconstruction_odd_length(self, rng):
        signal = rng.standard_normal(9)
        approx, detail = haar_dwt(signal)
        assert np.allclose(haar_idwt(approx, detail, 9), signal)

    def test_energy_preserved(self, rng):
        signal = rng.standard_normal(32)
        approx, detail = haar_dwt(signal)
        assert np.isclose((signal ** 2).sum(),
                          (approx ** 2).sum() + (detail ** 2).sum())

    def test_batched_transform(self, rng):
        signal = rng.standard_normal((3, 4, 10))
        approx, detail = haar_dwt(signal)
        assert approx.shape == (3, 4, 5)
        assert np.allclose(haar_idwt(approx, detail, 10), signal)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            haar_dwt(np.array([1.0]))

    def test_mismatched_bands_rejected(self, rng):
        with pytest.raises(ValueError):
            haar_idwt(rng.standard_normal(4), rng.standard_normal(5))


class TestMultilevel:
    def test_wavedec_structure(self, rng):
        signal = rng.standard_normal(16)
        coefficients = wavedec(signal, 3)
        assert len(coefficients) == 4
        assert coefficients[0].shape == (2,)     # approx at level 3
        assert coefficients[-1].shape == (8,)    # finest detail

    def test_roundtrip(self, rng):
        signal = rng.standard_normal(20)
        coefficients = wavedec(signal, 2)
        assert np.allclose(waverec(coefficients, 20), signal)

    def test_too_many_levels_rejected(self, rng):
        with pytest.raises(ValueError):
            wavedec(rng.standard_normal(8), 10)

    def test_multiscale_pyramid(self, rng):
        signal = rng.standard_normal((2, 12))
        pyramid = multiscale_features(signal, levels=2)
        assert len(pyramid) == 3
        assert pyramid[0].shape == (2, 12)
        assert pyramid[1].shape == (2, 6)
        assert pyramid[2].shape == (2, 3)


class TestDenoising:
    def test_soft_threshold(self):
        out = soft_threshold(np.array([-3.0, -0.5, 0.5, 3.0]), 1.0)
        assert np.allclose(out, [-2.0, 0.0, 0.0, 2.0])

    def test_denoise_reduces_noise_energy(self, rng):
        clean = np.sin(np.linspace(0, 4 * np.pi, 64))
        noisy = clean + rng.normal(0, 0.3, 64)
        cleaned = denoise(noisy, levels=2)
        assert ((cleaned - clean) ** 2).mean() < \
            ((noisy - clean) ** 2).mean()

    def test_denoise_preserves_shape(self, rng):
        signal = rng.standard_normal((4, 3, 20))
        assert denoise(signal, levels=2).shape == (4, 3, 20)

    def test_zero_threshold_scale_is_identity(self, rng):
        signal = rng.standard_normal(16)
        assert np.allclose(denoise(signal, levels=2, threshold_scale=0.0),
                           signal)


class TestWSAELSTM:
    def test_scores_shape(self, rng):
        model = WSAELSTM(num_features=4, bottleneck=4, hidden_size=8,
                         rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((8, 5, 4)))
        assert model(x).shape == (5,)

    def test_gradients_flow(self, rng):
        model = WSAELSTM(num_features=3, bottleneck=4, hidden_size=6,
                         rng=np.random.default_rng(1))
        x = Tensor(rng.standard_normal((6, 4, 3)))
        (model(x) ** 2).sum().backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name

    def test_registered_as_extra(self):
        assert "WSAE-LSTM" in EXTRA_MODELS

    def test_short_windows_handled(self, rng):
        model = WSAELSTM(num_features=2, bottleneck=3, hidden_size=4,
                         rng=np.random.default_rng(2))
        x = Tensor(rng.standard_normal((3, 4, 2)))
        assert model(x).shape == (4,)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=64),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_haar_roundtrip_property(length, seed):
    rng = np.random.default_rng(seed)
    signal = rng.standard_normal(length)
    approx, detail = haar_dwt(signal)
    assert np.allclose(haar_idwt(approx, detail, length), signal)
