"""Public-API hygiene: exports resolve, are documented, and stay stable."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.tensor",
    "repro.nn",
    "repro.optim",
    "repro.graph",
    "repro.data",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.stats",
    "repro.signal",
    "repro.obs",
    "repro.ckpt",
    "repro.serve",
    "repro.dist",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), \
            f"{module_name}.__all__ lists missing symbol {name!r}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(name)
    assert not undocumented, \
        f"{module_name} exports undocumented symbols: {undocumented}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_docstrings_present(module_name):
    module = importlib.import_module(module_name)
    assert (module.__doc__ or "").strip(), f"{module_name} has no docstring"


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_key_paper_symbols_reachable_from_top_level():
    import repro
    for symbol in ["RTGCN", "Trainer", "TrainConfig", "load_market",
                   "RelationMatrix", "RelationTemporalGraph"]:
        assert hasattr(repro, symbol)


class TestServeLegacyRemoval:
    """PR 8 deprecated the hand-construction surface; this release removes
    it: the names are gone from repro.serve and direct construction of the
    underlying classes raises LegacyRemovedError."""

    def test_legacy_names_are_not_exported(self):
        import repro.serve as serve
        for name in serve.LEGACY:
            assert name not in serve.__all__, \
                f"removed legacy name {name!r} back in repro.serve.__all__"
            assert not hasattr(serve, name), \
                f"removed legacy name {name!r} importable from repro.serve"

    def test_legacy_replacements_name_the_blessed_path(self):
        import repro.serve as serve
        for name, replacement in serve.LEGACY.items():
            assert "ServeConfig" in replacement, (name, replacement)

    def test_direct_construction_raises(self, tmp_path):
        from repro.serve import LegacyRemovedError
        from repro.serve.batcher import MicroBatcher
        from repro.serve.registry import ModelRegistry
        from repro.serve.service import RankingService
        with pytest.raises(LegacyRemovedError, match="ModelRegistry"):
            ModelRegistry(tmp_path)
        with pytest.raises(LegacyRemovedError, match="docs/serving.md"):
            MicroBatcher(lambda key: key)
        with pytest.raises(LegacyRemovedError, match="ServeConfig"):
            RankingService(tmp_path)

    def test_sanctioned_construction_still_works(self, tmp_path):
        from repro.serve._deprecation import sanctioned
        from repro.serve.registry import ModelRegistry
        with sanctioned():
            registry = ModelRegistry(tmp_path)
        assert registry.discover() == []

    def test_blessed_build_path_never_raises(self, tmp_path):
        from repro.serve import ServeConfig, build
        handle = build(ServeConfig(checkpoint_dir=str(tmp_path), port=0))
        handle.close()


class TestServeConfigCliRoundTrip:
    """Every ServeConfig field is reachable from repro.cli serve flags and
    survives the args -> ServeConfig -> to_dict round trip."""

    def _parse(self, argv):
        import argparse
        from repro.cli import _add_serve_options, _serve_config_from_args
        parser = argparse.ArgumentParser()
        _add_serve_options(parser)
        return _serve_config_from_args(parser.parse_args(argv))

    def test_cli_covers_every_field(self):
        import argparse
        import dataclasses
        from repro.cli import _add_serve_options
        from repro.serve import ServeConfig
        parser = argparse.ArgumentParser()
        _add_serve_options(parser)
        dests = {action.dest for action in parser._actions}
        missing = [spec.name for spec in dataclasses.fields(ServeConfig)
                   if spec.name not in dests]
        assert not missing, f"ServeConfig fields without a CLI flag: {missing}"

    def test_defaults_round_trip(self, tmp_path):
        from repro.serve import ServeConfig
        config = self._parse(["--checkpoint-dir", str(tmp_path)])
        assert config == ServeConfig(checkpoint_dir=str(tmp_path))
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_non_default_flags_round_trip(self, tmp_path):
        config = self._parse([
            "--checkpoint-dir", str(tmp_path),
            "--mode", "cluster", "--cluster-workers", "3",
            "--max-queue", "64", "--slo-p99-ms", "50",
            "--timeout", "2.5", "--workers", "2",
            "--straggler-poll-ms", "0.5", "--watch-interval-s", "1.0",
            "--store", "exp.sqlite", "--port", "0",
        ])
        assert config.mode == "cluster"
        assert config.cluster_workers == 3
        assert config.max_queue == 64
        assert config.slo_p99_ms == 50.0
        assert config.default_timeout == 2.5
        assert config.batch_workers == 2
        assert config.straggler_poll_ms == 0.5
        assert config.watch_interval_s == 1.0
        assert config.store == "exp.sqlite"
        from repro.serve import ServeConfig
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_legacy_flag_spellings_still_parse(self, tmp_path):
        config = self._parse(["--checkpoint-dir", str(tmp_path),
                              "--serve-mode", "cluster",
                              "--batch-workers", "4",
                              "--default-timeout", "7.0"])
        assert config.mode == "cluster"
        assert config.batch_workers == 4
        assert config.default_timeout == 7.0
