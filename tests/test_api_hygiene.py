"""Public-API hygiene: exports resolve, are documented, and stay stable."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.tensor",
    "repro.nn",
    "repro.optim",
    "repro.graph",
    "repro.data",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.stats",
    "repro.signal",
    "repro.obs",
    "repro.ckpt",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), \
            f"{module_name}.__all__ lists missing symbol {name!r}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(name)
    assert not undocumented, \
        f"{module_name} exports undocumented symbols: {undocumented}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_docstrings_present(module_name):
    module = importlib.import_module(module_name)
    assert (module.__doc__ or "").strip(), f"{module_name} has no docstring"


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_key_paper_symbols_reachable_from_top_level():
    import repro
    for symbol in ["RTGCN", "Trainer", "TrainConfig", "load_market",
                   "RelationMatrix", "RelationTemporalGraph"]:
        assert hasattr(repro, symbol)
