"""Shared fixtures: seeded RNGs and cached mini datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_market


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def nasdaq_mini():
    """One NASDAQ-like mini dataset shared across the whole session."""
    return load_market("nasdaq-mini", seed=7)


@pytest.fixture(scope="session")
def csi_mini():
    """A CSI-like mini dataset (no wiki relations)."""
    return load_market("csi-mini", seed=7)
