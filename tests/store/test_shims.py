"""The legacy bench-harness entry points are deprecation shims now."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2]
                       / "benchmarks"))
import _harness as harness                              # noqa: E402

from repro.eval.speed import SpeedMeasurement           # noqa: E402


class TestShimsWarnButDelegate:
    def test_publish_json_warns_and_writes_same_bytes(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path / "old")
        with pytest.warns(DeprecationWarning, match="publish_result"):
            old_path = harness.publish_json("t", {"x": 1.5})
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path / "new")
        new_path = harness.publish_result("t", {"x": 1.5})
        old = json.loads(old_path.read_text())
        new = json.loads(new_path.read_text())
        # created_at is a timestamp; everything else must match exactly.
        old.pop("created_at"), new.pop("created_at")
        assert old == new

    def test_sanitize_json_warns(self):
        with pytest.warns(DeprecationWarning, match="sanitize_payload"):
            out = harness.sanitize_json({"a": float("nan")})
        assert out == {"a": None}

    def test_speed_entry_warns_and_matches_speed_record(self):
        from repro.store import speed_record
        ours = SpeedMeasurement("m", 2.0, 0.5)
        base = SpeedMeasurement("base", 4.0, 1.0)
        with pytest.warns(DeprecationWarning, match="speed_record"):
            shimmed = harness.speed_entry(ours, baseline=base)
        assert shimmed == speed_record(ours, baseline=base)


class TestBenchStoreTee:
    def test_bench_sink_tees_into_store(self, tmp_path, monkeypatch):
        from repro.store import ExperimentStore
        db = tmp_path / "bench.sqlite"
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path / "results")
        monkeypatch.setattr(harness, "BENCH_STORE", str(db))
        path = harness.publish_result("speed", {"x": 1})
        assert path == tmp_path / "results" / "speed.json"
        store = ExperimentStore(db)
        rows = store.execute(
            "SELECT report_id, kind FROM telemetry")
        assert [(r["report_id"], r["kind"]) for r in rows] == [
            ("bench:speed", "benchmark")]

    def test_no_store_by_default(self, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        monkeypatch.setattr(harness, "BENCH_STORE", "")
        from repro.store import JsonSink
        assert isinstance(harness.bench_sink(), JsonSink)
