"""Typed read side: filters, aggregation parity, renderers."""

import csv
import io
import json
import math

import numpy as np
import pytest

from repro.store import (ExperimentStore, aggregate_runs, metric_names,
                         query_runs, render_rows, store_report)


@pytest.fixture
def store(tmp_path):
    s = ExperimentStore(tmp_path / "exp.sqlite")
    for run_index, mrr in enumerate((0.1, 0.3, 0.2)):
        s.record_run("A@m1", "fpA", run_index,
                     {"MRR": mrr, "IRR-5": mrr * 2},
                     seed=run_index, train_seconds=1.0, test_seconds=0.1)
    s.record_run("B@m2", "fpB", 0, {"MRR": float("nan"), "IRR-5": 0.9},
                 kind="train")
    return s


class TestQueryRuns:
    def test_filters_compose(self, store):
        assert len(query_runs(store)) == 4
        assert len(query_runs(store, experiment="A@m1")) == 3
        assert len(query_runs(store, model="B", market="m2")) == 1
        assert len(query_runs(store, kind="train")) == 1
        assert query_runs(store, experiment="nope") == []

    def test_ordered_by_experiment_then_index(self, store):
        runs = query_runs(store)
        assert [(r.experiment, r.run_index) for r in runs] == [
            ("A@m1", 0), ("A@m1", 1), ("A@m1", 2), ("B@m2", 0)]

    def test_metric_names_headline_first(self, store):
        assert metric_names(store) == ["MRR", "IRR-5"]


class TestAggregate:
    def test_mean_matches_numpy_bitwise(self, store):
        values = np.asarray([0.1, 0.3, 0.2], dtype=float)
        agg = {row.metric: row for row
               in aggregate_runs(store, experiment="A@m1")}
        assert agg["MRR"].mean == float(np.mean(values))
        assert agg["MRR"].std == float(np.std(values))
        assert agg["MRR"].count == 3

    def test_nan_excluded_from_aggregate(self, store):
        agg = {row.metric: row for row
               in aggregate_runs(store, experiment="B@m2")}
        assert agg["MRR"].count == 0
        assert math.isnan(agg["MRR"].mean)
        assert agg["IRR-5"].mean == 0.9

    def test_group_by_market(self, store):
        rows = aggregate_runs(store, metrics=["IRR-5"],
                              group_by=("market",))
        assert [row.group for row in rows] == [("m1",), ("m2",)]


class TestRender:
    def test_table_renders_nan_as_dash(self, store):
        rows = [run.row(["MRR"]) for run in query_runs(store,
                                                       experiment="B@m2")]
        text = render_rows(rows, "table")
        assert text.splitlines()[-1].rstrip().endswith("-")

    def test_json_is_strict(self, store):
        rows = [run.row() for run in query_runs(store)]
        parsed = json.loads(render_rows(rows, "json"))
        assert len(parsed) == 4
        assert parsed[-1]["MRR"] is None            # NaN -> null

    def test_csv_round_trips(self, store):
        rows = [run.row(["MRR", "IRR-5"]) for run in query_runs(store)]
        parsed = list(csv.DictReader(io.StringIO(
            render_rows(rows, "csv"))))
        assert len(parsed) == 4
        assert parsed[0]["experiment"] == "A@m1"

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            render_rows([], "yaml")

    def test_empty_table(self):
        assert render_rows([], "table") == "(no rows)"


class TestStoreReport:
    def test_counts_and_experiments(self, store):
        payload = store_report(store)
        assert payload["tables"]["runs"] == 4
        names = [row["experiment"] for row in payload["experiments"]]
        assert names == ["A@m1", "B@m2"]
