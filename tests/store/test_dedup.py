"""Dedup-by-fingerprint: the store's acceptance criterion.

Running the same sweep twice against one store must execute zero runs
the second time, and the stored metrics must be bitwise-identical to a
serial no-store run of the same protocol.
"""

import numpy as np
import pytest

from repro.core import TrainConfig
from repro.eval import run_experiment, run_named_experiment
from repro.parallel import fork_available, run_experiments_parallel
from repro.store import ExperimentStore, aggregate_runs, query_runs

pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="needs os.fork")


def quick_config(**overrides):
    defaults = dict(window=6, epochs=1, max_train_days=8, seed=0)
    defaults.update(overrides)
    return TrainConfig(**defaults)


class TestSweepDedup:
    def test_second_sweep_executes_zero_runs(self, tmp_path):
        cfg = quick_config()
        db = tmp_path / "exp.sqlite"
        first = run_experiments_parallel(
            ["Rank_LSTM"], ["nasdaq-mini"], config=cfg, n_runs=2,
            workers=2, dataset_seed=7, store=db)
        assert (first.executed, first.restored) == (2, 0)

        second = run_experiments_parallel(
            ["Rank_LSTM"], ["nasdaq-mini"], config=cfg, n_runs=2,
            workers=2, dataset_seed=7, store=db)
        assert (second.executed, second.restored) == (0, 2)
        assert second.telemetry is None       # no pool was ever started

        key = ("Rank_LSTM", "nasdaq-mini")
        assert second.results[key].runs == first.results[key].runs

    def test_stored_aggregate_bitwise_equals_serial_no_store(self,
                                                             tmp_path):
        cfg = quick_config()
        db = tmp_path / "exp.sqlite"
        run_experiments_parallel(["Rank_LSTM"], ["nasdaq-mini"],
                                 config=cfg, n_runs=2, workers=2,
                                 dataset_seed=7, store=db)
        serial = run_experiments_parallel(["Rank_LSTM"], ["nasdaq-mini"],
                                          config=cfg, n_runs=2, workers=1,
                                          dataset_seed=7)
        expected = serial.results[("Rank_LSTM", "nasdaq-mini")]
        agg = {row.metric: row
               for row in aggregate_runs(ExperimentStore(db))}
        for metric in ("MRR", "IRR-1", "IRR-5", "IRR-10"):
            assert agg[metric].mean == expected.mean(metric)

    def test_no_dedup_forces_reexecution(self, tmp_path):
        cfg = quick_config()
        db = tmp_path / "exp.sqlite"
        run_experiments_parallel(["Rank_LSTM"], ["nasdaq-mini"],
                                 config=cfg, n_runs=2, workers=1,
                                 dataset_seed=7, store=db)
        again = run_experiments_parallel(["Rank_LSTM"], ["nasdaq-mini"],
                                         config=cfg, n_runs=2, workers=1,
                                         dataset_seed=7, store=db,
                                         dedup=False)
        assert (again.executed, again.restored) == (2, 0)

    def test_different_config_not_deduped(self, tmp_path):
        db = tmp_path / "exp.sqlite"
        run_experiments_parallel(["Rank_LSTM"], ["nasdaq-mini"],
                                 config=quick_config(), n_runs=1,
                                 workers=1, dataset_seed=7, store=db)
        other = run_experiments_parallel(
            ["Rank_LSTM"], ["nasdaq-mini"], config=quick_config(alpha=0.2),
            n_runs=1, workers=1, dataset_seed=7, store=db)
        assert other.executed == 1            # new fingerprint, new runs
        fingerprints = {run.fingerprint
                        for run in query_runs(ExperimentStore(db))}
        assert len(fingerprints) == 2


class TestProtocolDedup:
    def test_named_experiment_restores_from_store(self, nasdaq_mini,
                                                  tmp_path):
        cfg = quick_config()
        db = tmp_path / "exp.sqlite"
        first = run_named_experiment("Rank_LSTM", nasdaq_mini, cfg,
                                     n_runs=2, workers=1, store=db)
        second = run_named_experiment("Rank_LSTM", nasdaq_mini, cfg,
                                      n_runs=2, workers=1, store=db)
        assert second.runs == first.runs
        # Still exactly two stored rows: the restore executed nothing.
        assert len(query_runs(ExperimentStore(db))) == 2

    def test_store_does_not_change_results(self, nasdaq_mini, tmp_path):
        cfg = quick_config()
        with_store = run_named_experiment(
            "Rank_LSTM", nasdaq_mini, cfg, n_runs=2, workers=1,
            store=tmp_path / "exp.sqlite")
        plain = run_named_experiment("Rank_LSTM", nasdaq_mini, cfg,
                                     n_runs=2, workers=1)
        assert with_store.runs == plain.runs    # metrics bitwise-equal
        # (timings are wall-clock and legitimately differ between runs)

    def test_run_experiment_parallel_store_matches_serial(self, csi_mini,
                                                          tmp_path):
        from repro.core import RTGCN

        def factory(gen):
            return RTGCN(csi_mini.relations, strategy="uniform",
                         relational_filters=4, rng=gen)

        cfg = quick_config()
        db = tmp_path / "exp.sqlite"
        par = run_experiment("dd", factory, csi_mini, cfg, n_runs=2,
                             workers=2, store=db)
        ser = run_experiment("dd", factory, csi_mini, cfg, n_runs=2,
                             workers=1)
        assert par.runs == ser.runs
        # Second parallel invocation restores everything from the store.
        again = run_experiment("dd", factory, csi_mini, cfg, n_runs=2,
                               workers=2, store=db)
        assert again.runs == ser.runs

    def test_trainer_epochs_streamed_through_protocol(self, csi_mini,
                                                      tmp_path):
        """run_experiment attaches a StoreCallback per run, so epoch
        losses land in the store alongside the run metrics."""
        from repro.core import RTGCN

        def factory(gen):
            return RTGCN(csi_mini.relations, strategy="uniform",
                         relational_filters=4, rng=gen)

        db = tmp_path / "exp.sqlite"
        run_experiment("dd", factory, csi_mini, quick_config(epochs=2),
                       n_runs=2, workers=1, store=db)
        store = ExperimentStore(db)
        assert store.counts()["epochs"] == 4          # 2 runs x 2 epochs


class TestGridDedup:
    def test_grid_restores_points(self, nasdaq_mini, tmp_path):
        from repro.core import RTGCN
        from repro.eval.grid import grid_search

        def factory(rng, config):
            return RTGCN(nasdaq_mini.relations, strategy="uniform",
                         relational_filters=4, rng=rng)

        cfg = quick_config()
        db = tmp_path / "exp.sqlite"
        grid = {"window": (4, 6)}
        first = grid_search(factory, nasdaq_mini, grid, base_config=cfg,
                            validation_days=5, store=db)
        second = grid_search(factory, nasdaq_mini, grid, base_config=cfg,
                             validation_days=5, store=db)
        plain = grid_search(factory, nasdaq_mini, grid, base_config=cfg,
                            validation_days=5)
        assert [p.score for p in second.points] == [
            p.score for p in first.points] == [
            p.score for p in plain.points]
        runs = query_runs(ExperimentStore(db), kind="grid")
        assert len(runs) == 2                 # one row per grid point
