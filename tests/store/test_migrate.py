"""Migration: legacy JSON substrates round-trip into the store."""

import json

import pytest

from repro.core import TrainConfig
from repro.eval import run_named_experiment
from repro.store import (ExperimentStore, detect_format, migrate,
                         migrate_file, query_runs)


def quick_config(**overrides):
    defaults = dict(window=6, epochs=1, max_train_days=8, seed=0)
    defaults.update(overrides)
    return TrainConfig(**defaults)


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path / "migrated.sqlite")


class TestDetectFormat:
    def test_journal_v2(self):
        assert detect_format({"version": 2, "key": {}}) == "journal-v2"

    def test_obs_report(self):
        assert detect_format({"schema_version": 1, "run_id": "r",
                              "kind": "parallel"}) == "obs-report"

    def test_bench_json(self):
        assert detect_format({"schema_version": 1,
                              "benchmark": "speed"}) == "bench-json"

    def test_unknown(self):
        assert detect_format({"hello": 1}) is None
        assert detect_format([1, 2]) is None


class TestJournalRoundTrip:
    def test_live_journal_migrates_bitwise(self, nasdaq_mini, tmp_path,
                                           store):
        """A journal written by the live protocol migrates into rows
        whose metrics equal the in-memory result bitwise."""
        journal_dir = tmp_path / "journals"
        result = run_named_experiment("Rank_LSTM", nasdaq_mini,
                                      quick_config(), n_runs=2, workers=1,
                                      resume_dir=journal_dir)
        stats = migrate(store, [journal_dir])
        assert stats.journals == 1 and stats.runs == 2
        runs = query_runs(store, source="journal-v2")
        assert [run.metrics for run in runs] == result.runs
        # The journal carried fingerprint_fields, so the migrated config
        # is queryable too.
        configs = store.execute("SELECT config_json FROM configs")
        assert json.loads(configs[0]["config_json"])["window"] == 6

    def test_migrated_fingerprint_matches_live(self, nasdaq_mini,
                                               tmp_path, store):
        """Migrated journal rows dedup against live store runs: the
        fingerprints are the same digest."""
        journal_dir = tmp_path / "journals"
        cfg = quick_config()
        run_named_experiment("Rank_LSTM", nasdaq_mini, cfg, n_runs=2,
                             workers=1, resume_dir=journal_dir)
        migrate(store, [journal_dir])
        # A store-backed re-run of the same protocol restores the
        # migrated rows instead of executing.
        result = run_named_experiment("Rank_LSTM", nasdaq_mini, cfg,
                                      n_runs=2, workers=1,
                                      store=store.path)
        assert len(query_runs(store)) == 2    # nothing new was written
        assert query_runs(store)[0].metrics == result.runs[0]

    def test_pre_fingerprint_journal_gets_fallback_key(self, tmp_path,
                                                       store):
        path = tmp_path / "experiment-old.json"
        path.write_text(json.dumps({
            "version": 2,
            "key": {"name": "old", "n_runs": 1, "base_seed": 0},
            "runs": [{"run_index": 0, "metrics": {"MRR": 0.5},
                      "train_seconds": 1.0, "test_seconds": 0.1}]}))
        stats = migrate_file(store, path)
        assert stats.runs == 1
        run = query_runs(store)[0]
        assert run.fingerprint.startswith("journal-")

    def test_idempotent(self, tmp_path, store):
        path = tmp_path / "experiment-x.json"
        path.write_text(json.dumps({
            "version": 2,
            "key": {"name": "x", "n_runs": 1, "base_seed": 0,
                    "fingerprint": "abc"},
            "runs": [{"run_index": 0, "metrics": {"MRR": 0.5},
                      "train_seconds": 1.0, "test_seconds": 0.1}]}))
        migrate(store, [path])
        migrate(store, [path])
        assert store.counts()["runs"] == 1
        assert store.counts()["metrics"] == 1


class TestOtherFormats:
    def test_obs_report_and_bench_ingest(self, tmp_path, store):
        from repro.obs import RunReport
        report = RunReport(run_id="pool-1", kind="parallel", config={},
                           epoch_losses=[], phases={}, ops=[],
                           metrics={"utilization_mean": 0.9})
        (tmp_path / "pool-1.json").write_text(
            json.dumps(report.to_dict()))
        (tmp_path / "speed.json").write_text(json.dumps(
            {"schema_version": 1, "benchmark": "speed", "x": 1}))
        (tmp_path / "junk.json").write_text(json.dumps({"n": 1}))
        (tmp_path / "broken.json").write_text("{not json")
        stats = migrate(store, [tmp_path])
        assert stats.reports == 1 and stats.benches == 1
        assert len(stats.skipped) == 2
        assert store.counts()["telemetry"] == 2

    def test_missing_source_reported_not_fatal(self, store, tmp_path):
        stats = migrate(store, [tmp_path / "nope"])
        assert stats.skipped and "does not exist" in stats.skipped[0]
