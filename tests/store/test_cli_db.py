"""``repro.cli db`` verbs and the store flags on sweep/compare/train."""

import json

import pytest

from repro.cli import main
from repro.store import ExperimentStore, query_runs


def seed_store(path):
    store = ExperimentStore(path)
    for run_index, mrr in enumerate((0.1, 0.2)):
        store.record_run("Rank_LSTM@nasdaq-mini", "fp", run_index,
                         {"MRR": mrr, "IRR-5": mrr * 2}, seed=run_index,
                         train_seconds=1.0, test_seconds=0.1)
    return store


class TestDbQuery:
    def test_table_output(self, tmp_path, capsys):
        db = tmp_path / "exp.sqlite"
        seed_store(db)
        assert main(["db", "--db", str(db), "query"]) == 0
        out = capsys.readouterr().out
        assert "Rank_LSTM@nasdaq-mini" in out
        assert "+0.1000" in out

    def test_json_aggregate(self, tmp_path, capsys):
        db = tmp_path / "exp.sqlite"
        seed_store(db)
        assert main(["db", "--db", str(db), "query", "--aggregate",
                     "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        mrr = next(r for r in rows if r["metric"] == "MRR")
        assert mrr["runs"] == 2
        assert mrr["mean"] == pytest.approx(0.15)

    def test_filters(self, tmp_path, capsys):
        db = tmp_path / "exp.sqlite"
        seed_store(db)
        assert main(["db", "--db", str(db), "query", "--market",
                     "nowhere", "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_missing_store_is_a_clear_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no experiment store"):
            main(["db", "--db", str(tmp_path / "nope.sqlite"), "query"])


class TestDbExportReport:
    def test_export_csv_to_file(self, tmp_path, capsys):
        db = tmp_path / "exp.sqlite"
        seed_store(db)
        out_file = tmp_path / "runs.csv"
        assert main(["db", "--db", str(db), "export", "--format", "csv",
                     "--output", str(out_file)]) == 0
        lines = out_file.read_text().splitlines()
        assert lines[0].startswith("experiment,")
        assert len(lines) == 3

    def test_report(self, tmp_path, capsys):
        db = tmp_path / "exp.sqlite"
        seed_store(db)
        assert main(["db", "--db", str(db), "report", "--format",
                     "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tables"]["runs"] == 2


class TestDbMigrate:
    def test_migrate_journal(self, tmp_path, capsys):
        journal = tmp_path / "experiment-x.json"
        journal.write_text(json.dumps({
            "version": 2,
            "key": {"name": "x", "n_runs": 1, "base_seed": 0,
                    "fingerprint": "abc"},
            "runs": [{"run_index": 0, "metrics": {"MRR": 0.5},
                      "train_seconds": 1.0, "test_seconds": 0.1}]}))
        db = tmp_path / "exp.sqlite"
        assert main(["db", "--db", str(db), "migrate",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "journals" in out
        assert len(query_runs(ExperimentStore(db))) == 1


class TestStoreFlags:
    def test_sweep_store_dedups_second_invocation(self, tmp_path,
                                                  capsys):
        db = tmp_path / "exp.sqlite"
        argv = ["sweep", "--markets", "nasdaq-mini", "--models",
                "Rank_LSTM", "--runs", "2", "--workers", "2", "--epochs",
                "1", "--max-train-days", "8", "--store", str(db)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 run(s) executed, 0 restored" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 run(s) executed, 2 restored" in second
        # Identical table: the restored metrics render bitwise-equal.
        table = [line for line in first.splitlines()
                 if line.startswith("nasdaq-mini")]
        assert table == [line for line in second.splitlines()
                         if line.startswith("nasdaq-mini")]

    def test_compare_store_flag(self, tmp_path, capsys):
        db = tmp_path / "exp.sqlite"
        assert main(["compare", "--market", "nasdaq-mini", "--models",
                     "Rank_LSTM", "--runs", "1", "--epochs", "1",
                     "--max-train-days", "8", "--store", str(db)]) == 0
        runs = query_runs(ExperimentStore(db))
        assert [run.experiment for run in runs] == ["Rank_LSTM"]

    def test_train_store_records_epochs_and_checkpoints(self, tmp_path,
                                                        capsys):
        db = tmp_path / "exp.sqlite"
        assert main(["train", "--market", "nasdaq-mini", "--model",
                     "RT-GCN (T)", "--epochs", "1", "--max-train-days",
                     "8", "--store", str(db), "--checkpoint-dir",
                     str(tmp_path / "ckpts")]) == 0
        store = ExperimentStore(db)
        counts = store.counts()
        assert counts["runs"] == 1
        assert counts["epochs"] == 1
        assert counts["checkpoints"] >= 1
        run = query_runs(store)[0]
        assert run.kind == "train"
        assert "MRR" in run.metrics
