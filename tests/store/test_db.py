"""ExperimentStore write path: WAL concurrency, UPSERTs, NaN encoding."""

import math
import os

import pytest

from repro.store import ExperimentStore, StoreError, query_runs


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path / "exp.sqlite")


class TestSchema:
    def test_creates_all_tables(self, store):
        counts = store.counts()
        assert set(counts) == {"configs", "runs", "metrics", "epochs",
                               "checkpoints", "telemetry", "slo"}
        assert all(n == 0 for n in counts.values())

    def test_wal_mode_active(self, store):
        mode = store.execute("PRAGMA journal_mode")[0][0]
        assert mode == "wal"

    def test_schema_version_stamped(self, store):
        from repro.store import STORE_SCHEMA_VERSION
        rows = store.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'")
        assert int(rows[0][0]) == STORE_SCHEMA_VERSION

    def test_future_schema_version_refused(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        first = ExperimentStore(path)
        conn = first.connection
        with first.transaction():
            conn.execute("UPDATE meta SET value = '999'"
                         " WHERE key = 'schema_version'")
        first.close()
        with pytest.raises(StoreError, match="schema version"):
            ExperimentStore(path).connection

    def test_v1_file_migrates_in_place(self, tmp_path):
        from repro.store import STORE_SCHEMA_VERSION
        path = tmp_path / "exp.sqlite"
        first = ExperimentStore(path)
        conn = first.connection
        # rewind to a faithful v1 file: no slo table, version stamp 1
        conn.execute("DROP TABLE slo")
        with first.transaction():
            conn.execute("UPDATE meta SET value = '1'"
                         " WHERE key = 'schema_version'")
        first.close()
        migrated = ExperimentStore(path)
        rows = migrated.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'")
        assert int(rows[0][0]) == STORE_SCHEMA_VERSION
        assert "slo" in migrated.counts()          # table re-created

    def test_v2_file_migrates_histogram_columns(self, tmp_path):
        from repro.store import STORE_SCHEMA_VERSION
        from repro.store.schema import slo_hist_columns
        path = tmp_path / "exp.sqlite"
        first = ExperimentStore(path)
        conn = first.connection
        # rewind to a faithful v2 file: slo table without the v3
        # histogram columns, version stamp 2, one pre-migration row
        conn.execute("DROP TABLE slo")
        conn.execute(
            "CREATE TABLE slo ("
            " id INTEGER PRIMARY KEY, report_id TEXT,"
            " source TEXT NOT NULL DEFAULT 'serve', op TEXT,"
            " target_p99_ms REAL, observed_p50_ms REAL,"
            " observed_p95_ms REAL, observed_p99_ms REAL,"
            " requests INTEGER, errors INTEGER, shed INTEGER,"
            " within INTEGER, created_at TEXT NOT NULL)")
        conn.execute(
            "INSERT INTO slo (source, requests, created_at)"
            " VALUES ('serve', 7, 'then')")
        with first.transaction():
            conn.execute("UPDATE meta SET value = '2'"
                         " WHERE key = 'schema_version'")
        first.close()
        migrated = ExperimentStore(path)
        rows = migrated.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'")
        assert int(rows[0][0]) == STORE_SCHEMA_VERSION
        old = migrated.execute("SELECT * FROM slo")[0]
        assert old["requests"] == 7                # data survived
        for column in slo_hist_columns():
            assert old[column] is None             # unknown, not zero
        # and the migrated file accepts v3 writes with histograms
        snapshot = {"requests": 2, "errors": 0, "shed": 0,
                    "latency_seconds": {"count": 2, "p50": 0.004,
                                        "p95": 0.004, "p99": 0.004},
                    "latency_hist_ms": {"hist_le_5": 2, "hist_inf": 2}}
        row_id = migrated.record_slo(snapshot)
        row = migrated.execute("SELECT * FROM slo WHERE id = ?",
                               [row_id])[0]
        assert row["hist_le_5"] == 2
        assert row["hist_inf"] == 2


class TestRecordSlo:
    def test_snapshot_with_slo_block_round_trips(self, store):
        snapshot = {
            "requests": 120, "errors": 2, "shed": 5,
            "latency_seconds": {"count": 120, "p50": 0.004,
                                "p95": 0.02, "p99": 0.031},
            "slo": {"target_p99_ms": 50.0, "observed_p50_ms": 4.0,
                    "observed_p99_ms": 31.0, "within": True},
        }
        row_id = store.record_slo(snapshot, source="serve-cluster",
                                  report_id="serve-1")
        row = store.execute("SELECT * FROM slo WHERE id = ?",
                            [row_id])[0]
        assert row["target_p99_ms"] == 50.0
        assert row["observed_p99_ms"] == 31.0
        assert row["observed_p95_ms"] == 20.0      # from latency block
        assert row["requests"] == 120
        assert row["shed"] == 5
        assert row["within"] == 1
        assert row["source"] == "serve-cluster"

    def test_snapshot_without_slo_block_records_percentiles(self, store):
        snapshot = {"requests": 3, "errors": 0, "shed": 0,
                    "latency_seconds": {"count": 3, "p50": 0.001,
                                        "p95": 0.002, "p99": 0.003}}
        row_id = store.record_slo(snapshot)
        row = store.execute("SELECT * FROM slo WHERE id = ?",
                            [row_id])[0]
        assert row["target_p99_ms"] is None
        assert row["within"] is None
        assert row["observed_p99_ms"] == pytest.approx(3.0)

    def test_histogram_buckets_round_trip(self, store):
        from repro.store.schema import latency_histogram, slo_hist_columns
        samples = [0.0005, 0.0015, 0.004, 0.009, 0.040, 0.750, 3.0]
        hist = latency_histogram(samples)
        assert hist["hist_le_1"] == 1              # 0.5 ms
        assert hist["hist_le_2"] == 2              # + 1.5 ms
        assert hist["hist_le_5"] == 3              # + 4 ms
        assert hist["hist_le_10"] == 4             # + 9 ms
        assert hist["hist_le_50"] == 5             # + 40 ms
        assert hist["hist_le_1000"] == 6           # + 750 ms
        assert hist["hist_inf"] == 7               # + 3 s overflow
        snapshot = {"requests": 7, "errors": 0, "shed": 0,
                    "latency_seconds": {"count": 7, "p50": 0.009,
                                        "p95": 0.75, "p99": 3.0},
                    "latency_hist_ms": hist}
        row_id = store.record_slo(snapshot, op="scores")
        row = store.execute("SELECT * FROM slo WHERE id = ?",
                            [row_id])[0]
        for column in slo_hist_columns():
            assert row[column] == hist[column], column

    def test_estimate_percentile_interpolates(self):
        from repro.store.schema import estimate_percentile
        # 100 requests, all between 5 and 10 ms, uniformly credited
        hist = {"hist_le_5": 0, "hist_le_10": 100, "hist_inf": 100}
        assert estimate_percentile(hist, 0.5) == pytest.approx(7.5)
        assert estimate_percentile(hist, 0.99) == pytest.approx(9.95)
        # overflow-only mass floors at the last finite bound
        assert estimate_percentile(
            {"hist_inf": 10}, 0.5) == pytest.approx(1000.0)
        assert estimate_percentile({}, 0.9) == 0.0


class TestRecordRun:
    def test_metrics_round_trip_bitwise(self, store):
        metrics = {"MRR": 0.1 + 0.2, "IRR-5": -1.2345678901234567e-5}
        store.record_run("e", "fp", 0, metrics)
        run = query_runs(store, experiment="e")[0]
        assert run.metrics["MRR"] == metrics["MRR"]
        assert run.metrics["IRR-5"] == metrics["IRR-5"]

    def test_nan_metric_round_trips_as_nan(self, store):
        store.record_run("e", "fp", 0, {"MRR": float("nan"),
                                        "IRR-5": 0.5})
        run = query_runs(store, experiment="e")[0]
        assert math.isnan(run.metrics["MRR"])
        assert run.metrics["IRR-5"] == 0.5

    def test_upsert_preserves_row_id_and_epochs(self, store):
        run_id = store.start_run("e", "fp", 0, seed=3)
        store.record_epoch(run_id, 0, 1.5)
        store.record_epoch(run_id, 1, 0.75)
        # Finalizing under the same natural key keeps the id, so the
        # streamed epoch rows stay attached.
        final_id = store.record_run("e", "fp", 0, {"MRR": 0.2},
                                    train_seconds=1.0, test_seconds=0.5)
        assert final_id == run_id
        epochs = store.execute(
            "SELECT epoch, loss FROM epochs WHERE run_id = ?"
            " ORDER BY epoch", [run_id])
        assert [(r["epoch"], r["loss"]) for r in epochs] == [(0, 1.5),
                                                             (1, 0.75)]

    def test_upsert_keeps_timings_when_rerecorded_without(self, store):
        store.record_run("e", "fp", 0, {"MRR": 0.2}, train_seconds=2.5,
                         test_seconds=0.5)
        store.record_run("e", "fp", 0, {"MRR": 0.3})
        run = query_runs(store, experiment="e")[0]
        assert run.train_seconds == 2.5
        assert run.metrics["MRR"] == 0.3

    def test_experiment_name_denormalized(self, store):
        store.record_run("RT-GCN (T)@nasdaq-mini", "fp", 0, {"MRR": 0.1})
        run = query_runs(store)[0]
        assert run.model == "RT-GCN (T)"
        assert run.market == "nasdaq-mini"

    def test_config_registered_once(self, store):
        cfg = {"window": 10, "alpha": 0.1}
        store.record_run("e", "fp", 0, {"MRR": 0.1}, config=cfg,
                         n_runs=2, base_seed=0)
        store.record_run("e", "fp", 1, {"MRR": 0.2}, config=cfg,
                         n_runs=2, base_seed=0)
        assert store.counts()["configs"] == 1

    def test_completed_runs_excludes_metricless_rows(self, store):
        store.start_run("e", "fp", 0)               # opened, never done
        store.record_run("e", "fp", 1, {"MRR": 0.5})
        done = store.completed_runs("fp", "e")
        assert list(done) == [1]


class TestForkSafety:
    def test_connection_reopened_per_pid(self, store):
        parent_conn = store.connection
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:                                   # child
            os.close(read_fd)
            status = 1
            try:
                child_conn = store.connection
                if child_conn is not parent_conn:
                    store.record_run("forked", "fp", 0, {"MRR": 0.1})
                    status = 0
            finally:
                os.write(write_fd, bytes([status]))
                os._exit(status)
        os.close(write_fd)
        assert os.read(read_fd, 1) == b"\x00"
        os.waitpid(pid, 0)
        assert len(query_runs(store, experiment="forked")) == 1

    def test_concurrent_forked_writers_consistent(self, store):
        """N forked workers each stream per-epoch metrics into one WAL
        database; afterwards every row must be present and consistent."""
        workers, epochs = 4, 25
        # Parent provisions the schema before the forks race on it.
        store.connection
        pids = []
        for worker in range(workers):
            pid = os.fork()
            if pid == 0:
                status = 1
                try:
                    run_id = store.start_run("stress", "fp", worker,
                                             seed=worker)
                    for epoch in range(epochs):
                        store.record_epoch(run_id, epoch,
                                           worker + epoch / 1000)
                    store.record_run("stress", "fp", worker,
                                     {"MRR": worker / 10},
                                     train_seconds=1.0, test_seconds=0.1)
                    status = 0
                finally:
                    os._exit(status)
            pids.append(pid)
        for pid in pids:
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0

        runs = query_runs(store, experiment="stress")
        assert [r.run_index for r in runs] == list(range(workers))
        assert [r.metrics["MRR"] for r in runs] == [
            w / 10 for w in range(workers)]
        epoch_counts = store.execute(
            "SELECT runs.run_index AS i, COUNT(*) AS n FROM epochs"
            " JOIN runs ON runs.id = epochs.run_id"
            " GROUP BY runs.run_index ORDER BY i")
        assert [(r["i"], r["n"]) for r in epoch_counts] == [
            (w, epochs) for w in range(workers)]
        # WAL integrity after the concurrent writes
        assert store.execute("PRAGMA integrity_check")[0][0] == "ok"


class TestReports:
    def test_report_upsert_replaces_by_id(self, store):
        store.record_report({"run_id": "r1", "kind": "parallel",
                             "metrics": {"a": 1}})
        store.record_report({"run_id": "r1", "kind": "parallel",
                             "metrics": {"a": 2}})
        assert store.counts()["telemetry"] == 1

    def test_non_dict_report_rejected(self, store):
        with pytest.raises(StoreError, match="dict"):
            store.record_report([1, 2, 3])
