"""ResultSink protocol: StoreSink, JsonSink, TeeSink, bench records."""

import json
import math

import pytest

from repro.store import (ExperimentStore, JsonSink, RunRecord, StoreSink,
                         TeeSink, bench_envelope, query_runs,
                         sanitize_payload, speed_record)


def record(**overrides):
    base = dict(experiment="e@m", run_index=0, metrics={"MRR": 0.25},
                train_seconds=1.5, test_seconds=0.5, fingerprint="fp",
                seed=7, config={"window": 6}, n_runs=2, base_seed=0)
    base.update(overrides)
    return RunRecord(**base)


class TestStoreSink:
    def test_write_run_lands_in_store(self, tmp_path):
        sink = StoreSink(tmp_path / "exp.sqlite")
        sink.write_run(record())
        run = query_runs(sink.store)[0]
        assert run.metrics["MRR"] == 0.25
        assert run.fingerprint == "fp"

    def test_run_without_fingerprint_rejected(self, tmp_path):
        sink = StoreSink(tmp_path / "exp.sqlite")
        with pytest.raises(ValueError, match="fingerprint"):
            sink.write_run(record(fingerprint=None))

    def test_write_bench_is_replace_not_append(self, tmp_path):
        sink = StoreSink(tmp_path / "exp.sqlite")
        sink.write_bench("speed", {"benchmark": "speed", "x": 1})
        sink.write_bench("speed", {"benchmark": "speed", "x": 2})
        assert sink.store.counts()["telemetry"] == 1


class TestJsonSink:
    def test_write_run_creates_resumable_journal(self, tmp_path):
        JsonSink(tmp_path).write_run(record())
        payload = json.loads(
            (tmp_path / "experiment-e_m.json").read_text())
        assert payload["key"]["fingerprint"] == "fp"
        assert payload["fingerprint_fields"]["config"] == {"window": 6}
        assert payload["runs"][0]["metrics"]["MRR"] == 0.25

    def test_write_bench_strict_json(self, tmp_path):
        path = JsonSink(tmp_path).write_bench(
            "b", {"benchmark": "b", "bad": float("nan")})
        assert path == tmp_path / "b.json"
        assert json.loads(path.read_text())["bad"] is None

    def test_write_report_schema_v1(self, tmp_path):
        from repro.obs import RunReport
        report = RunReport(run_id="r-1", kind="parallel", config={},
                           epoch_losses=[], phases={}, ops=[],
                           metrics={"a": 1.0})
        path = JsonSink(tmp_path).write_report(report.to_dict())
        assert json.loads(path.read_text())["run_id"] == "r-1"


class TestTeeSink:
    def test_fans_out_to_all_sinks(self, tmp_path):
        store_sink = StoreSink(tmp_path / "exp.sqlite")
        tee = TeeSink(JsonSink(tmp_path / "json"), store_sink)
        tee.write_run(record())
        assert (tmp_path / "json" / "experiment-e_m.json").exists()
        assert len(query_runs(store_sink.store)) == 1

    def test_none_sinks_dropped(self, tmp_path):
        tee = TeeSink(None, JsonSink(tmp_path))
        assert len(tee.sinks) == 1


class TestSanitize:
    def test_nan_inf_to_none(self):
        out = sanitize_payload({"a": float("nan"),
                                "b": [float("inf"), 1.0]})
        assert out == {"a": None, "b": [None, 1.0]}

    def test_numpy_scalars_coerced(self):
        import numpy as np
        out = sanitize_payload({"f": np.float64(2.5), "i": np.int64(3)})
        assert out == {"f": 2.5, "i": 3}
        assert isinstance(out["i"], int)


class TestSpeedRecord:
    def _measurement(self, name, train, test):
        from repro.eval.speed import SpeedMeasurement
        return SpeedMeasurement(name, train, test)

    def test_healthy_timing(self):
        entry = speed_record(self._measurement("m", 2.0, 0.5),
                             baseline=self._measurement("base", 4.0, 1.0))
        assert entry["train_speedup"] == 2.0
        assert not entry["degenerate_timing"]

    def test_degenerate_timing_flagged(self):
        entry = speed_record(self._measurement("m", 0.0, 0.5),
                             baseline=self._measurement("base", 4.0, 1.0))
        assert entry["degenerate_timing"]
        assert math.isnan(entry["train_speedup"])


class TestBenchEnvelope:
    def test_envelope_fields(self):
        from repro.obs import SCHEMA_VERSION
        env = bench_envelope("b", {"x": 1}, settings={"epochs": 2})
        assert env["schema_version"] == SCHEMA_VERSION
        assert env["benchmark"] == "b"
        assert env["settings"] == {"epochs": 2}
        assert env["x"] == 1
