"""StoreCallback: write-through Trainer.fit integration."""

import numpy as np
import pytest

from repro.core import RTGCN, TrainConfig, Trainer
from repro.store import ExperimentStore, StoreCallback, query_runs


def quick_config(**overrides):
    defaults = dict(window=6, epochs=2, max_train_days=8, seed=0)
    defaults.update(overrides)
    return TrainConfig(**defaults)


def make_trainer(dataset, config):
    model = RTGCN(dataset.relations, strategy="uniform",
                  relational_filters=4, rng=np.random.default_rng(0))
    return Trainer(model, dataset, config)


@pytest.fixture
def store(tmp_path):
    return ExperimentStore(tmp_path / "exp.sqlite")


class TestStoreCallback:
    def test_epochs_streamed_during_fit(self, nasdaq_mini, store):
        config = quick_config()
        callback = StoreCallback(store, "cb@nasdaq-mini", seed=0)
        make_trainer(nasdaq_mini, config).run(callbacks=[callback])
        epochs = store.execute(
            "SELECT epoch, loss FROM epochs WHERE run_id = ?"
            " ORDER BY epoch", [callback.run_id])
        assert [row["epoch"] for row in epochs] == [0, 1]
        assert all(np.isfinite(row["loss"]) for row in epochs)

    def test_finalize_attaches_metrics_to_streamed_run(self, nasdaq_mini,
                                                       store):
        config = quick_config()
        callback = StoreCallback(store, "cb@nasdaq-mini", seed=0)
        make_trainer(nasdaq_mini, config).run(callbacks=[callback])
        run_id = callback.finalize({"MRR": 0.5}, train_seconds=1.0,
                                   test_seconds=0.2)
        assert run_id == callback.run_id      # same natural key, same row
        run = query_runs(store, experiment="cb@nasdaq-mini")[0]
        assert run.metrics["MRR"] == 0.5
        assert store.counts()["epochs"] == 2

    def test_config_derived_from_trainer_when_absent(self, nasdaq_mini,
                                                     store):
        config = quick_config(epochs=1)
        callback = StoreCallback(store, "cb@nasdaq-mini", seed=0)
        make_trainer(nasdaq_mini, config).run(callbacks=[callback])
        stored = store.execute("SELECT config_json FROM configs")
        import json
        assert json.loads(stored[0]["config_json"])["window"] == 6

    def test_checkpoint_recorder_wiring(self, nasdaq_mini, store,
                                        tmp_path):
        from repro.ckpt import CheckpointCallback
        config = quick_config(epochs=1)
        store_cb = StoreCallback(store, "cb@nasdaq-mini", seed=0)
        ckpt_cb = CheckpointCallback(tmp_path / "ckpts",
                                     recorder=store_cb.record_checkpoint)
        make_trainer(nasdaq_mini, config).run(
            callbacks=[store_cb, ckpt_cb])
        rows = store.execute(
            "SELECT run_id, path, bytes, write_seconds FROM checkpoints")
        assert len(rows) >= 1                 # epoch end + fit end saves
        assert all(row["run_id"] == store_cb.run_id for row in rows)
        assert all(row["bytes"] > 0 for row in rows)

    def test_fallback_fingerprint_stable(self):
        from repro.store import fallback_fingerprint
        a = fallback_fingerprint("e", {"window": 6}, 0)
        b = fallback_fingerprint("e", {"window": 6}, 0)
        c = fallback_fingerprint("e", {"window": 7}, 0)
        assert a == b != c
