"""Per-endpoint SLO rows: the ``op`` column through store and report.

``record_slo(op=...)`` writes one row per endpoint next to the
aggregate (op NULL) window; ``store_report`` groups the slo table per
(source, op) and ``db report`` prints the section.
"""

import json

import pytest

from repro.cli import main
from repro.store import ExperimentStore
from repro.store.query import store_report


def snapshot(requests, p99_s, target_ms=None):
    snap = {"requests": requests, "errors": 0, "shed": 0,
            "latency_seconds": {"p50": p99_s / 2, "p95": p99_s * 0.9,
                                "p99": p99_s}}
    if target_ms is not None:
        snap["slo"] = {"target_p99_ms": target_ms,
                       "observed_p99_ms": p99_s * 1000.0,
                       "within": p99_s * 1000.0 <= target_ms}
    return snap


class TestRecordSloOp:
    def test_op_column_round_trips(self, tmp_path):
        with ExperimentStore(tmp_path / "exp.sqlite") as store:
            store.record_slo(snapshot(10, 0.02, target_ms=50.0),
                             source="serve-threaded")
            store.record_slo(snapshot(6, 0.01, target_ms=50.0),
                             source="serve-threaded", op="scores")
            store.record_slo(snapshot(4, 0.03, target_ms=50.0),
                             source="serve-threaded", op="ingest")
            rows = store.execute(
                "SELECT op, requests FROM slo ORDER BY op")
            assert [(r["op"], r["requests"]) for r in rows] == [
                (None, 10), ("ingest", 4), ("scores", 6)]

    def test_bare_percentiles_scale_to_ms(self, tmp_path):
        with ExperimentStore(tmp_path / "exp.sqlite") as store:
            store.record_slo(snapshot(3, 0.25), source="stream-client",
                             op="ingest")
            row = store.execute("SELECT * FROM slo")[0]
            assert row["observed_p99_ms"] == pytest.approx(250.0)
            assert row["target_p99_ms"] is None
            assert row["within"] is None


class TestStoreReportSloSection:
    def test_groups_per_source_and_op(self, tmp_path):
        with ExperimentStore(tmp_path / "exp.sqlite") as store:
            for _ in range(2):
                store.record_slo(snapshot(5, 0.02, target_ms=100.0),
                                 source="serve-threaded", op="ingest")
            store.record_slo(snapshot(9, 0.01, target_ms=100.0),
                             source="serve-threaded", op="scores")
            store.record_slo(snapshot(7, 0.5), source="stream-client",
                             op="ingest")
            payload = store_report(store)
        slo = payload["slo"]
        assert [(r["source"], r["op"]) for r in slo] == [
            ("serve-threaded", "ingest"), ("serve-threaded", "scores"),
            ("stream-client", "ingest")]
        ingest = slo[0]
        assert ingest["windows"] == 2
        assert ingest["requests"] == 10
        assert ingest["all_within"] == 1

    def test_all_within_is_min_over_windows(self, tmp_path):
        with ExperimentStore(tmp_path / "exp.sqlite") as store:
            store.record_slo(snapshot(1, 0.01, target_ms=100.0),
                             source="serve", op="rank")
            store.record_slo(snapshot(1, 0.5, target_ms=100.0),
                             source="serve", op="rank")
            payload = store_report(store)
        assert payload["slo"][0]["all_within"] == 0

    def test_empty_slo_table_gives_empty_section(self, tmp_path):
        with ExperimentStore(tmp_path / "exp.sqlite") as store:
            payload = store_report(store)
        assert payload["slo"] == []


class TestDbReportCLI:
    def test_report_prints_slo_section(self, tmp_path, capsys):
        db = tmp_path / "exp.sqlite"
        with ExperimentStore(db) as store:
            store.record_slo(snapshot(12, 0.02, target_ms=200.0),
                             source="serve-threaded", op="ingest")
        assert main(["db", "--db", str(db), "report"]) == 0
        out = capsys.readouterr().out
        assert "slo (per source" in out
        assert "ingest" in out
        assert "serve-threaded" in out

    def test_report_json_includes_slo(self, tmp_path, capsys):
        db = tmp_path / "exp.sqlite"
        with ExperimentStore(db) as store:
            store.record_slo(snapshot(3, 0.01), source="stream-client",
                             op="ingest")
        assert main(["db", "--db", str(db), "report", "--format",
                     "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["slo"][0]["source"] == "stream-client"
        assert payload["slo"][0]["op"] == "ingest"

    def test_report_without_slo_rows_omits_section(self, tmp_path,
                                                   capsys):
        db = tmp_path / "exp.sqlite"
        with ExperimentStore(db) as store:
            store.counts()               # force schema creation on disk
        assert main(["db", "--db", str(db), "report"]) == 0
        assert "slo (per source" not in capsys.readouterr().out
