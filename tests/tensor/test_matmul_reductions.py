"""Matrix products, reductions and shape ops with gradient checks."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck


def t(data, grad=True):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=grad)


class TestMatmul:
    def test_2d_value(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4, 5))
        assert np.allclose((t(a) @ t(b)).data, a @ b)

    def test_2d_grad(self, rng):
        a, b = t(rng.standard_normal((3, 4))), t(rng.standard_normal((4, 5)))
        gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_batched_grad(self, rng):
        a = t(rng.standard_normal((2, 3, 4)))
        b = t(rng.standard_normal((2, 4, 5)))
        gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_broadcast_batched_grad(self, rng):
        a = t(rng.standard_normal((3, 4)))        # shared across batch
        b = t(rng.standard_normal((5, 4, 2)))
        gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_matrix_vector_grad(self, rng):
        a = t(rng.standard_normal((3, 4)))
        v = t(rng.standard_normal(4))
        gradcheck(lambda: (a @ v).sum(), [a, v])

    def test_vector_matrix_grad(self, rng):
        v = t(rng.standard_normal(3))
        a = t(rng.standard_normal((3, 4)))
        gradcheck(lambda: (v @ a).sum(), [v, a])

    def test_batched_matrix_vector_grad(self, rng):
        a = t(rng.standard_normal((5, 3, 4)))
        v = t(rng.standard_normal(4))
        gradcheck(lambda: (a @ v).sum(), [a, v])


class TestReductions:
    def test_sum_all(self, rng):
        a = t(rng.standard_normal((3, 4)))
        gradcheck(lambda: a.sum(), [a])

    def test_sum_axis_keepdims(self, rng):
        a = t(rng.standard_normal((3, 4)))
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        gradcheck(lambda: a.sum(axis=1, keepdims=True).sum(), [a])

    def test_sum_multiple_axes(self, rng):
        a = t(rng.standard_normal((2, 3, 4)))
        gradcheck(lambda: (a.sum(axis=(0, 2)) ** 2).sum(), [a])

    def test_mean_matches_numpy(self, rng):
        data = rng.standard_normal((3, 5))
        assert np.allclose(t(data).mean(axis=0).data, data.mean(axis=0))

    def test_mean_grad(self, rng):
        a = t(rng.standard_normal((3, 5)))
        gradcheck(lambda: (a.mean(axis=1) ** 2).sum(), [a])

    def test_var_matches_numpy(self, rng):
        data = rng.standard_normal((4, 6))
        assert np.allclose(t(data).var(axis=1).data, data.var(axis=1))

    def test_std_grad(self, rng):
        a = t(rng.standard_normal((4, 6)))
        gradcheck(lambda: a.std(axis=1, eps=1e-8).sum(), [a])

    def test_max_value_and_grad(self, rng):
        a = t(rng.standard_normal((3, 5)))
        assert np.allclose(a.max(axis=1).data, a.data.max(axis=1))
        gradcheck(lambda: a.max(axis=1).sum(), [a])

    def test_min_matches_numpy(self, rng):
        a = t(rng.standard_normal((3, 5)))
        assert np.allclose(a.min(axis=0).data, a.data.min(axis=0))

    def test_max_tie_splits_gradient(self):
        a = t([[2.0, 2.0, 1.0]])
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestShapeOps:
    def test_reshape_grad(self, rng):
        a = t(rng.standard_normal((3, 4)))
        gradcheck(lambda: (a.reshape(2, 6) ** 2).sum(), [a])

    def test_transpose_roundtrip(self, rng):
        data = rng.standard_normal((2, 3, 4))
        out = t(data).transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        assert np.allclose(out.data, data.transpose(2, 0, 1))

    def test_transpose_grad(self, rng):
        a = t(rng.standard_normal((2, 3, 4)))
        gradcheck(lambda: (a.transpose(1, 2, 0) ** 2).sum(), [a])

    def test_default_transpose_reverses(self, rng):
        a = t(rng.standard_normal((2, 3)))
        assert a.T.shape == (3, 2)

    def test_swapaxes_grad(self, rng):
        a = t(rng.standard_normal((2, 3, 4)))
        gradcheck(lambda: (a.swapaxes(0, 2) ** 2).sum(), [a])

    def test_squeeze_unsqueeze(self, rng):
        a = t(rng.standard_normal((3, 1, 4)))
        assert a.squeeze(1).shape == (3, 4)
        assert a.unsqueeze(0).shape == (1, 3, 1, 4)
        gradcheck(lambda: a.squeeze(1).sum(), [a])
        gradcheck(lambda: a.unsqueeze(-1).sum(), [a])

    def test_getitem_slice_grad(self, rng):
        a = t(rng.standard_normal((4, 5)))
        gradcheck(lambda: (a[1:3, ::2] ** 2).sum(), [a])

    def test_getitem_fancy_index_grad(self, rng):
        a = t(rng.standard_normal((6, 3)))
        idx = np.array([0, 2, 2, 5])
        gradcheck(lambda: (a[idx] ** 2).sum(), [a])

    def test_getitem_repeated_index_accumulates(self):
        a = t([1.0, 2.0, 3.0])
        a[np.array([1, 1])].sum().backward()
        assert np.allclose(a.grad, [0.0, 2.0, 0.0])

    def test_pad_value_and_grad(self, rng):
        a = t(rng.standard_normal((2, 3)))
        out = a.pad(((1, 0), (0, 2)), value=7.0)
        assert out.shape == (3, 5)
        assert np.allclose(out.data[0], 7.0)
        gradcheck(lambda: (a.pad(((1, 1), (2, 0))) ** 2).sum(), [a])

    def test_broadcast_to_grad(self, rng):
        a = t(rng.standard_normal((1, 4)))
        gradcheck(lambda: (a.broadcast_to((3, 4)) ** 2).sum(), [a])


class TestConstructors:
    def test_zeros_ones_eye_full(self):
        assert np.allclose(Tensor.zeros(2, 3).data, 0.0)
        assert np.allclose(Tensor.ones(2).data, 1.0)
        assert np.allclose(Tensor.eye(3).data, np.eye(3))
        assert np.allclose(Tensor.full((2, 2), 5.0).data, 5.0)

    def test_randn_seeded(self):
        g1 = np.random.default_rng(0)
        g2 = np.random.default_rng(0)
        assert np.allclose(Tensor.randn(3, rng=g1).data,
                           Tensor.randn(3, rng=g2).data)

    def test_item_and_len(self):
        assert Tensor([42.0]).item() == 42.0
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_item_rejects_vector(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()
