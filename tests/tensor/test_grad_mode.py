"""Gradient-mode switches and graph-recording behavior."""

import numpy as np
import pytest

from repro.tensor import (Tensor, enable_grad, is_grad_enabled, no_grad,
                          set_grad_enabled)


class TestNoGrad:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_blocks_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad

    def test_no_grad_restores_on_exit(self):
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nested_enable_grad(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                b = a * 2
            c = a * 3
        assert b.requires_grad
        assert not c.requires_grad

    def test_set_grad_enabled(self):
        set_grad_enabled(False)
        try:
            a = Tensor([1.0], requires_grad=True)
            assert not (a * 2).requires_grad
        finally:
            set_grad_enabled(True)


class TestGraphLifecycle:
    def test_interior_grads_freed_after_backward(self):
        a = Tensor([2.0], requires_grad=True)
        mid = a * 3
        out = (mid * mid).sum()
        out.backward()
        assert mid.grad is None       # interior freed
        assert a.grad is not None     # leaf kept

    def test_graph_freed_after_backward(self):
        a = Tensor([2.0], requires_grad=True)
        out = (a * 3).sum()
        out.backward()
        assert out._parents == ()
        assert out._backward is None

    def test_constant_inputs_get_no_grad(self):
        a = Tensor([1.0])
        b = Tensor([2.0], requires_grad=True)
        out = (a * b).sum()
        out.backward()
        assert a.grad is None
        assert np.allclose(b.grad, [1.0])

    def test_diamond_graph_gradients(self):
        # a feeds two paths that rejoin: grads must accumulate once each.
        a = Tensor([3.0], requires_grad=True)
        left = a * 2
        right = a * 5
        out = (left + right).sum()
        out.backward()
        assert np.allclose(a.grad, [7.0])

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.sum().backward()
        assert np.allclose(a.grad, [1.0])
