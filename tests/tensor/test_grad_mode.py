"""Gradient-mode switches and graph-recording behavior."""

import threading

import numpy as np
import pytest

from repro.tensor import (Tensor, enable_grad, inference_mode,
                          is_grad_enabled, no_grad, set_grad_enabled,
                          tape_node_count)


class TestNoGrad:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_blocks_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad

    def test_no_grad_restores_on_exit(self):
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nested_enable_grad(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                b = a * 2
            c = a * 3
        assert b.requires_grad
        assert not c.requires_grad

    def test_set_grad_enabled(self):
        set_grad_enabled(False)
        try:
            a = Tensor([1.0], requires_grad=True)
            assert not (a * 2).requires_grad
        finally:
            set_grad_enabled(True)


class TestGraphLifecycle:
    def test_interior_grads_freed_after_backward(self):
        a = Tensor([2.0], requires_grad=True)
        mid = a * 3
        out = (mid * mid).sum()
        out.backward()
        assert mid.grad is None       # interior freed
        assert a.grad is not None     # leaf kept

    def test_graph_freed_after_backward(self):
        a = Tensor([2.0], requires_grad=True)
        out = (a * 3).sum()
        out.backward()
        assert out._parents == ()
        assert out._backward is None

    def test_constant_inputs_get_no_grad(self):
        a = Tensor([1.0])
        b = Tensor([2.0], requires_grad=True)
        out = (a * b).sum()
        out.backward()
        assert a.grad is None
        assert np.allclose(b.grad, [1.0])

    def test_diamond_graph_gradients(self):
        # a feeds two paths that rejoin: grads must accumulate once each.
        a = Tensor([3.0], requires_grad=True)
        left = a * 2
        right = a * 5
        out = (left + right).sum()
        out.backward()
        assert np.allclose(a.grad, [7.0])

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.sum().backward()
        assert np.allclose(a.grad, [1.0])


class TestTapeAllocation:
    """Inference mode must allocate *zero* tape nodes — the property the
    serving path relies on to keep memory flat across requests."""

    def _forward(self, a, b):
        return ((a @ b).relu().sum() * 2.0) + 1.0

    def test_grad_mode_allocates_tape_nodes(self):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        b = Tensor(np.ones((4, 4)), requires_grad=True)
        before = tape_node_count()
        self._forward(a, b)
        assert tape_node_count() > before

    def test_inference_mode_allocates_none(self):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        b = Tensor(np.ones((4, 4)), requires_grad=True)
        with inference_mode():
            before = tape_node_count()
            out = self._forward(a, b)
        assert tape_node_count() == before
        assert not out.requires_grad

    def test_repeated_inference_forwards_no_tape_growth(self):
        # The serving regression: a long stream of eval forwards must not
        # grow the tape at all, request after request.
        a = Tensor(np.ones((8, 8)), requires_grad=True)
        b = Tensor(np.ones((8, 8)), requires_grad=True)
        with inference_mode():
            before = tape_node_count()
            for _ in range(100):
                self._forward(a, b)
            assert tape_node_count() == before

    def test_module_graph_builders_counted(self):
        # concat/stack/where/maximum/einsum build tape nodes outside
        # _make_child; the counter must see those too.
        from repro.tensor import concat, einsum, maximum, stack, where

        a = Tensor(np.ones((3, 3)), requires_grad=True)
        b = Tensor(np.ones((3, 3)), requires_grad=True)
        before = tape_node_count()
        concat([a, b], axis=0)
        stack([a, b], axis=0)
        where(a.data > 0, a, b)
        maximum(a, b)
        einsum("ij,jk->ik", a, b)
        assert tape_node_count() == before + 5
        with inference_mode():
            mid = tape_node_count()
            concat([a, b], axis=0)
            stack([a, b], axis=0)
            where(a.data > 0, a, b)
            maximum(a, b)
            einsum("ij,jk->ik", a, b)
            assert tape_node_count() == mid


class TestThreadIsolation:
    """Grad mode is per-thread: a serving worker's inference_mode must
    never disable gradients in a concurrently training thread."""

    def test_no_grad_does_not_leak_across_threads(self):
        entered = threading.Event()
        release = threading.Event()
        states = {}

        def worker():
            with no_grad():
                entered.set()
                release.wait(timeout=5.0)
                states["worker"] = is_grad_enabled()

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=5.0)
        # main thread, while the worker sits inside no_grad:
        states["main"] = is_grad_enabled()
        a = Tensor([1.0], requires_grad=True)
        states["main_records"] = (a * 2).requires_grad
        release.set()
        thread.join(timeout=5.0)
        assert states == {"worker": False, "main": True,
                          "main_records": True}

    def test_tape_counter_is_per_thread(self):
        results = {}

        def worker():
            start = tape_node_count()
            a = Tensor([1.0], requires_grad=True)
            (a * 2) + 1.0
            results["grew"] = tape_node_count() - start

        before = tape_node_count()
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=5.0)
        assert results["grew"] == 2
        assert tape_node_count() == before  # main thread unaffected
