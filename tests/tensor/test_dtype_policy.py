"""Dtype policy: storage/accumulation selection and constructor coercion."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.tensor import (Tensor, accum_dtype, default_dtype, dtype_policy,
                          get_dtype_policy, gradcheck, set_default_dtype)
from repro.tensor.gradcheck import _defaults_for


class TestPolicySwitch:
    def test_default_is_float64(self):
        policy = get_dtype_policy()
        assert policy.name == "float64"
        assert default_dtype() == np.float64
        assert accum_dtype() == np.float64

    def test_context_manager_restores(self):
        with dtype_policy("float32"):
            assert default_dtype() == np.float32
            with dtype_policy("mixed"):
                assert default_dtype() == np.float32
                assert accum_dtype() == np.float64
            assert get_dtype_policy().name == "float32"
        assert get_dtype_policy().name == "float64"

    def test_set_returns_previous(self):
        previous = set_default_dtype("float32")
        try:
            assert previous.name == "float64"
            assert get_dtype_policy().name == "float32"
        finally:
            set_default_dtype(previous)

    def test_accepts_numpy_dtype(self):
        with dtype_policy(np.float32):
            assert default_dtype() == np.float32

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            set_default_dtype("float16")


class TestConstructorCoercion:
    """Regression for the silent-coercion bug: ``Tensor.__init__`` used to
    force every input to the module default dtype, discarding both explicit
    ``dtype=`` arguments and the dtype of float32 inputs."""

    def test_float32_input_preserved(self):
        out = Tensor(np.ones(3, dtype=np.float32))
        assert out.data.dtype == np.float32

    def test_explicit_dtype_wins_over_policy(self):
        with dtype_policy("float32"):
            out = Tensor(np.ones(3), dtype=np.float64)
        assert out.data.dtype == np.float64

    def test_explicit_dtype_wins_over_input(self):
        out = Tensor(np.ones(3, dtype=np.float64), dtype=np.float32)
        assert out.data.dtype == np.float32

    def test_float64_narrowed_under_float32_policy(self):
        with dtype_policy("float32"):
            out = Tensor(np.ones(3, dtype=np.float64))
        assert out.data.dtype == np.float32

    def test_float32_never_widened_under_float64_policy(self):
        out = Tensor(np.ones(3, dtype=np.float32))
        assert out.data.dtype == np.float32

    def test_int_input_cast_to_storage(self):
        assert Tensor([1, 2, 3]).data.dtype == np.float64
        with dtype_policy("float32"):
            assert Tensor([1, 2, 3]).data.dtype == np.float32

    def test_python_list_follows_policy(self):
        with dtype_policy("float32"):
            assert Tensor([1.0, 2.0]).data.dtype == np.float32


class TestFactoriesAndRNG:
    def test_zeros_ones_follow_policy(self):
        with dtype_policy("float32"):
            assert Tensor.zeros(2, 2).data.dtype == np.float32
            assert Tensor.ones(2, 2).data.dtype == np.float32

    def test_factory_explicit_dtype_wins(self):
        with dtype_policy("float32"):
            assert Tensor.zeros(2, dtype=np.float64).data.dtype \
                == np.float64

    def test_randn_same_stream_across_policies(self):
        """Policies must not fork the RNG stream: the float32 draw is the
        float64 draw cast down, so seeds stay comparable across policies."""
        a = Tensor.randn(16, rng=np.random.default_rng(3))
        with dtype_policy("float32"):
            b = Tensor.randn(16, rng=np.random.default_rng(3))
        assert b.data.dtype == np.float32
        np.testing.assert_array_equal(b.data, a.data.astype(np.float32))


class TestMixedAccumulation:
    def test_sum_accumulates_in_float64(self):
        # 2**24 + 1 is not representable in fp32: fp32 accumulation of
        # [2**24, 1, 1] stays at 2**24, fp64 accumulation reaches 2**24 + 2
        # (which fp32 does represent).
        values = np.array([2.0 ** 24, 1.0, 1.0], dtype=np.float32)
        with dtype_policy("mixed"):
            total = Tensor(values).sum()
        assert total.data.dtype == np.float32
        assert float(total.data) == np.float32(2.0 ** 24 + 2.0)
        with dtype_policy("float32"):
            naive = Tensor(values).sum()
        assert float(naive.data) == np.float32(2.0 ** 24)


class TestModuleAstype:
    def test_parameters_cast_in_place(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        params = list(layer.parameters())
        layer.astype(np.float32)
        assert all(p.data.dtype == np.float32 for p in layer.parameters())
        # Parameter identity survives (optimizers stay bound).
        assert params == list(layer.parameters())

    def test_float_tensor_buffers_cast(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        layer.scale = Tensor(np.ones(2))
        layer.astype(np.float32)
        assert layer.scale.data.dtype == np.float32


class TestGradcheckDtypeDefaults:
    def test_defaults_per_dtype(self):
        assert _defaults_for(np.float64) == (1e-6, 1e-5, 1e-4)
        assert _defaults_for(np.float32) == (1e-3, 1e-2, 1e-2)

    def test_gradcheck_passes_under_float32(self, rng):
        with dtype_policy("float32"):
            a = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
            b = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
            assert a.data.dtype == np.float32
            assert gradcheck(lambda: (a @ b).tanh().sum(), [a, b])

    def test_gradcheck_passes_under_float64(self, rng):
        a = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        assert gradcheck(lambda: a.sigmoid().sum(), [a])

    def test_explicit_tolerances_still_win(self, rng):
        # Central differences of a cubic carry an O(eps^2) truncation term
        # (exactly eps^2 here), so a huge explicit eps with tiny explicit
        # tolerances must fail where the dtype defaults would pass.
        a = Tensor(rng.standard_normal(4) + 2.0, requires_grad=True)
        with pytest.raises(AssertionError):
            gradcheck(lambda: (a ** 3).sum(), [a], eps=1e-1, atol=1e-8,
                      rtol=1e-10)
