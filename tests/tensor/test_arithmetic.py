"""Elementwise arithmetic, broadcasting and their gradients."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck


def t(data, grad=True):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=grad)


class TestForwardValues:
    def test_add(self):
        assert np.allclose((t([1, 2]) + t([3, 4])).data, [4, 6])

    def test_add_scalar(self):
        assert np.allclose((t([1, 2]) + 10).data, [11, 12])

    def test_radd(self):
        assert np.allclose((10 + t([1, 2])).data, [11, 12])

    def test_sub(self):
        assert np.allclose((t([5, 7]) - t([1, 2])).data, [4, 5])

    def test_rsub(self):
        assert np.allclose((1 - t([5.0])).data, [-4.0])

    def test_mul(self):
        assert np.allclose((t([2, 3]) * t([4, 5])).data, [8, 15])

    def test_div(self):
        assert np.allclose((t([8, 9]) / t([2, 3])).data, [4, 3])

    def test_rdiv(self):
        assert np.allclose((12 / t([3, 4])).data, [4, 3])

    def test_neg(self):
        assert np.allclose((-t([1, -2])).data, [-1, 2])

    def test_pow(self):
        assert np.allclose((t([2, 3]) ** 2).data, [4, 9])

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            t([2.0]) ** t([2.0])

    def test_abs(self):
        assert np.allclose(t([-2, 3]).abs().data, [2, 3])


class TestGradients:
    def test_add_grad(self, rng):
        a, b = t(rng.standard_normal(4)), t(rng.standard_normal(4))
        gradcheck(lambda: (a + b).sum(), [a, b])

    def test_mul_grad(self, rng):
        a, b = t(rng.standard_normal(4)), t(rng.standard_normal(4))
        gradcheck(lambda: (a * b).sum(), [a, b])

    def test_div_grad(self, rng):
        a = t(rng.standard_normal(4))
        b = t(rng.uniform(0.5, 2.0, 4))
        gradcheck(lambda: (a / b).sum(), [a, b])

    def test_pow_grad(self, rng):
        a = t(rng.uniform(0.5, 2.0, 5))
        gradcheck(lambda: (a ** 3).sum(), [a])

    def test_chain_rule_through_composite(self, rng):
        a = t(rng.standard_normal((3, 3)))
        gradcheck(lambda: ((a * 2 + 1) ** 2 / 3).sum(), [a])

    def test_same_tensor_used_twice_accumulates(self):
        a = t([3.0])
        out = a * a
        out.backward()
        assert np.allclose(a.grad, [6.0])

    def test_grad_accumulates_across_backwards(self):
        a = t([2.0])
        (a * 3).backward()
        (a * 4).backward()
        assert np.allclose(a.grad, [7.0])

    def test_zero_grad_resets(self):
        a = t([2.0])
        (a * 3).backward()
        a.zero_grad()
        assert a.grad is None


class TestBroadcasting:
    def test_row_plus_column(self, rng):
        a = t(rng.standard_normal((3, 1)))
        b = t(rng.standard_normal((1, 4)))
        out = a + b
        assert out.shape == (3, 4)
        gradcheck(lambda: (a + b).sum(), [a, b])

    def test_scalar_broadcast_grad(self, rng):
        a = t(rng.standard_normal((2, 3)))
        s = t(np.array(2.0))
        gradcheck(lambda: (a * s).sum(), [a, s])

    def test_leading_axis_broadcast(self, rng):
        a = t(rng.standard_normal((2, 3, 4)))
        b = t(rng.standard_normal((3, 4)))
        gradcheck(lambda: (a * b).sum(), [a, b])

    def test_broadcast_grad_shape_matches_input(self):
        a = t(np.ones((3, 1)))
        b = t(np.ones((1, 4)))
        (a * b).sum().backward()
        assert a.grad.shape == (3, 1)
        assert b.grad.shape == (1, 4)
        assert np.allclose(a.grad, 4.0)
        assert np.allclose(b.grad, 3.0)


class TestBackwardValidation:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_seed(self):
        a = t([1.0, 2.0])
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_seed(self):
        a = t([1.0, 2.0])
        (a * 2).backward(np.array([1.0, 0.5]))
        assert np.allclose(a.grad, [2.0, 1.0])

    def test_retain_graph_allows_second_backward(self):
        a = t([2.0])
        out = (a * a).sum()
        out.backward(retain_graph=True)
        out.backward()
        assert np.allclose(a.grad, [8.0])

    def test_no_grad_through_detach(self):
        a = t([2.0])
        b = a.detach() * 3
        assert not b.requires_grad
