"""Tests for the CSR sparse primitives (`repro.tensor.sparse` / `repro.sparse`).

Covers the ISSUE-2 tentpole requirements: spmm gradcheck for *both* the
dense-input and edge-value gradients, CSR conversion round-trips, the
empty-row / isolated-node edge case, and backend parity between the SciPy
kernel and the pure-NumPy fallback.
"""

import numpy as np
import pytest

import repro.tensor.sparse as sparse_module
from repro.sparse import CSRMatrix
from repro.tensor import Tensor, gradcheck
from repro.tensor.sparse import (DEFAULT_DENSITY_THRESHOLD, SparsePattern,
                                 SparseTensor, resolve_graph_mode, sddmm,
                                 sparse_gather, sparse_segment_sum, spmm)


@pytest.fixture
def graph(rng):
    """A small rectangular sparse matrix with an empty row and column."""
    dense = (rng.random((7, 6)) < 0.4) * rng.standard_normal((7, 6))
    dense[2] = 0.0        # isolated node on the row side
    dense[:, 3] = 0.0     # isolated node on the column side
    return dense


@pytest.fixture(params=["scipy", "numpy"])
def kernel_backend(request, monkeypatch):
    """Run the test under both kernel backends."""
    if request.param == "numpy":
        monkeypatch.setattr(sparse_module, "HAVE_SCIPY", False)
    return request.param


# ----------------------------------------------------------------------
# structure
# ----------------------------------------------------------------------
class TestSparsePattern:
    def test_from_mask_roundtrip(self, graph):
        pattern = SparsePattern.from_mask(graph != 0)
        dense = np.zeros_like(graph)
        dense[pattern.rows, pattern.indices] = graph[pattern.rows,
                                                     pattern.indices]
        assert np.array_equal(dense, graph)
        assert pattern.nnz == int((graph != 0).sum())
        assert pattern.density == pattern.nnz / graph.size

    def test_transpose_structure(self, graph):
        pattern = SparsePattern.from_mask(graph != 0)
        t_indptr, t_indices, perm = pattern.transpose_data()
        values = graph[pattern.rows, pattern.indices]
        transposed = SparsePattern(t_indptr, t_indices,
                                   (graph.shape[1], graph.shape[0]))
        dense_t = np.zeros(graph.T.shape)
        dense_t[transposed.rows, transposed.indices] = values[perm]
        assert np.array_equal(dense_t, graph.T)

    def test_validates_indptr(self):
        with pytest.raises(ValueError, match="indptr"):
            SparsePattern(np.array([0, 2]), np.array([0, 1]), (2, 2))
        with pytest.raises(ValueError, match="non-decreasing"):
            SparsePattern(np.array([0, 2, 1]), np.array([0, 1]), (2, 2))
        with pytest.raises(ValueError, match="out of range"):
            SparsePattern(np.array([0, 1, 2]), np.array([0, 5]), (2, 2))


class TestCSRMatrix:
    def test_dense_roundtrip(self, graph):
        csr = CSRMatrix.from_dense(graph)
        assert np.allclose(csr.to_dense(), graph)
        assert np.allclose(csr.T.to_dense(), graph.T)

    def test_matmul_matches_dense(self, graph, rng, kernel_backend):
        csr = CSRMatrix.from_dense(graph)
        x = rng.standard_normal((graph.shape[1], 4))
        assert np.allclose(csr @ x, graph @ x)
        vec = rng.standard_normal(graph.shape[1])
        assert np.allclose(csr @ vec, graph @ vec)

    def test_from_coo_sums_duplicates(self):
        csr = CSRMatrix.from_coo(np.array([0, 0, 2, 1]),
                                 np.array([1, 1, 0, 3]),
                                 np.array([1.0, 2.0, 3.0, 4.0]), (3, 4))
        expected = np.zeros((3, 4))
        expected[0, 1] = 3.0
        expected[2, 0] = 3.0
        expected[1, 3] = 4.0
        assert np.allclose(csr.to_dense(), expected)
        assert csr.nnz == 3

    def test_threshold_drops_small_entries(self):
        dense = np.array([[0.5, 1e-9], [0.0, -2.0]])
        csr = CSRMatrix.from_dense(dense, threshold=1e-6)
        assert csr.nnz == 2

    def test_bridges_to_autograd_layer(self, graph):
        sparse = CSRMatrix.from_dense(graph).to_sparse_tensor()
        assert isinstance(sparse, SparseTensor)
        assert np.allclose(sparse.to_dense().data, graph)


# ----------------------------------------------------------------------
# spmm
# ----------------------------------------------------------------------
class TestSpmm:
    def test_matches_dense_matmul(self, graph, rng, kernel_backend):
        sparse = SparseTensor.from_dense(graph)
        x = rng.standard_normal((graph.shape[1], 4))
        assert np.allclose(spmm(sparse, Tensor(x)).data, graph @ x)

    def test_batched_dense_operand(self, graph, rng, kernel_backend):
        sparse = SparseTensor.from_dense(graph)
        x = rng.standard_normal((3, graph.shape[1], 4))
        assert np.allclose(spmm(sparse, Tensor(x)).data, graph @ x)

    def test_batched_edge_values(self, graph, rng, kernel_backend):
        pattern = SparsePattern.from_mask(graph != 0)
        values = rng.standard_normal((3, pattern.nnz))
        x = rng.standard_normal((3, graph.shape[1], 4))
        out = spmm(SparseTensor(pattern, Tensor(values)), Tensor(x)).data
        for t in range(3):
            dense = np.zeros_like(graph)
            dense[pattern.rows, pattern.indices] = values[t]
            assert np.allclose(out[t], dense @ x[t])

    def test_gradcheck_dense_and_value_grads(self, graph, rng):
        pattern = SparsePattern.from_mask(graph != 0)
        values = Tensor(rng.standard_normal(pattern.nnz), requires_grad=True)
        x = Tensor(rng.standard_normal((graph.shape[1], 3)),
                   requires_grad=True)
        assert gradcheck(
            lambda: (spmm(SparseTensor(pattern, values), x) ** 2.0).sum(),
            [values, x])

    def test_gradcheck_batched_values(self, graph, rng):
        pattern = SparsePattern.from_mask(graph != 0)
        values = Tensor(rng.standard_normal((2, pattern.nnz)),
                        requires_grad=True)
        x = Tensor(rng.standard_normal((graph.shape[1], 3)),
                   requires_grad=True)
        assert gradcheck(
            lambda: (spmm(SparseTensor(pattern, values), x) ** 2.0).sum(),
            [values, x])

    def test_value_grad_matches_dense_reference(self, graph, rng):
        pattern = SparsePattern.from_mask(graph != 0)
        x = rng.standard_normal((graph.shape[1], 4))
        values = Tensor(graph[pattern.rows, pattern.indices],
                        requires_grad=True)
        (spmm(SparseTensor(pattern, values), Tensor(x)) ** 2.0).sum() \
            .backward()
        dense = Tensor(graph, requires_grad=True)
        ((dense @ Tensor(x)) ** 2.0).sum().backward()
        assert np.allclose(values.grad,
                           dense.grad[pattern.rows, pattern.indices])

    def test_empty_rows_and_isolated_nodes(self, graph, rng, kernel_backend):
        # Row 2 stores nothing: its output must be exactly zero and its
        # gradient contribution must vanish, not corrupt neighbors.
        sparse = SparseTensor.from_dense(graph)
        x = Tensor(rng.standard_normal((graph.shape[1], 3)),
                   requires_grad=True)
        out = spmm(sparse, x)
        assert np.all(out.data[2] == 0.0)
        out.sum().backward()
        # Column 3 is stored nowhere, so nothing propagates into it.
        assert np.all(x.grad[3] == 0.0)

    def test_fully_empty_matrix(self, kernel_backend):
        pattern = SparsePattern.from_mask(np.zeros((3, 3), dtype=bool))
        sparse = SparseTensor(pattern, Tensor(np.zeros(0)))
        out = spmm(sparse, Tensor(np.ones((3, 2))))
        assert np.all(out.data == 0.0)

    def test_shape_mismatch_raises(self, graph):
        sparse = SparseTensor.from_dense(graph)
        with pytest.raises(ValueError, match="cannot multiply"):
            spmm(sparse, Tensor(np.ones((graph.shape[1] + 1, 2))))
        with pytest.raises(TypeError, match="SparseTensor"):
            spmm(Tensor(graph), Tensor(np.ones((graph.shape[1], 2))))


# ----------------------------------------------------------------------
# sddmm / segment ops
# ----------------------------------------------------------------------
class TestSampledAndSegmentOps:
    def test_sddmm_matches_dense(self, graph, rng):
        pattern = SparsePattern.from_mask(graph != 0)
        a = rng.standard_normal((graph.shape[0], 5))
        b = rng.standard_normal((graph.shape[1], 5))
        out = sddmm(pattern, Tensor(a), Tensor(b)).data
        assert np.allclose(out, (a @ b.T)[pattern.rows, pattern.indices])

    def test_sddmm_gradcheck(self, graph, rng):
        pattern = SparsePattern.from_mask(graph != 0)
        a = Tensor(rng.standard_normal((graph.shape[0], 3)),
                   requires_grad=True)
        b = Tensor(rng.standard_normal((graph.shape[1], 3)),
                   requires_grad=True)
        assert gradcheck(lambda: (sddmm(pattern, a, b) ** 2.0).sum(), [a, b])

    def test_sddmm_batched(self, graph, rng):
        pattern = SparsePattern.from_mask(graph != 0)
        a = rng.standard_normal((4, graph.shape[0], 3))
        b = rng.standard_normal((4, graph.shape[1], 3))
        out = sddmm(pattern, Tensor(a), Tensor(b)).data
        for t in range(4):
            expected = (a[t] @ b[t].T)[pattern.rows, pattern.indices]
            assert np.allclose(out[t], expected)

    def test_segment_sum_matches_dense_row_sum(self, graph, rng):
        pattern = SparsePattern.from_mask(graph != 0)
        values = graph[pattern.rows, pattern.indices]
        out = sparse_segment_sum(Tensor(values), pattern).data
        assert np.allclose(out, graph.sum(axis=1))
        assert out[2] == 0.0        # empty row sums to zero

    def test_segment_sum_gradcheck(self, graph, rng):
        pattern = SparsePattern.from_mask(graph != 0)
        values = Tensor(rng.standard_normal((2, pattern.nnz)),
                        requires_grad=True)
        assert gradcheck(
            lambda: (sparse_segment_sum(values * values, pattern)
                     ** 2.0).sum(), [values])

    def test_gather_row_and_col_gradcheck(self, graph, rng):
        pattern = SparsePattern.from_mask(graph != 0)
        row_vals = Tensor(rng.standard_normal(graph.shape[0]),
                          requires_grad=True)
        col_vals = Tensor(rng.standard_normal(graph.shape[1]),
                          requires_grad=True)
        assert gradcheck(
            lambda: (sparse_gather(row_vals, pattern, axis="row")
                     * sparse_gather(col_vals, pattern, axis="col")).sum(),
            [row_vals, col_vals])

    def test_gather_matches_dense_broadcast(self, graph, rng):
        pattern = SparsePattern.from_mask(graph != 0)
        vec = rng.standard_normal(graph.shape[0])
        gathered = sparse_gather(Tensor(vec), pattern, axis="row").data
        assert np.allclose(gathered, vec[pattern.rows])


# ----------------------------------------------------------------------
# SparseTensor + dispatch rule
# ----------------------------------------------------------------------
class TestSparseTensor:
    def test_dense_roundtrip_with_gradient(self, graph):
        dense = Tensor(graph, requires_grad=True)
        sparse = SparseTensor.from_dense(dense)
        restored = sparse.to_dense()
        assert np.allclose(restored.data, graph)
        restored.sum().backward()
        assert np.allclose(dense.grad, (graph != 0).astype(float))

    def test_batched_values_share_pattern(self, graph, rng):
        stacked = np.stack([graph, 2.0 * graph])
        sparse = SparseTensor.from_dense(stacked)
        assert sparse.shape == stacked.shape
        assert np.allclose(sparse.to_dense().data, stacked)

    def test_value_count_validated(self, graph):
        pattern = SparsePattern.from_mask(graph != 0)
        with pytest.raises(ValueError, match="nnz"):
            SparseTensor(pattern, Tensor(np.zeros(pattern.nnz + 1)))

    def test_resolve_graph_mode(self):
        assert resolve_graph_mode("dense", 0.0) == "dense"
        assert resolve_graph_mode("sparse", 1.0) == "sparse"
        below = DEFAULT_DENSITY_THRESHOLD / 2
        above = DEFAULT_DENSITY_THRESHOLD * 2
        assert resolve_graph_mode("auto", below) == "sparse"
        assert resolve_graph_mode("auto", above) == "dense"
        assert resolve_graph_mode("auto", above, threshold=1.0) == "sparse"
        with pytest.raises(ValueError, match="graph mode"):
            resolve_graph_mode("blocked", 0.5)
