"""Buffer arena: recycling semantics, counters, and numerics neutrality."""

import numpy as np
import pytest

from repro.nn import LSTMCell, Linear
from repro.optim import Adam
from repro.tensor import (Tensor, arena, arena_enabled, arena_stats,
                          clear_arena, enable_arena, reset_arena)
from repro.tensor.arena import materialize, release


@pytest.fixture(autouse=True)
def _clean_arena():
    clear_arena()
    yield
    enable_arena(False)
    clear_arena()


class TestArenaPrimitives:
    def test_disabled_materialize_is_plain_copy(self):
        grad = np.ones(4)
        out = materialize(grad, np.float64)
        assert out is not grad
        np.testing.assert_array_equal(out, grad)
        assert arena_stats()["hits"] == arena_stats()["misses"] == 0

    def test_miss_then_hit_roundtrip(self):
        with arena():
            a = materialize(np.ones(8), np.float64)
            release(a)
            b = materialize(np.full(8, 2.0), np.float64)
            assert b is a                     # recycled, not reallocated
            np.testing.assert_array_equal(b, np.full(8, 2.0))
        stats = arena_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["bytes_reused"] == 64

    def test_shape_and_dtype_keyed(self):
        with arena():
            a = materialize(np.ones(8), np.float64)
            release(a)
            b = materialize(np.ones(8, dtype=np.float32), np.float32)
            c = materialize(np.ones(4), np.float64)
            assert b is not a and c is not a
        assert arena_stats()["misses"] == 3

    def test_foreign_and_double_release_ignored(self):
        with arena():
            foreign = np.zeros(4)
            release(foreign)                  # never materialized
            a = materialize(np.ones(4), np.float64)
            release(a)
            release(a)                        # double release
            assert arena_stats()["released"] == 1
            assert arena_stats()["pooled"] == 1

    def test_disable_drops_buffers_keeps_counters(self):
        with arena():
            release(materialize(np.ones(4), np.float64))
        assert not arena_enabled()
        stats = arena_stats()
        assert stats["pooled"] == 0           # buffers returned on disable
        assert stats["misses"] == 1           # counters survive for reports
        reset_arena()
        assert arena_stats()["misses"] == 0


class TestArenaBackward:
    def _step(self, layer, optimizer, x):
        optimizer.zero_grad()
        loss = (layer(x) ** 2).sum()
        loss.backward()
        optimizer.step()
        return float(loss.data)

    def test_training_is_bitwise_identical(self, rng):
        """The arena only recycles memory; results never change."""
        def run(use_arena):
            layer = Linear(6, 4, rng=np.random.default_rng(1))
            optimizer = Adam(layer.parameters(), lr=1e-2)
            x = Tensor(np.random.default_rng(2).standard_normal((5, 6)))
            with arena(use_arena):
                return [self._step(layer, optimizer, x) for _ in range(5)]

        np.testing.assert_array_equal(run(True), run(False))

    def test_steady_state_allocates_nothing(self, rng):
        """After the warmup pass every backward buffer comes from the pool:
        the miss counter (the arena's allocation count) stays flat."""
        cell = LSTMCell(4, 8, rng=np.random.default_rng(0))
        optimizer = Adam(cell.parameters(), lr=1e-3)
        x = Tensor(np.random.default_rng(3).standard_normal((2, 4)))

        def step():
            optimizer.zero_grad()
            h, c = cell(x, cell.initial_state(2))
            h, c = cell(x, (h, c))
            (h * c).sum().backward()
            optimizer.step()

        with arena():
            step()                            # warmup: misses allowed
            reset_arena()
            for _ in range(3):
                step()
            stats = arena_stats()
        assert stats["misses"] == 0, stats
        assert stats["hits"] > 0

    def test_interior_grads_freed_to_pool(self, rng):
        a = Tensor(rng.standard_normal(6), requires_grad=True)
        with arena():
            ((a * a).tanh().sum()).backward()
            stats = arena_stats()
        # interior node grads were released back to the pool; the leaf
        # grad stays live until zero_grad
        assert stats["released"] > 0
        assert a.grad is not None

    def test_zero_grad_releases_leaf_buffer(self, rng):
        a = Tensor(rng.standard_normal(6), requires_grad=True)
        with arena():
            (a * a).sum().backward()
            before = arena_stats()["released"]
            a.zero_grad()
            assert arena_stats()["released"] == before + 1
            assert a.grad is None
