"""Functional ops: activations, softmax, conv1d, losses, dropout, einsum."""

import numpy as np
import pytest

from repro.tensor import (Tensor, binary_cross_entropy, concat, conv1d,
                          cross_entropy, dropout, einsum, gradcheck,
                          huber_loss, l1_loss, linear, log_softmax, maximum,
                          mse_loss, one_hot, softmax, stack, where)


def t(data, grad=True):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=grad)


class TestActivations:
    def test_relu_values(self):
        assert np.allclose(t([-1.0, 0.0, 2.0]).relu().data, [0, 0, 2])

    def test_relu_grad(self, rng):
        a = t(rng.standard_normal(10) + 0.01)
        gradcheck(lambda: a.relu().sum(), [a])

    def test_sigmoid_range_and_grad(self, rng):
        a = t(rng.standard_normal(8))
        out = a.sigmoid()
        assert np.all((out.data > 0) & (out.data < 1))
        gradcheck(lambda: a.sigmoid().sum(), [a])

    def test_sigmoid_extreme_inputs_stable(self):
        out = t([1000.0, -1000.0]).sigmoid()
        assert np.allclose(out.data, [1.0, 0.0])
        assert np.isfinite(out.data).all()

    def test_tanh_grad(self, rng):
        a = t(rng.standard_normal(8))
        gradcheck(lambda: a.tanh().sum(), [a])

    def test_leaky_relu_negative_slope(self):
        out = t([-2.0, 2.0]).leaky_relu(0.1)
        assert np.allclose(out.data, [-0.2, 2.0])

    def test_leaky_relu_grad(self, rng):
        a = t(rng.standard_normal(8) + 0.05)
        gradcheck(lambda: a.leaky_relu(0.2).sum(), [a])

    def test_elu_grad(self, rng):
        a = t(rng.standard_normal(8))
        gradcheck(lambda: a.elu().sum(), [a])

    def test_exp_log_sqrt_grads(self, rng):
        a = t(rng.uniform(0.5, 2.0, 6))
        gradcheck(lambda: a.exp().sum(), [a])
        gradcheck(lambda: a.log().sum(), [a])
        gradcheck(lambda: a.sqrt().sum(), [a])

    def test_clip_values_and_grad(self, rng):
        a = t([-2.0, 0.5, 3.0])
        assert np.allclose(a.clip(-1, 1).data, [-1, 0.5, 1])
        b = t(rng.uniform(-2, 2, 8))
        gradcheck(lambda: b.clip(-1.0, 1.0).sum(), [b])


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = softmax(t(rng.standard_normal((4, 6))), axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        assert np.allclose(softmax(t(x)).data, softmax(t(x + 100)).data)

    def test_grad(self, rng):
        a = t(rng.standard_normal((3, 4)))
        gradcheck(lambda: (softmax(a, axis=-1) ** 2).sum(), [a])

    def test_log_softmax_consistency(self, rng):
        x = t(rng.standard_normal((2, 5)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_log_softmax_grad(self, rng):
        a = t(rng.standard_normal((2, 5)))
        gradcheck(lambda: log_softmax(a).sum(), [a])


class TestConv1d:
    def test_identity_kernel(self):
        x = t(np.arange(12, dtype=np.float64).reshape(1, 1, 12))
        w = t(np.ones((1, 1, 1)))
        assert np.allclose(conv1d(x, w).data, x.data)

    def test_known_moving_sum(self):
        x = t(np.array([[[1.0, 2.0, 3.0, 4.0]]]))
        w = t(np.ones((1, 1, 2)))
        assert np.allclose(conv1d(x, w).data, [[[3.0, 5.0, 7.0]]])

    def test_output_length_with_stride(self, rng):
        x = t(rng.standard_normal((2, 3, 10)))
        w = t(rng.standard_normal((4, 3, 3)))
        assert conv1d(x, w, stride=2).shape == (2, 4, 4)

    def test_causal_padding_preserves_length(self, rng):
        x = t(rng.standard_normal((1, 2, 8)))
        w = t(rng.standard_normal((2, 2, 3)))
        out = conv1d(x, w, padding=(2, 0))
        assert out.shape == (1, 2, 8)

    def test_dilation_receptive_field(self, rng):
        x = t(rng.standard_normal((1, 1, 10)))
        w = t(rng.standard_normal((1, 1, 3)))
        out = conv1d(x, w, dilation=3)
        assert out.shape == (1, 1, 4)   # span = (3-1)*3+1 = 7

    def test_grad_full(self, rng):
        x = t(rng.standard_normal((2, 3, 9)))
        w = t(rng.standard_normal((4, 3, 3)))
        b = t(rng.standard_normal(4))
        gradcheck(lambda: conv1d(x, w, b, stride=2, padding=1,
                                 dilation=2).sum(), [x, w, b])

    def test_channel_mismatch_raises(self, rng):
        x = t(rng.standard_normal((1, 2, 8)))
        w = t(rng.standard_normal((1, 3, 3)))
        with pytest.raises(ValueError, match="channel mismatch"):
            conv1d(x, w)

    def test_too_short_input_raises(self, rng):
        x = t(rng.standard_normal((1, 1, 2)))
        w = t(rng.standard_normal((1, 1, 5)))
        with pytest.raises(ValueError, match="shorter than"):
            conv1d(x, w)

    def test_wrong_rank_raises(self, rng):
        with pytest.raises(ValueError):
            conv1d(t(rng.standard_normal((3, 4))),
                   t(rng.standard_normal((1, 1, 2))))


class TestGraphCombinators:
    def test_concat_values(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((2, 2))
        out = concat([t(a), t(b)], axis=1)
        assert np.allclose(out.data, np.concatenate([a, b], axis=1))

    def test_concat_grad(self, rng):
        a, b = t(rng.standard_normal((2, 3))), t(rng.standard_normal((2, 2)))
        gradcheck(lambda: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack_grad(self, rng):
        a, b = t(rng.standard_normal(4)), t(rng.standard_normal(4))
        gradcheck(lambda: (stack([a, b], axis=1) ** 2).sum(), [a, b])

    def test_where_selects(self):
        out = where(np.array([True, False]), t([1.0, 2.0]), t([9.0, 9.0]))
        assert np.allclose(out.data, [1.0, 9.0])

    def test_where_grad(self, rng):
        a, b = t(rng.standard_normal(6)), t(rng.standard_normal(6))
        cond = rng.uniform(size=6) > 0.5
        gradcheck(lambda: where(cond, a * 2, b * 3).sum(), [a, b])

    def test_maximum_grad_no_ties(self, rng):
        a = t(rng.standard_normal(6))
        b = t(rng.standard_normal(6))
        gradcheck(lambda: maximum(a, b).sum(), [a, b])

    def test_einsum_contraction(self, rng):
        a = t(rng.standard_normal((3, 4)))
        b = t(rng.standard_normal((4, 5)))
        out = einsum("ij,jk->ik", a, b)
        assert np.allclose(out.data, a.data @ b.data)
        gradcheck(lambda: einsum("ij,jk->ik", a, b).sum(), [a, b])

    def test_einsum_relation_weighting(self, rng):
        # The exact pattern used by the weight strategy.
        rel = t(rng.uniform(size=(5, 5, 3)), grad=False)
        w = t(rng.standard_normal(3))
        gradcheck(lambda: (einsum("ijk,k->ij", rel, w) ** 2).sum(), [w])

    def test_einsum_requires_explicit_output(self, rng):
        with pytest.raises(ValueError):
            einsum("ij,jk", t(rng.standard_normal((2, 2))),
                   t(rng.standard_normal((2, 2))))


class TestLossesAndUtilities:
    def test_mse_zero_for_equal(self, rng):
        x = rng.standard_normal(5)
        assert mse_loss(t(x), t(x)).item() == 0.0

    def test_mse_grad(self, rng):
        a = t(rng.standard_normal(5))
        y = Tensor(rng.standard_normal(5))
        gradcheck(lambda: mse_loss(a, y), [a])

    def test_l1_loss_value(self):
        assert np.isclose(l1_loss(t([1.0, -1.0]), t([0.0, 0.0])).item(), 1.0)

    def test_huber_quadratic_inside_delta(self):
        loss = huber_loss(t([0.5]), t([0.0]), delta=1.0)
        assert np.isclose(loss.item(), 0.125)

    def test_huber_linear_outside_delta(self):
        loss = huber_loss(t([3.0]), t([0.0]), delta=1.0)
        assert np.isclose(loss.item(), 2.5)

    def test_huber_grad(self, rng):
        a = t(rng.standard_normal(8) * 2)
        y = Tensor(rng.standard_normal(8))
        gradcheck(lambda: huber_loss(a, y, delta=0.7), [a])

    def test_bce_matches_reference(self, rng):
        logits = rng.standard_normal(10)
        targets = (rng.uniform(size=10) > 0.5).astype(float)
        ours = binary_cross_entropy(t(logits), Tensor(targets)).item()
        p = 1 / (1 + np.exp(-logits))
        ref = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert np.isclose(ours, ref)

    def test_bce_grad(self, rng):
        logits = t(rng.standard_normal(6))
        targets = Tensor((rng.uniform(size=6) > 0.5).astype(float))
        gradcheck(lambda: binary_cross_entropy(logits, targets), [logits])

    def test_cross_entropy_perfect_prediction(self):
        logits = t([[100.0, 0.0, 0.0]])
        assert cross_entropy(logits, np.array([0])).item() < 1e-6

    def test_cross_entropy_grad(self, rng):
        logits = t(rng.standard_normal((4, 3)))
        labels = rng.integers(0, 3, size=4)
        gradcheck(lambda: cross_entropy(logits, labels), [logits])

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        assert np.allclose(out.data, [[1, 0, 0], [0, 0, 1]])

    def test_linear_matches_manual(self, rng):
        x = t(rng.standard_normal((3, 4)))
        w = t(rng.standard_normal((2, 4)))
        b = t(rng.standard_normal(2))
        assert np.allclose(linear(x, w, b).data, x.data @ w.data.T + b.data)


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = t(rng.standard_normal(100))
        assert np.allclose(dropout(x, 0.5, training=False).data, x.data)

    def test_zero_p_identity(self, rng):
        x = t(rng.standard_normal(100))
        assert np.allclose(dropout(x, 0.0).data, x.data)

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones(200_00))
        out = dropout(x, 0.3, rng=np.random.default_rng(0))
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            dropout(t(rng.standard_normal(4)), 1.0)
