"""Fused tape nodes: gradcheck and fused-vs-composed equivalence.

Every fused kernel is gated twice, per the equivalence contract of
``repro.tensor.fused``:

- **gradcheck** under both dtype policies (analytic VJPs vs central
  differences, tolerances chosen per dtype);
- **equivalence** against the composed-op path: bitwise under ``float64``
  (identical expression order), tolerance-bounded under ``float32``.
"""

import numpy as np
import pytest

from repro.nn import GRUCell, GraphConv, LSTMCell, Linear
from repro.tensor import (Tensor, SparsePattern, SparseTensor,
                          affine_act_fused, dtype_policy, fused_kernels,
                          gcn_propagate_fused, gradcheck, gru_cell_fused,
                          lstm_cell_fused)

#: relative tolerance documented for float32 fused-vs-composed agreement
#: (see docs/performance.md) — rounding differs only through fp32 noise.
FLOAT32_RTOL = 1e-4
FLOAT32_ATOL = 1e-5

POLICIES = ["float64", "float32"]


def _t(rng, shape, scale=1.0):
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


def _grads(tensors):
    return [None if t.grad is None else t.grad.copy() for t in tensors]


def _compare(policy, fused_out, composed_out, fused_grads, composed_grads):
    if policy == "float64":
        np.testing.assert_array_equal(fused_out, composed_out)
        for fg, cg in zip(fused_grads, composed_grads):
            np.testing.assert_array_equal(fg, cg)
    else:
        np.testing.assert_allclose(fused_out, composed_out,
                                   rtol=FLOAT32_RTOL, atol=FLOAT32_ATOL)
        for fg, cg in zip(fused_grads, composed_grads):
            np.testing.assert_allclose(fg, cg, rtol=FLOAT32_RTOL,
                                       atol=FLOAT32_ATOL)


def _run_both_paths(build_loss, leaves):
    """Loss + grads with fusion on, then off, on the same leaves."""
    results = []
    for enabled in (True, False):
        for leaf in leaves:
            leaf.zero_grad()
        with fused_kernels(enabled):
            loss = build_loss()
        loss.backward()
        results.append((loss.data.copy(), _grads(leaves)))
    return results


class TestAffineActFused:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_gradcheck(self, rng, policy):
        with dtype_policy(policy):
            x = _t(rng, (3, 4))
            w = _t(rng, (2, 4))
            b = _t(rng, (2,))
            gradcheck(lambda: affine_act_fused(x, w, b).sum(), [x, w, b])

    @pytest.mark.parametrize("activation",
                             ["identity", "relu", "tanh", "sigmoid",
                              "leaky_relu"])
    def test_gradcheck_activations(self, rng, activation):
        x = _t(rng, (3, 4))
        w = _t(rng, (2, 4))
        # inputs shifted off 0 so relu/leaky_relu kinks don't break the
        # finite-difference comparison
        x.data += 0.05
        gradcheck(lambda: affine_act_fused(x, w, activation=activation)
                  .sum(), [x, w])

    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_composed_linear(self, rng, policy):
        with dtype_policy(policy):
            layer = Linear(5, 3, rng=np.random.default_rng(0))
            layer.astype(np.dtype(np.float64 if policy == "float64"
                                  else np.float32))
            x = _t(rng, (2, 7, 5))
            leaves = [x, layer.weight, layer.bias]
            (f_loss, f_grads), (c_loss, c_grads) = _run_both_paths(
                lambda: (layer(x) * layer(x)).sum(), leaves)
            _compare(policy, f_loss, c_loss, f_grads, c_grads)


class TestLSTMCellFused:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_gradcheck(self, rng, policy):
        with dtype_policy(policy):
            H = 3
            x = _t(rng, (2, 4))
            h0 = _t(rng, (2, H))
            c0 = _t(rng, (2, H))
            w_ih = _t(rng, (4 * H, 4), scale=0.5)
            w_hh = _t(rng, (4 * H, H), scale=0.5)
            b = _t(rng, (4 * H,))

            def loss():
                h, c = lstm_cell_fused(x, h0, c0, w_ih, w_hh, b, H)
                return (h * h).sum() + c.sum()

            gradcheck(loss, [x, h0, c0, w_ih, w_hh, b])

    def test_gradcheck_h_unused(self, rng):
        """The c-node backward must tolerate the h node never receiving a
        gradient (its stash stays ``None``)."""
        H = 3
        x = _t(rng, (2, 4))
        h0 = _t(rng, (2, H))
        c0 = _t(rng, (2, H))
        w_ih = _t(rng, (4 * H, 4), scale=0.5)
        w_hh = _t(rng, (4 * H, H), scale=0.5)
        b = _t(rng, (4 * H,))

        def loss():
            _, c = lstm_cell_fused(x, h0, c0, w_ih, w_hh, b, H)
            return c.sum()

        gradcheck(loss, [x, h0, c0, w_ih, w_hh, b])

    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_composed_cell(self, rng, policy):
        with dtype_policy(policy):
            cell = LSTMCell(4, 3, rng=np.random.default_rng(0))
            cell.astype(np.dtype(np.float64 if policy == "float64"
                                 else np.float32))
            x = _t(rng, (5, 4))
            h0, c0 = cell.initial_state(5)
            leaves = [x] + list(cell.parameters())

            def loss():
                h, c = cell(x, (h0, c0))
                h, c = cell(x, (h, c))     # two chained steps
                return (h * c).sum()

            (f_loss, f_grads), (c_loss, c_grads) = _run_both_paths(loss,
                                                                   leaves)
            _compare(policy, f_loss, c_loss, f_grads, c_grads)


class TestGRUCellFused:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_gradcheck(self, rng, policy):
        with dtype_policy(policy):
            H = 3
            x = _t(rng, (2, 4))
            h0 = _t(rng, (2, H))
            w_ih = _t(rng, (3 * H, 4), scale=0.5)
            w_hh = _t(rng, (3 * H, H), scale=0.5)
            b_ih = _t(rng, (3 * H,))
            b_hh = _t(rng, (3 * H,))
            gradcheck(lambda: (gru_cell_fused(x, h0, w_ih, w_hh, b_ih, b_hh,
                                              H) ** 2).sum(),
                      [x, h0, w_ih, w_hh, b_ih, b_hh])

    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_composed_cell(self, rng, policy):
        with dtype_policy(policy):
            cell = GRUCell(4, 3, rng=np.random.default_rng(0))
            cell.astype(np.dtype(np.float64 if policy == "float64"
                                 else np.float32))
            x = _t(rng, (5, 4))
            h0 = cell.initial_state(5)
            leaves = [x] + list(cell.parameters())

            def loss():
                h = cell(x, h0)
                h = cell(x, h)
                return (h * h).sum()

            (f_loss, f_grads), (c_loss, c_grads) = _run_both_paths(loss,
                                                                   leaves)
            _compare(policy, f_loss, c_loss, f_grads, c_grads)


class TestGCNPropagateFused:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_gradcheck_dense(self, rng, policy):
        with dtype_policy(policy):
            x = _t(rng, (4, 3))
            adj = _t(rng, (4, 4))
            w = _t(rng, (2, 3))
            b = _t(rng, (2,))
            gradcheck(lambda: gcn_propagate_fused(x, adj, w, b).sum(),
                      [x, adj, w, b])

    def test_gradcheck_sparse_values(self, rng):
        mask = rng.random((5, 5)) < 0.5
        np.fill_diagonal(mask, True)
        pattern = SparsePattern.from_mask(mask)
        values = Tensor(rng.standard_normal(pattern.nnz),
                        requires_grad=True)
        x = _t(rng, (5, 3))
        w = _t(rng, (2, 3))
        gradcheck(lambda: gcn_propagate_fused(
            x, SparseTensor(pattern, values), w).sum(), [x, values, w])

    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_composed_dense(self, rng, policy):
        with dtype_policy(policy):
            layer = GraphConv(3, 2, rng=np.random.default_rng(0))
            layer.astype(np.dtype(np.float64 if policy == "float64"
                                  else np.float32))
            x = _t(rng, (2, 6, 3))          # batched features
            adj = _t(rng, (2, 6, 6))        # batched adjacency, needs grad
            leaves = [x, adj, layer.weight, layer.bias]
            (f_loss, f_grads), (c_loss, c_grads) = _run_both_paths(
                lambda: (layer(x, adj) ** 2).sum(), leaves)
            _compare(policy, f_loss, c_loss, f_grads, c_grads)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_composed_sparse(self, rng, policy):
        with dtype_policy(policy):
            layer = GraphConv(3, 2, rng=np.random.default_rng(0))
            layer.astype(np.dtype(np.float64 if policy == "float64"
                                  else np.float32))
            mask = rng.random((6, 6)) < 0.4
            np.fill_diagonal(mask, True)
            pattern = SparsePattern.from_mask(mask)
            values = Tensor(rng.standard_normal(pattern.nnz),
                            requires_grad=True)
            x = _t(rng, (6, 3))
            leaves = [x, values, layer.weight, layer.bias]
            (f_loss, f_grads), (c_loss, c_grads) = _run_both_paths(
                lambda: (layer(x, SparseTensor(pattern, values)) ** 2)
                .sum(), leaves)
            _compare(policy, f_loss, c_loss, f_grads, c_grads)


class TestFusedSwitch:
    def test_context_restores(self):
        from repro.tensor import fused_enabled
        assert fused_enabled()
        with fused_kernels(False):
            assert not fused_enabled()
            with fused_kernels(True):
                assert fused_enabled()
            assert not fused_enabled()
        assert fused_enabled()

    def test_fused_shortens_tape(self, rng):
        from repro.tensor import tape_node_count
        cell = LSTMCell(4, 8, rng=np.random.default_rng(0))
        x = _t(rng, (2, 4))

        def nodes(enabled):
            with fused_kernels(enabled):
                before = tape_node_count()
                h, c = cell(x, cell.initial_state(2))
                (h * c).sum().backward()
                return tape_node_count() - before

        assert nodes(True) < nodes(False)
