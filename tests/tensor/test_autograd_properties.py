"""Property-based tests of the autograd engine (hypothesis).

These pin down the algebraic identities every correct reverse-mode
implementation must satisfy: linearity of the gradient operator, agreement
with finite differences on random programs, and exactness of known closed
forms.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import Tensor, gradcheck

finite_floats = st.floats(min_value=-3.0, max_value=3.0,
                          allow_nan=False, allow_infinity=False, width=64)


def small_arrays(max_dims=2, max_side=4):
    return arrays(np.float64,
                  array_shapes(min_dims=1, max_dims=max_dims,
                               max_side=max_side),
                  elements=finite_floats)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_ones(data):
    a = Tensor(data, requires_grad=True)
    a.sum().backward()
    assert np.allclose(a.grad, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(small_arrays(), st.floats(min_value=-2, max_value=2,
                                 allow_nan=False))
def test_scale_gradient_is_constant(data, scale):
    a = Tensor(data, requires_grad=True)
    (a * scale).sum().backward()
    assert np.allclose(a.grad, scale)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_square_gradient_closed_form(data):
    a = Tensor(data, requires_grad=True)
    (a * a).sum().backward()
    assert np.allclose(a.grad, 2 * data)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_tanh_gradient_matches_numeric(data):
    a = Tensor(data, requires_grad=True)
    gradcheck(lambda: a.tanh().sum(), [a], atol=1e-4, rtol=1e-3)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2, max_side=3),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_addition_gradient_linearity(x_data, seed):
    """grad of (f+g) equals grad f plus grad g for independent inputs."""
    rng = np.random.default_rng(seed)
    x = Tensor(x_data, requires_grad=True)
    y = Tensor(rng.standard_normal(x_data.shape), requires_grad=True)
    ((x * x) + (y * 3)).sum().backward()
    assert np.allclose(x.grad, 2 * x.data)
    assert np.allclose(y.grad, 3.0)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_matmul_gradient_random_shapes(n, k, m, seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.standard_normal((n, k)), requires_grad=True)
    b = Tensor(rng.standard_normal((k, m)), requires_grad=True)
    gradcheck(lambda: ((a @ b) ** 2).sum(), [a, b], atol=1e-4, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31 - 1),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=2, max_value=6))
def test_softmax_rows_always_sum_to_one(seed, rows, cols):
    from repro.tensor import softmax
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((rows, cols)) * 10)
    out = softmax(x, axis=-1)
    assert np.allclose(out.data.sum(axis=-1), 1.0)
    assert np.all(out.data >= 0)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_reshape_transpose_chain_preserves_gradient_flow(seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
    gradcheck(lambda: (a.transpose(2, 0, 1).reshape(4, 6) ** 2).sum(), [a],
              atol=1e-4, rtol=1e-3)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31 - 1),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=2, max_value=5),
       st.integers(min_value=1, max_value=3))
def test_conv1d_gradient_random_configs(seed, channels, length, kernel):
    from repro.tensor import conv1d
    if kernel > length:
        kernel = length
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((1, channels, length)),
               requires_grad=True)
    w = Tensor(rng.standard_normal((2, channels, kernel)),
               requires_grad=True)
    gradcheck(lambda: conv1d(x, w, padding=(kernel - 1, 0)).sum(), [x, w],
              atol=1e-4, rtol=1e-3)
