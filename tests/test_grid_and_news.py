"""Grid search (§V-B-4) and the news-sentiment future-work extension."""

import numpy as np
import pytest

from repro.core import RTGCN, TrainConfig, Trainer
from repro.data import NewsAugmentedDataset, NewsConfig, generate_sentiment
from repro.eval import (PAPER_ALPHA_GRID, PAPER_WINDOW_GRID, grid_search,
                        validation_split)


class TestValidationSplit:
    def test_tail_held_out(self, nasdaq_mini):
        train, valid = validation_split(nasdaq_mini, window=10,
                                        validation_days=25)
        full_train, _ = nasdaq_mini.split(10)
        assert train + valid == full_train
        assert len(valid) == 25
        assert max(train) < min(valid)

    def test_exhausting_training_rejected(self, nasdaq_mini):
        with pytest.raises(ValueError):
            validation_split(nasdaq_mini, window=10, validation_days=10_000)


class TestGridSearch:
    def factory(self, dataset):
        return lambda gen, cfg: RTGCN(dataset.relations,
                                      num_features=cfg.num_features,
                                      strategy="uniform",
                                      relational_filters=4, rng=gen)

    def test_explores_full_grid(self, csi_mini):
        result = grid_search(self.factory(csi_mini), csi_mini,
                             {"window": [5, 8], "alpha": [0.0, 0.1]},
                             base_config=TrainConfig(epochs=1,
                                                     max_train_days=20),
                             validation_days=10)
        assert len(result.points) == 4
        params_seen = {tuple(sorted(p.params.items()))
                       for p in result.points}
        assert len(params_seen) == 4

    def test_sorted_best_first(self, csi_mini):
        result = grid_search(self.factory(csi_mini), csi_mini,
                             {"window": [5, 8]},
                             base_config=TrainConfig(epochs=1,
                                                     max_train_days=15),
                             validation_days=10)
        scores = [p.score for p in result.points]
        assert scores == sorted(scores, reverse=True)
        assert result.best.score == scores[0]

    def test_best_config_substitutes_params(self, csi_mini):
        result = grid_search(self.factory(csi_mini), csi_mini,
                             {"window": [5, 8]},
                             base_config=TrainConfig(epochs=1,
                                                     max_train_days=15),
                             validation_days=10)
        config = result.best_config(TrainConfig(epochs=99))
        assert config.window in (5, 8)
        assert config.epochs == 99

    def test_empty_grid_rejected(self, csi_mini):
        with pytest.raises(ValueError):
            grid_search(self.factory(csi_mini), csi_mini, {})

    def test_paper_grids_defined(self):
        assert PAPER_WINDOW_GRID == (5, 10, 15, 20)
        assert PAPER_ALPHA_GRID == (0.01, 0.1, 0.2)


class TestSentimentGeneration:
    def test_shape_and_range(self, nasdaq_mini):
        s = generate_sentiment(nasdaq_mini.return_ratios, NewsConfig(seed=1))
        assert s.shape == nasdaq_mini.return_ratios.shape
        assert np.all(np.abs(s) <= 1.0)

    def test_sparsity_matches_event_rate(self, nasdaq_mini):
        cfg = NewsConfig(event_rate=0.3, seed=2)
        s = generate_sentiment(nasdaq_mini.return_ratios, cfg)
        nonzero = (s[:, :-1] != 0).mean()
        assert abs(nonzero - 0.3) < 0.03

    def test_sentiment_predicts_next_day_return(self, nasdaq_mini):
        cfg = NewsConfig(event_rate=1.0, informativeness=0.7, seed=3)
        s = generate_sentiment(nasdaq_mini.return_ratios, cfg)
        r = nasdaq_mini.return_ratios
        corr = np.corrcoef(s[:, :-1].ravel(), r[:, 1:].ravel())[0, 1]
        assert corr > 0.4

    def test_zero_informativeness_uncorrelated(self, nasdaq_mini):
        cfg = NewsConfig(event_rate=1.0, informativeness=0.0, seed=4)
        s = generate_sentiment(nasdaq_mini.return_ratios, cfg)
        r = nasdaq_mini.return_ratios
        corr = np.corrcoef(s[:, :-1].ravel(), r[:, 1:].ravel())[0, 1]
        assert abs(corr) < 0.05

    def test_last_day_is_silent(self, nasdaq_mini):
        s = generate_sentiment(nasdaq_mini.return_ratios, NewsConfig(seed=5))
        assert np.all(s[:, -1] == 0.0)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            NewsConfig(event_rate=0.0)
        with pytest.raises(ValueError):
            NewsConfig(informativeness=1.5)


class TestNewsAugmentedDataset:
    def test_adds_feature_channel(self, nasdaq_mini):
        news = NewsAugmentedDataset(nasdaq_mini, NewsConfig(seed=0))
        feats = news.features(60, window=10)
        assert feats.shape == (10, 48, 5)
        base = nasdaq_mini.features(60, window=10)
        assert np.allclose(feats[:, :, :4], base)

    def test_delegates_everything_else(self, nasdaq_mini):
        news = NewsAugmentedDataset(nasdaq_mini)
        assert news.num_stocks == nasdaq_mini.num_stocks
        assert news.split(10) == nasdaq_mini.split(10)
        assert np.allclose(news.label(60), nasdaq_mini.label(60))
        assert news.market.endswith("+news")

    def test_trains_with_rtgcn(self, nasdaq_mini):
        news = NewsAugmentedDataset(nasdaq_mini, NewsConfig(seed=0))
        model = RTGCN(news.relations, num_features=5, strategy="uniform",
                      relational_filters=4, rng=np.random.default_rng(0))
        config = TrainConfig(window=8, epochs=1, max_train_days=10,
                             num_features=4)  # +1 added by the wrapper
        result = Trainer(model, news, config).run()
        assert np.isfinite(result.predictions).all()

    def test_informative_news_improves_fit(self, nasdaq_mini):
        """With highly informative news the model should use the channel:
        training loss with news should end below training loss without."""
        cfg = TrainConfig(window=8, epochs=5, max_train_days=80, seed=0)
        base_model = RTGCN(nasdaq_mini.relations, num_features=4,
                           strategy="uniform", relational_filters=8,
                           dropout=0.0, rng=np.random.default_rng(0))
        base_losses = Trainer(base_model, nasdaq_mini, cfg).train()

        news = NewsAugmentedDataset(nasdaq_mini,
                                    NewsConfig(event_rate=1.0,
                                               informativeness=0.9, seed=0))
        news_model = RTGCN(news.relations, num_features=5,
                           strategy="uniform", relational_filters=8,
                           dropout=0.0, rng=np.random.default_rng(0))
        news_losses = Trainer(news_model, news, cfg).train()
        assert news_losses[-1] < base_losses[-1]
