"""End-to-end integration: the whole stack learns real structure.

These tests train small models on the shared mini market and assert
substantive outcomes (better-than-chance ranking, relational signal use),
not just shapes.  They are the repository's "does the paper's pipeline
actually work" check and intentionally run a bit longer than unit tests.
"""

import numpy as np
import pytest

from repro.core import RTGCN, TrainConfig, Trainer
from repro.data import load_market
from repro.eval import (mrr, ranking_metrics, run_backtest,
                        run_named_experiment)
from repro.stats import paired_wilcoxon


def random_mrr_level(num_stocks: int) -> float:
    """Expected MRR of a uniformly random top-1 pick: H(N)/N."""
    return float(np.sum(1.0 / np.arange(1, num_stocks + 1)) / num_stocks)


@pytest.fixture(scope="module")
def trained_rtgcn(nasdaq_mini):
    config = TrainConfig(window=10, epochs=8, alpha=0.1, seed=0)
    model = RTGCN(nasdaq_mini.relations, strategy="time",
                  relational_filters=16, rng=np.random.default_rng(0))
    result = Trainer(model, nasdaq_mini, config).run()
    return model, result


class TestLearnsSignal:
    def test_beats_random_mrr(self, nasdaq_mini, trained_rtgcn):
        _, result = trained_rtgcn
        level = random_mrr_level(nasdaq_mini.num_stocks)
        assert mrr(result.predictions, result.actuals) > level

    def test_positive_rank_correlation(self, trained_rtgcn):
        from scipy.stats import spearmanr
        _, result = trained_rtgcn
        rho = np.mean([spearmanr(p, a).statistic
                       for p, a in zip(result.predictions, result.actuals)])
        assert rho > 0.02

    def test_backtest_beats_random_picks(self, trained_rtgcn, rng):
        _, result = trained_rtgcn
        ours = run_backtest(result.predictions, result.actuals, 5)
        random_irrs = []
        for _ in range(20):
            scores = rng.uniform(size=result.predictions.shape)
            random_irrs.append(
                run_backtest(scores, result.actuals, 5).cumulative_return)
        assert ours.cumulative_return > np.mean(random_irrs)

    def test_loss_curve_monotone_ish(self, nasdaq_mini):
        model = RTGCN(nasdaq_mini.relations, strategy="uniform",
                      relational_filters=8, dropout=0.0,
                      rng=np.random.default_rng(1))
        losses = Trainer(model, nasdaq_mini,
                         TrainConfig(window=10, epochs=6, seed=1)).train()
        assert losses[-1] < losses[0]


class TestRelationalSignal:
    def test_relations_help_over_shuffled_relations(self, nasdaq_mini):
        """RT-GCN with the true relation matrix should beat the same model
        with a degree-matched random relation matrix (the relational signal
        is real, not an artifact of extra parameters)."""
        from repro.graph import RelationMatrix
        rng = np.random.default_rng(0)
        true_rel = nasdaq_mini.relations
        # Shuffle stock identities to destroy industry/wiki alignment while
        # keeping the graph's degree structure.
        perm = rng.permutation(true_rel.num_stocks)
        shuffled = RelationMatrix(true_rel.tensor[np.ix_(perm, perm)].copy(),
                                  list(true_rel.type_names))

        config = TrainConfig(window=10, epochs=6, seed=0)
        scores = {}
        for label, rel in [("true", true_rel), ("shuffled", shuffled)]:
            irrs = []
            for run in range(3):
                model = RTGCN(rel, strategy="uniform",
                              relational_filters=16,
                              rng=np.random.default_rng(100 + run))
                result = Trainer(model, nasdaq_mini, config).run()
                irrs.append(ranking_metrics(result.predictions,
                                            result.actuals)["IRR-5"])
            scores[label] = float(np.mean(irrs))
        # True relations should not be materially worse than shuffled ones;
        # typically they are better because neighbors carry real signal.
        tolerance = max(0.05, 0.25 * abs(scores["shuffled"]))
        assert scores["true"] > scores["shuffled"] - tolerance


class TestProtocolIntegration:
    def test_multi_run_protocol_with_significance(self, nasdaq_mini):
        config = TrainConfig(window=8, epochs=2, max_train_days=40)
        ours = run_named_experiment("RT-GCN (U)", nasdaq_mini, config,
                                    n_runs=3)
        base = run_named_experiment("LSTM", nasdaq_mini, config, n_runs=3)
        # The protocol produces comparable paired samples.
        outcome = paired_wilcoxon(ours.metric_values("IRR-5"),
                                  base.metric_values("IRR-5"),
                                  alternative="greater")
        assert 0.0 <= outcome.p_value <= 1.0
        assert outcome.n_used <= 3

    def test_reproducible_experiment(self, nasdaq_mini):
        config = TrainConfig(window=8, epochs=1, max_train_days=10)
        a = run_named_experiment("Rank_LSTM", nasdaq_mini, config, n_runs=1)
        b = run_named_experiment("Rank_LSTM", nasdaq_mini, config, n_runs=1)
        assert a.runs[0] == b.runs[0]
