"""RelationMatrix: construction, statistics, slicing, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import RelationMatrix

TYPES = ["industry:tech", "industry:pharma", "wiki:supplier_of"]


def sample_matrix():
    return RelationMatrix.from_edges(6, TYPES, [
        (0, 1, 0), (1, 2, 0), (0, 1, 2), (3, 4, 1), (4, 5, 1), (3, 5, 1),
    ])


class TestConstruction:
    def test_from_edges_symmetric(self):
        rel = sample_matrix()
        assert np.allclose(rel.tensor, rel.tensor.transpose(1, 0, 2))

    def test_empty(self):
        rel = RelationMatrix.empty(4, TYPES)
        assert rel.edge_count() == 0
        assert rel.relation_ratio() == 0.0

    def test_self_relation_rejected(self):
        with pytest.raises(ValueError):
            RelationMatrix.from_edges(3, TYPES, [(1, 1, 0)])

    def test_asymmetric_tensor_rejected(self):
        tensor = np.zeros((3, 3, 1))
        tensor[0, 1, 0] = 1.0      # missing the mirror entry
        with pytest.raises(ValueError, match="symmetric"):
            RelationMatrix(tensor)

    def test_diagonal_rejected(self):
        tensor = np.zeros((3, 3, 1))
        tensor[2, 2, 0] = 1.0
        with pytest.raises(ValueError, match="diagonal"):
            RelationMatrix(tensor)

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            RelationMatrix(np.zeros((3, 3)))

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RelationMatrix(np.zeros((3, 3, 2)), ["only-one"])

    def test_default_names_generated(self):
        rel = RelationMatrix(np.zeros((3, 3, 2)))
        assert rel.type_names == ["relation_0", "relation_1"]


class TestStatistics:
    def test_pair_vector_multi_hot(self):
        rel = sample_matrix()
        assert rel.pair_vector(0, 1).tolist() == [1.0, 0.0, 1.0]

    def test_binary_adjacency_no_diagonal(self):
        adj = sample_matrix().binary_adjacency()
        assert np.allclose(np.diag(adj), 0.0)
        assert adj[0, 1] == 1.0 and adj[0, 2] == 0.0

    def test_relation_ratio(self):
        rel = sample_matrix()
        # linked pairs: (0,1), (1,2), (3,4), (4,5), (3,5) = 5 of 15
        assert np.isclose(rel.relation_ratio(), 5 / 15)

    def test_edge_count(self):
        assert sample_matrix().edge_count() == 5

    def test_degree(self):
        rel = sample_matrix()
        assert rel.degree().tolist() == [1, 2, 1, 2, 2, 2]

    def test_type_usage(self):
        usage = sample_matrix().type_usage()
        assert usage["industry:tech"] == 2
        assert usage["industry:pharma"] == 3
        assert usage["wiki:supplier_of"] == 1


class TestSlicing:
    def test_select_prefix_wiki(self):
        wiki = sample_matrix().select_prefix("wiki:")
        assert wiki.num_types == 1
        assert wiki.edge_count() == 1

    def test_select_prefix_missing_raises(self):
        with pytest.raises(KeyError):
            sample_matrix().select_prefix("news:")

    def test_select_types_subset(self):
        sub = sample_matrix().select_types([0, 1])
        assert sub.type_names == ["industry:tech", "industry:pharma"]

    def test_merge_concatenates_types(self):
        a = sample_matrix().select_prefix("industry:")
        b = sample_matrix().select_prefix("wiki:")
        merged = a.merge(b)
        assert merged.num_types == 3
        assert merged.edge_count() == sample_matrix().edge_count()

    def test_merge_duplicate_types_rejected(self):
        rel = sample_matrix()
        with pytest.raises(ValueError, match="duplicate"):
            rel.merge(rel)

    def test_merge_size_mismatch_rejected(self):
        small = RelationMatrix.empty(3, ["other:x"])
        with pytest.raises(ValueError):
            sample_matrix().merge(small)

    def test_subgraph_preserves_edges(self):
        sub = sample_matrix().subgraph([3, 4, 5])
        assert sub.num_stocks == 3
        assert sub.edge_count() == 3    # the pharma triangle

    def test_subgraph_of_disconnected_nodes(self):
        sub = sample_matrix().subgraph([0, 3])
        assert sub.edge_count() == 0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_random_matrices_keep_invariants(n, k, seed):
    """Any randomly built relation matrix keeps symmetry + ratio bounds."""
    rng = np.random.default_rng(seed)
    names = [f"t{i}" for i in range(k)]
    edges = []
    for _ in range(rng.integers(0, 2 * n)):
        i, j = rng.integers(0, n, 2)
        if i != j:
            edges.append((int(i), int(j), int(rng.integers(0, k))))
    rel = RelationMatrix.from_edges(n, names, edges)
    assert 0.0 <= rel.relation_ratio() <= 1.0
    assert np.allclose(rel.tensor, rel.tensor.transpose(1, 0, 2))
    assert rel.edge_count() <= n * (n - 1) // 2
    # binary adjacency from multi-hot sums matches pair vectors
    adj = rel.binary_adjacency()
    for i in range(n):
        for j in range(n):
            assert (adj[i, j] > 0) == (rel.pair_vector(i, j).sum() > 0)
