"""Property-style equivalence of the streaming delta update.

The contract: after any sequence of edge edits, the incrementally
maintained normalized adjacency equals a from-scratch normalization of
the same graph — bitwise against a fresh :class:`DynamicNormalizedAdjacency`
(same summation recipe) and to ``<= 1e-12`` against the production
normalizers (which may sum in a different order).  Both representations,
including delete-then-re-add and delist-row removal.
"""

import numpy as np
import pytest

from repro.graph import DynamicNormalizedAdjacency, NormalizedAdjacencyCache
from repro.graph.adjacency import (normalize_sparse_adjacency,
                                   normalize_weighted_adjacency)
from repro.graph.delta import DELTA_MODES
from repro.tensor import SparseTensor

TOL = 1e-12


def random_symmetric(n, density, rng):
    mask = rng.random((n, n)) < density
    weights = rng.uniform(0.2, 1.5, size=(n, n))
    adj = np.where(mask, weights, 0.0)
    adj = np.triu(adj, 1)
    return adj + adj.T


def random_edits(n, count, rng, zero_fraction=0.35):
    edits = []
    for _ in range(count):
        i = int(rng.integers(0, n))
        j = int(rng.integers(0, n))
        while j == i:
            j = int(rng.integers(0, n))
        weight = (0.0 if rng.random() < zero_fraction
                  else float(rng.uniform(0.2, 2.0)))
        edits.append((i, j, weight))
    return edits


def reference_normalized(adjacency):
    """Production CSR normalization, densified (the paper-path oracle)."""
    n = adjacency.shape[0]
    sparse = normalize_sparse_adjacency(
        SparseTensor.from_dense(adjacency + np.eye(n)))
    dense = np.zeros((n, n))
    pattern = sparse.pattern
    dense[pattern.rows, pattern.indices] = sparse.values.data
    return dense


@pytest.mark.parametrize("mode", DELTA_MODES)
class TestRandomEventSequences:
    def test_matches_production_normalizers_after_every_batch(self, mode):
        rng = np.random.default_rng(11)
        n = 36
        current = random_symmetric(n, 0.15, rng)
        dynamic = DynamicNormalizedAdjacency(current, mode=mode)
        for _ in range(12):
            edits = random_edits(n, int(rng.integers(1, 9)), rng)
            dynamic.apply_delta(edits)
            for i, j, w in edits:
                current[i, j] = current[j, i] = w
            got = dynamic.normalized_dense()
            assert np.abs(got - reference_normalized(current)).max() <= TOL
            assert np.abs(
                got - normalize_weighted_adjacency(current).data
            ).max() <= TOL

    def test_bitwise_equal_to_fresh_instance(self, mode):
        rng = np.random.default_rng(5)
        n = 30
        current = random_symmetric(n, 0.2, rng)
        dynamic = DynamicNormalizedAdjacency(current, mode=mode)
        for _ in range(10):
            edits = random_edits(n, int(rng.integers(2, 12)), rng)
            dynamic.apply_delta(edits)
            for i, j, w in edits:
                current[i, j] = current[j, i] = w
        fresh = DynamicNormalizedAdjacency(current, mode=mode)
        np.testing.assert_array_equal(dynamic.normalized_dense(),
                                      fresh.normalized_dense())
        np.testing.assert_array_equal(dynamic.degrees(), fresh.degrees())

    def test_full_recompute_is_a_fixed_point(self, mode):
        rng = np.random.default_rng(17)
        dynamic = DynamicNormalizedAdjacency(
            random_symmetric(20, 0.25, rng), mode=mode)
        dynamic.apply_delta(random_edits(20, 15, rng))
        before = dynamic.normalized_dense()
        dynamic.full_recompute()
        np.testing.assert_array_equal(dynamic.normalized_dense(), before)

    def test_delete_then_readd_round_trips(self, mode):
        rng = np.random.default_rng(3)
        base = random_symmetric(16, 0.3, rng)
        dynamic = DynamicNormalizedAdjacency(base, mode=mode)
        i, j = 0, 1
        original = base[i, j] if base[i, j] else 0.8
        dynamic.apply_delta([(i, j, original)])
        dynamic.apply_delta([(i, j, 0.0)])
        dynamic.apply_delta([(i, j, original)])
        base[i, j] = base[j, i] = original
        fresh = DynamicNormalizedAdjacency(base, mode=mode)
        np.testing.assert_array_equal(dynamic.normalized_dense(),
                                      fresh.normalized_dense())

    def test_delist_isolate_matches_fresh(self, mode):
        rng = np.random.default_rng(7)
        base = random_symmetric(18, 0.3, rng)
        dynamic = DynamicNormalizedAdjacency(base, mode=mode)
        touched = dynamic.isolate([4, 9])
        assert touched > 0
        stripped = base.copy()
        stripped[[4, 9], :] = 0.0
        stripped[:, [4, 9]] = 0.0
        fresh = DynamicNormalizedAdjacency(stripped, mode=mode)
        np.testing.assert_array_equal(dynamic.normalized_dense(),
                                      fresh.normalized_dense())
        # the delisted rows keep their self-loops (fixed-width universe)
        assert dynamic.normalized_dense()[4, 4] > 0
        assert dynamic.neighbors(4).size == 0

    def test_last_write_wins_within_a_batch(self, mode):
        dynamic = DynamicNormalizedAdjacency(np.zeros((6, 6)), mode=mode)
        dynamic.apply_delta([(0, 1, 0.5), (1, 0, 2.0),
                             (2, 3, 1.0), (2, 3, 0.0)])
        unnorm = dynamic.unnormalized_dense()
        assert unnorm[0, 1] == unnorm[1, 0] == 2.0
        assert unnorm[2, 3] == 0.0


class TestModesAgree:
    def test_dense_and_csr_stay_equivalent(self):
        # Bitwise equality holds within a mode (vs a fresh instance);
        # across modes the degree sums associate differently (pairwise
        # np.sum vs sequential reduceat), so compare to tolerance.
        rng = np.random.default_rng(23)
        n = 25
        base = random_symmetric(n, 0.2, rng)
        dense = DynamicNormalizedAdjacency(base, mode="dense")
        csr = DynamicNormalizedAdjacency(base, mode="csr")
        for _ in range(8):
            edits = random_edits(n, int(rng.integers(1, 10)), rng)
            t_dense = dense.apply_delta(edits)
            t_csr = csr.apply_delta(edits)
            assert t_dense == t_csr
            assert np.abs(dense.normalized_dense()
                          - csr.normalized_dense()).max() <= TOL


class TestValidation:
    def test_self_loop_edit_rejected(self):
        dynamic = DynamicNormalizedAdjacency(np.zeros((4, 4)))
        with pytest.raises(ValueError, match="self-loop"):
            dynamic.apply_delta([(2, 2, 1.0)])

    def test_out_of_range_rejected(self):
        dynamic = DynamicNormalizedAdjacency(np.zeros((4, 4)))
        with pytest.raises(ValueError, match="out of range"):
            dynamic.apply_delta([(0, 4, 1.0)])

    def test_malformed_edits_rejected(self):
        dynamic = DynamicNormalizedAdjacency(np.zeros((4, 4)))
        with pytest.raises(ValueError, match="triples"):
            dynamic.apply_delta([(0, 1)])
        with pytest.raises(ValueError, match="triples"):
            dynamic.apply_delta(["nope"])

    def test_asymmetric_adjacency_rejected(self):
        bad = np.zeros((3, 3))
        bad[0, 1] = 1.0
        with pytest.raises(ValueError, match="symmetric"):
            DynamicNormalizedAdjacency(bad)

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ValueError, match="diagonal"):
            DynamicNormalizedAdjacency(np.eye(3))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            DynamicNormalizedAdjacency(np.zeros((3, 3)), mode="coo")

    def test_empty_batch_is_noop(self):
        dynamic = DynamicNormalizedAdjacency(np.zeros((4, 4)))
        before = dynamic.normalized_dense()
        assert dynamic.apply_delta([]) == 0
        np.testing.assert_array_equal(dynamic.normalized_dense(), before)
        assert dynamic.stats()["edits_applied"] == 0


class TestSnapshotIsolation:
    def test_prior_normalized_view_survives_delta(self):
        rng = np.random.default_rng(31)
        dynamic = DynamicNormalizedAdjacency(
            random_symmetric(12, 0.3, rng), mode="csr")
        view = dynamic.normalized()
        snapshot = view.data.copy()
        dynamic.apply_delta([(0, 1, 5.0), (2, 3, 0.0)])
        # copy-on-write: the handed-out view still shows pre-delta values
        np.testing.assert_array_equal(view.data, snapshot)


class TestCacheDeltaPath:
    def test_apply_delta_counts_hit_and_delta(self):
        cache = NormalizedAdjacencyCache()
        dynamic = DynamicNormalizedAdjacency(np.zeros((5, 5)))
        cache.put("live", dynamic)
        touched = cache.apply_delta("live", [(0, 1, 1.0)])
        assert touched == 2
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["deltas"] == 1

    def test_missing_key_is_a_miss_and_keyerror(self):
        cache = NormalizedAdjacencyCache()
        with pytest.raises(KeyError):
            cache.apply_delta("absent", [(0, 1, 1.0)])
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["deltas"] == 0

    def test_static_entry_is_a_hit_and_typeerror(self):
        cache = NormalizedAdjacencyCache()
        cache.put("static", np.eye(3))
        with pytest.raises(TypeError, match="delta"):
            cache.apply_delta("static", [(0, 1, 1.0)])
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["deltas"] == 0
