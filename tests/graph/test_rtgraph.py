"""The relation-temporal graph G_RT: structure, counts, cylinder invariants."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import RelationMatrix, RelationTemporalGraph


def relations():
    return RelationMatrix.from_edges(4, ["industry:x"], [
        (0, 1, 0), (1, 2, 0),
    ])


class TestStructure:
    def test_node_count(self):
        g = RelationTemporalGraph(relations(), num_steps=5)
        assert g.stats().num_nodes == 20
        assert len(list(g.nodes())) == 20

    def test_relational_edges_per_step(self):
        g = RelationTemporalGraph(relations(), num_steps=3)
        stats = g.stats()
        assert stats.num_relational_edges == 2 * 3

    def test_temporal_edges_connect_same_stock(self):
        g = RelationTemporalGraph(relations(), num_steps=3)
        for (t1, i1), (t2, i2) in g.temporal_edges():
            assert i1 == i2
            assert t2 == t1 + 1

    def test_temporal_edge_count(self):
        g = RelationTemporalGraph(relations(), num_steps=4)
        assert g.stats().num_temporal_edges == 4 * 3

    def test_single_step_has_no_temporal_edges(self):
        g = RelationTemporalGraph(relations(), num_steps=1)
        assert g.stats().num_temporal_edges == 0

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            RelationTemporalGraph(relations(), num_steps=0)


class TestNeighbors:
    def test_interior_node_neighbors(self):
        g = RelationTemporalGraph(relations(), num_steps=3)
        nbrs = set(g.neighbors(1, 1))
        assert (1, 0) in nbrs and (1, 2) in nbrs   # relational
        assert (0, 1) in nbrs and (2, 1) in nbrs   # temporal

    def test_boundary_node_no_past(self):
        g = RelationTemporalGraph(relations(), num_steps=3)
        assert all(t >= 0 for t, _ in g.neighbors(0, 0))
        assert (1, 0) in g.neighbors(0, 0)

    def test_isolated_stock_only_temporal(self):
        g = RelationTemporalGraph(relations(), num_steps=3)
        nbrs = g.neighbors(1, 3)          # stock 3 has no relations
        assert set(nbrs) == {(0, 3), (2, 3)}

    def test_out_of_range_raises(self):
        g = RelationTemporalGraph(relations(), num_steps=2)
        with pytest.raises(IndexError):
            g.neighbors(2, 0)


class TestNetworkxViews:
    def test_full_graph_counts(self):
        g = RelationTemporalGraph(relations(), num_steps=3)
        nxg = g.to_networkx()
        stats = g.stats()
        assert nxg.number_of_nodes() == stats.num_nodes
        assert nxg.number_of_edges() == stats.num_edges

    def test_edge_kinds_labelled(self):
        g = RelationTemporalGraph(relations(), num_steps=2)
        nxg = g.to_networkx()
        kinds = {d["kind"] for _, _, d in nxg.edges(data=True)}
        assert kinds == {"relational", "temporal"}

    def test_relational_slice_carries_type_names(self):
        g = RelationTemporalGraph(relations(), num_steps=2)
        slice_graph = g.relational_graph()
        assert slice_graph.number_of_nodes() == 4
        assert slice_graph.edges[0, 1]["relations"] == ["industry:x"]

    def test_cylinder_is_connected_when_relations_connect(self):
        # All stocks in one industry + temporal edges -> G_RT is connected.
        rel = RelationMatrix.from_edges(3, ["industry:x"], [
            (0, 1, 0), (1, 2, 0), (0, 2, 0)])
        nxg = RelationTemporalGraph(rel, num_steps=4).to_networkx()
        assert nx.is_connected(nxg)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_grt_size_formula(n, steps, seed):
    """|V| = N·T and |E| = T·|E_R| + N·(T−1) for any relation set."""
    rng = np.random.default_rng(seed)
    edges = []
    for _ in range(rng.integers(0, n)):
        i, j = rng.integers(0, n, 2)
        if i != j:
            edges.append((int(i), int(j), 0))
    rel = RelationMatrix.from_edges(n, ["t0"], edges)
    g = RelationTemporalGraph(rel, num_steps=steps)
    stats = g.stats()
    assert stats.num_nodes == n * steps
    assert stats.num_relational_edges == rel.edge_count() * steps
    assert stats.num_temporal_edges == n * (steps - 1)
    nxg = g.to_networkx()
    assert nxg.number_of_edges() == stats.num_edges
