"""Adjacency normalization (Eq. 1–2) and relation-aware strategies (Eq. 3–5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (RelationMatrix, TimeSensitiveStrategy,
                         UniformStrategy, WeightStrategy, add_self_loops,
                         make_strategy, normalize_adjacency,
                         normalize_weighted_adjacency)
from repro.tensor import Tensor, gradcheck


def relations(n=5):
    return RelationMatrix.from_edges(n, ["industry:a", "wiki:b"], [
        (0, 1, 0), (1, 2, 0), (2, 3, 1), (0, 4, 1),
    ])


class TestNormalization:
    def test_self_loops_added(self):
        adj = np.zeros((3, 3))
        assert np.allclose(add_self_loops(adj), np.eye(3))

    def test_symmetric_output(self):
        adj = relations().binary_adjacency()
        out = normalize_adjacency(adj)
        assert np.allclose(out, out.T)

    def test_isolated_node_keeps_self_loop(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = adj[1, 0] = 1.0
        out = normalize_adjacency(adj)
        assert np.isclose(out[2, 2], 1.0)   # degree-1 self loop

    def test_spectral_radius_bounded(self):
        adj = relations(8).binary_adjacency()
        out = normalize_adjacency(adj)
        eigenvalues = np.linalg.eigvalsh(out)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_renormalization_trick_differs_from_pre_trick(self):
        adj = relations().binary_adjacency()
        trick = normalize_adjacency(adj, add_loops=True)
        pre = normalize_adjacency(adj, add_loops=False)
        assert not np.allclose(trick, pre)

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            normalize_adjacency(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            normalize_adjacency(np.zeros((2, 3)))

    def test_weighted_normalization_handles_negative(self):
        adj = Tensor(np.array([[0.0, -2.0], [-2.0, 0.0]]))
        out = normalize_weighted_adjacency(adj)
        assert np.isfinite(out.data).all()

    def test_weighted_normalization_gradients(self, rng):
        adj = Tensor(rng.standard_normal((4, 4)), requires_grad=True)
        gradcheck(lambda: normalize_weighted_adjacency(adj).sum(), [adj])

    def test_weighted_matches_static_on_binary(self):
        adj = relations().binary_adjacency()
        static = normalize_adjacency(adj)
        dynamic = normalize_weighted_adjacency(Tensor(adj)).data
        assert np.allclose(static, dynamic, atol=1e-6)


class TestUniformStrategy:
    def test_adjacency_is_constant(self):
        s = UniformStrategy(relations())
        a1, a2 = s(), s()
        assert a1 is a2          # precomputed

    def test_treats_all_relations_equally(self):
        rel = relations()
        s = UniformStrategy(rel)
        adj = s().data
        # (0,1) single industry vs (0,4) single wiki: same weight pattern
        # because Eq. 3 only checks sum > 0.
        norm = adj
        assert norm[0, 1] > 0 and norm[0, 4] > 0

    def test_no_parameters(self):
        assert list(UniformStrategy(relations()).parameters()) == []

    def test_not_time_varying(self):
        assert not UniformStrategy(relations()).time_varying


class TestWeightStrategy:
    def test_has_k_plus_one_parameters(self):
        s = WeightStrategy(relations())
        assert s.weight.shape == (2,)
        assert s.bias.shape == (1,)

    def test_unrelated_pairs_stay_zero(self):
        s = WeightStrategy(relations())
        raw = s.raw_adjacency().data
        assert raw[0, 2] == 0.0   # no relation between 0 and 2
        assert raw[0, 1] != 0.0

    def test_different_relations_get_different_weights(self):
        s = WeightStrategy(relations())
        s.weight.data[:] = [2.0, 5.0]
        s.bias.data[:] = 0.0
        raw = s.raw_adjacency().data
        assert np.isclose(raw[0, 1], 2.0)   # industry edge
        assert np.isclose(raw[2, 3], 5.0)   # wiki edge

    def test_gradients_reach_weights(self):
        s = WeightStrategy(relations())
        gradcheck(lambda: s().sum(), [s.weight, s.bias])

    def test_shared_across_time(self):
        # forward takes no features; output shape is static (N, N)
        s = WeightStrategy(relations())
        assert s().shape == (5, 5)


class TestTimeSensitiveStrategy:
    def test_per_step_adjacency(self, rng):
        s = TimeSensitiveStrategy(relations())
        feats = Tensor(rng.standard_normal((7, 5, 3)))
        assert s(feats).shape == (7, 5, 5)

    def test_steps_differ(self, rng):
        s = TimeSensitiveStrategy(relations())
        feats = Tensor(rng.standard_normal((3, 5, 4)))
        adj = s(feats).data
        assert not np.allclose(adj[0], adj[1])

    def test_requires_features(self):
        with pytest.raises(ValueError):
            TimeSensitiveStrategy(relations())()

    def test_feature_rank_validated(self, rng):
        s = TimeSensitiveStrategy(relations())
        with pytest.raises(ValueError):
            s(Tensor(rng.standard_normal((5, 3))))

    def test_node_count_validated(self, rng):
        s = TimeSensitiveStrategy(relations())
        with pytest.raises(ValueError):
            s(Tensor(rng.standard_normal((3, 9, 4))))

    def test_correlation_scales_with_features(self, rng):
        s = TimeSensitiveStrategy(relations())
        s.weight.data[:] = 1.0
        s.bias.data[:] = 0.0
        # Identical features for the related pair -> high correlation term.
        feats = np.zeros((1, 5, 2))
        feats[0, 0] = feats[0, 1] = [3.0, 3.0]
        adj_high = s(Tensor(feats)).data[0]
        feats[0, 1] = [0.01, 0.01]
        adj_low = s(Tensor(feats)).data[0]
        assert abs(adj_high[0, 1]) > abs(adj_low[0, 1])

    def test_gradients_reach_weights(self, rng):
        s = TimeSensitiveStrategy(relations())
        feats = Tensor(rng.standard_normal((2, 5, 3)), requires_grad=True)
        gradcheck(lambda: s(feats).sum(), [feats, s.weight, s.bias])


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("uniform", UniformStrategy), ("U", UniformStrategy),
        ("weight", WeightStrategy), ("W", WeightStrategy),
        ("time", TimeSensitiveStrategy), ("T", TimeSensitiveStrategy),
        ("time-sensitive", TimeSensitiveStrategy),
    ])
    def test_names(self, name, cls):
        assert isinstance(make_strategy(name, relations()), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("mystery", relations())


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=7),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_normalized_rows_of_connected_graph(n, seed):
    """Rows of D̃^{-1/2}ÃD̃^{-1/2} are non-negative and bounded by 1."""
    rng = np.random.default_rng(seed)
    adj = (rng.uniform(size=(n, n)) > 0.5).astype(float)
    adj = np.triu(adj, 1)
    adj = adj + adj.T
    out = normalize_adjacency(adj)
    assert np.all(out >= 0)
    assert np.all(out <= 1.0 + 1e-12)
    assert np.allclose(out, out.T)
