"""Thread-safety of the normalized-adjacency cache.

The serving path reads this cache from HTTP handler threads and batcher
workers while training code may invalidate it; the stress tests here pin
down that concurrent readers and an invalidating writer never corrupt the
cache, lose counter updates, or serve another key's value.
"""

import threading

import numpy as np
import pytest

from repro.graph import NormalizedAdjacencyCache, reset_adjacency_cache


@pytest.fixture(autouse=True)
def fresh_global_cache():
    yield reset_adjacency_cache()
    reset_adjacency_cache()


def run_threads(workers):
    threads = [threading.Thread(target=fn) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads), "worker deadlocked"


class TestConcurrentReaders:
    def test_hammered_get_or_compute_returns_right_values(self):
        # 8 readers × 200 lookups over 10 keys: every result must match
        # its key (never another thread's value), and errors surface.
        cache = NormalizedAdjacencyCache(max_entries=32)
        barrier = threading.Barrier(8)
        errors = []

        def reader(worker_id):
            def body():
                barrier.wait(timeout=10.0)
                rng = np.random.default_rng(worker_id)
                for _ in range(200):
                    key = int(rng.integers(0, 10))
                    value = cache.get_or_compute(
                        key, lambda k=key: np.full(4, float(k)))
                    if not np.array_equal(value, np.full(4, float(key))):
                        errors.append((worker_id, key, value))
            return body

        run_threads([reader(i) for i in range(8)])
        assert errors == []
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 200

    def test_counters_do_not_lose_updates(self):
        # Pure hit traffic: with the entry pre-seeded, 8 × 500 lookups
        # must count exactly 4000 hits (a torn counter would undercount).
        cache = NormalizedAdjacencyCache()
        cache.put("adj", np.eye(3))
        barrier = threading.Barrier(8)

        def reader():
            barrier.wait(timeout=10.0)
            for _ in range(500):
                cache.get("adj")

        run_threads([reader] * 8)
        assert cache.stats()["hits"] == 8 * 500


class TestInvalidationRace:
    def test_readers_race_invalidator(self):
        # Readers recompute-or-hit one key while a writer invalidates it
        # as fast as it can.  Whatever interleaving happens, a reader
        # must only ever observe the correct value for the key.
        cache = NormalizedAdjacencyCache(max_entries=8)
        barrier = threading.Barrier(5)
        stop = threading.Event()
        wrong = []

        def reader(worker_id):
            def body():
                barrier.wait(timeout=10.0)
                for _ in range(300):
                    value = cache.get_or_compute(
                        "contested", lambda: np.full(8, 7.0))
                    if not np.array_equal(value, np.full(8, 7.0)):
                        wrong.append((worker_id, value))
            return body

        def invalidator():
            barrier.wait(timeout=10.0)
            # Keep going until at least one invalidation landed: a starved
            # thread can otherwise see `stop` already set on its first
            # check and exit without exercising the race at all.  The key
            # is guaranteed present once the readers finish, so this
            # always terminates.
            while (not stop.is_set()
                   or cache.stats()["invalidations"] == 0):
                cache.invalidate("contested")

        readers = [reader(i) for i in range(4)]
        threads = [threading.Thread(target=fn) for fn in readers]
        inval = threading.Thread(target=invalidator)
        for thread in threads + [inval]:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        stop.set()
        inval.join(timeout=10.0)
        assert not inval.is_alive()
        assert wrong == []
        stats = cache.stats()
        assert stats["invalidations"] >= 1
        # conservation: every lookup was either a hit or a miss
        assert stats["hits"] + stats["misses"] == 4 * 300

    def test_delta_races_invalidate_keeps_counters_coherent(self):
        # Streaming ingest (apply_delta) races an invalidator and a
        # re-seeder on the same key.  Every apply_delta call must count
        # exactly one hit+delta (success) or one miss (KeyError after an
        # invalidation won) — conservation across any interleaving.
        from repro.graph import DynamicNormalizedAdjacency

        cache = NormalizedAdjacencyCache(max_entries=8)

        def seed():
            return DynamicNormalizedAdjacency(np.zeros((6, 6)), mode="csr")

        cache.put("stream", seed())
        barrier = threading.Barrier(5)
        outcomes = {"applied": 0, "missed": 0}
        tally = threading.Lock()

        def ingester(worker_id):
            def body():
                barrier.wait(timeout=10.0)
                rng = np.random.default_rng(worker_id)
                for _ in range(150):
                    i = int(rng.integers(0, 6))
                    j = (i + 1 + int(rng.integers(0, 5))) % 6
                    try:
                        cache.apply_delta(
                            "stream", [(i, j, float(rng.random()) + 0.1)])
                        with tally:
                            outcomes["applied"] += 1
                    except KeyError:
                        with tally:
                            outcomes["missed"] += 1
            return body

        def churner():
            barrier.wait(timeout=10.0)
            for _ in range(100):
                cache.invalidate("stream")
                cache.put("stream", seed())

        run_threads([ingester(i) for i in range(4)] + [churner])
        stats = cache.stats()
        assert outcomes["applied"] + outcomes["missed"] == 4 * 150
        assert stats["deltas"] == outcomes["applied"]
        # hit/miss conservation over the delta path alone: churner does
        # no lookups, so every hit and miss belongs to an apply_delta
        assert stats["hits"] == outcomes["applied"]
        assert stats["misses"] == outcomes["missed"]
        # the surviving entry is a consistent graph, not a torn update
        live = cache.get("stream")
        normalized = live.normalized_dense()
        np.testing.assert_array_equal(normalized, normalized.T)

    def test_delta_applies_atomically_under_readers(self):
        # Concurrent normalized() readers against a stream of deltas:
        # every observed snapshot must be internally consistent (equal to
        # a from-scratch normalization of SOME unnormalized state).
        from repro.graph import DynamicNormalizedAdjacency

        cache = NormalizedAdjacencyCache()
        dynamic = DynamicNormalizedAdjacency(np.zeros((5, 5)), mode="csr")
        cache.put("live", dynamic)
        barrier = threading.Barrier(3)
        bad = []

        def writer():
            barrier.wait(timeout=10.0)
            rng = np.random.default_rng(0)
            for _ in range(200):
                i = int(rng.integers(0, 5))
                j = (i + 1 + int(rng.integers(0, 4))) % 5
                cache.apply_delta("live", [(i, j, float(rng.random())
                                            + 0.1)])

        def reader():
            barrier.wait(timeout=10.0)
            for _ in range(200):
                entry = cache.get("live")
                snap = entry.normalized()
                data = snap.data          # copy-on-write snapshot
                if not np.all(np.isfinite(data)):
                    bad.append("non-finite")

        run_threads([writer, reader, reader])
        assert bad == []
        assert cache.stats()["deltas"] == 200

    def test_clear_races_put_leaves_consistent_cache(self):
        cache = NormalizedAdjacencyCache(max_entries=16)
        barrier = threading.Barrier(4)

        def writer(worker_id):
            def body():
                barrier.wait(timeout=10.0)
                for i in range(200):
                    cache.put((worker_id, i % 8), np.ones(2))
            return body

        def clearer():
            barrier.wait(timeout=10.0)
            for _ in range(100):
                cache.clear()

        run_threads([writer(0), writer(1), writer(2), clearer])
        stats = cache.stats()
        assert 0 <= stats["entries"] <= 16
        assert len(cache) == stats["entries"]
