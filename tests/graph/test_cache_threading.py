"""Thread-safety of the normalized-adjacency cache.

The serving path reads this cache from HTTP handler threads and batcher
workers while training code may invalidate it; the stress tests here pin
down that concurrent readers and an invalidating writer never corrupt the
cache, lose counter updates, or serve another key's value.
"""

import threading

import numpy as np
import pytest

from repro.graph import NormalizedAdjacencyCache, reset_adjacency_cache


@pytest.fixture(autouse=True)
def fresh_global_cache():
    yield reset_adjacency_cache()
    reset_adjacency_cache()


def run_threads(workers):
    threads = [threading.Thread(target=fn) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads), "worker deadlocked"


class TestConcurrentReaders:
    def test_hammered_get_or_compute_returns_right_values(self):
        # 8 readers × 200 lookups over 10 keys: every result must match
        # its key (never another thread's value), and errors surface.
        cache = NormalizedAdjacencyCache(max_entries=32)
        barrier = threading.Barrier(8)
        errors = []

        def reader(worker_id):
            def body():
                barrier.wait(timeout=10.0)
                rng = np.random.default_rng(worker_id)
                for _ in range(200):
                    key = int(rng.integers(0, 10))
                    value = cache.get_or_compute(
                        key, lambda k=key: np.full(4, float(k)))
                    if not np.array_equal(value, np.full(4, float(key))):
                        errors.append((worker_id, key, value))
            return body

        run_threads([reader(i) for i in range(8)])
        assert errors == []
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 200

    def test_counters_do_not_lose_updates(self):
        # Pure hit traffic: with the entry pre-seeded, 8 × 500 lookups
        # must count exactly 4000 hits (a torn counter would undercount).
        cache = NormalizedAdjacencyCache()
        cache.put("adj", np.eye(3))
        barrier = threading.Barrier(8)

        def reader():
            barrier.wait(timeout=10.0)
            for _ in range(500):
                cache.get("adj")

        run_threads([reader] * 8)
        assert cache.stats()["hits"] == 8 * 500


class TestInvalidationRace:
    def test_readers_race_invalidator(self):
        # Readers recompute-or-hit one key while a writer invalidates it
        # as fast as it can.  Whatever interleaving happens, a reader
        # must only ever observe the correct value for the key.
        cache = NormalizedAdjacencyCache(max_entries=8)
        barrier = threading.Barrier(5)
        stop = threading.Event()
        wrong = []

        def reader(worker_id):
            def body():
                barrier.wait(timeout=10.0)
                for _ in range(300):
                    value = cache.get_or_compute(
                        "contested", lambda: np.full(8, 7.0))
                    if not np.array_equal(value, np.full(8, 7.0)):
                        wrong.append((worker_id, value))
            return body

        def invalidator():
            barrier.wait(timeout=10.0)
            # Keep going until at least one invalidation landed: a starved
            # thread can otherwise see `stop` already set on its first
            # check and exit without exercising the race at all.  The key
            # is guaranteed present once the readers finish, so this
            # always terminates.
            while (not stop.is_set()
                   or cache.stats()["invalidations"] == 0):
                cache.invalidate("contested")

        readers = [reader(i) for i in range(4)]
        threads = [threading.Thread(target=fn) for fn in readers]
        inval = threading.Thread(target=invalidator)
        for thread in threads + [inval]:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        stop.set()
        inval.join(timeout=10.0)
        assert not inval.is_alive()
        assert wrong == []
        stats = cache.stats()
        assert stats["invalidations"] >= 1
        # conservation: every lookup was either a hit or a miss
        assert stats["hits"] + stats["misses"] == 4 * 300

    def test_clear_races_put_leaves_consistent_cache(self):
        cache = NormalizedAdjacencyCache(max_entries=16)
        barrier = threading.Barrier(4)

        def writer(worker_id):
            def body():
                barrier.wait(timeout=10.0)
                for i in range(200):
                    cache.put((worker_id, i % 8), np.ones(2))
            return body

        def clearer():
            barrier.wait(timeout=10.0)
            for _ in range(100):
                cache.clear()

        run_threads([writer(0), writer(1), writer(2), clearer])
        stats = cache.stats()
        assert 0 <= stats["entries"] <= 16
        assert len(cache) == stats["entries"]
