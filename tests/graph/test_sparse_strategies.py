"""Sparse relation strategies: dense↔sparse equivalence and the
normalized-adjacency cache (ISSUE-2 tentpole + satellites b/c)."""

import numpy as np
import pytest

import repro.graph.strategies as strategies_module
from repro.core import RTGCN, TrainConfig, Trainer
from repro.graph import (RelationMatrix, TimeSensitiveStrategy,
                         UniformStrategy, WeightStrategy, adjacency_cache,
                         make_strategy, normalize_sparse_adjacency,
                         normalize_weighted_adjacency,
                         reset_adjacency_cache)
from repro.tensor import Tensor
from repro.tensor.sparse import SparseTensor


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test observes its own global adjacency cache."""
    yield reset_adjacency_cache()
    reset_adjacency_cache()


def relations(n=6):
    return RelationMatrix.from_edges(n, ["industry:a", "wiki:b"], [
        (0, 1, 0), (1, 2, 0), (2, 3, 1), (0, 4, 1), (4, 5, 0),
    ])


def paired(strategy_name, rng, **kwargs):
    """One dense and one sparse instance with identical parameters."""
    rel = relations()
    dense = make_strategy(strategy_name, rel,
                          rng=np.random.default_rng(3),
                          graph_mode="dense", **kwargs)
    sparse = make_strategy(strategy_name, rel,
                           rng=np.random.default_rng(3),
                           graph_mode="sparse", **kwargs)
    sparse.load_state_dict(dense.state_dict())
    return dense, sparse


# ----------------------------------------------------------------------
# dense ↔ sparse equivalence
# ----------------------------------------------------------------------
class TestNormalizeSparseAdjacency:
    def test_matches_dense_normalization(self, rng):
        # Off-diagonal weighted mask; the dense normalizer adds I itself,
        # the sparse one expects the loop entries stored with value 1.
        n = 7
        mask = relations(n).binary_adjacency()
        weighted = rng.standard_normal((n, n)) * (mask != 0)
        dense = normalize_weighted_adjacency(Tensor(weighted)).data
        sparse = normalize_sparse_adjacency(
            SparseTensor.from_dense(weighted + np.eye(n)))
        assert np.allclose(sparse.to_dense().data, dense, atol=1e-12)

    def test_requires_sparse_tensor(self):
        with pytest.raises(TypeError):
            normalize_sparse_adjacency(Tensor(np.eye(3)))


class TestStrategyEquivalence:
    def test_uniform(self, rng):
        dense, sparse = paired("uniform", rng)
        out = sparse()
        assert isinstance(out, SparseTensor)
        assert np.allclose(out.to_dense().data, dense().data, atol=1e-12)

    def test_weight_forward_and_backward(self, rng):
        dense, sparse = paired("weight", rng)
        dense_out, sparse_out = dense(), sparse()
        assert np.allclose(sparse_out.to_dense().data, dense_out.data,
                           atol=1e-12)
        (dense_out ** 2.0).sum().backward()
        (sparse_out.to_dense() ** 2.0).sum().backward()
        assert np.allclose(dense.weight.grad, sparse.weight.grad, atol=1e-9)
        assert np.allclose(dense.bias.grad, sparse.bias.grad, atol=1e-9)

    def test_time_forward_and_backward(self, rng):
        dense, sparse = paired("time", rng)
        feats = rng.standard_normal((3, 6, 4))
        x_dense = Tensor(feats.copy(), requires_grad=True)
        x_sparse = Tensor(feats.copy(), requires_grad=True)
        dense_out = dense(x_dense)
        sparse_out = sparse(x_sparse)
        assert np.allclose(sparse_out.to_dense().data, dense_out.data,
                           atol=1e-12)
        (dense_out ** 2.0).sum().backward()
        (sparse_out.to_dense() ** 2.0).sum().backward()
        assert np.allclose(dense.weight.grad, sparse.weight.grad, atol=1e-9)
        assert np.allclose(dense.bias.grad, sparse.bias.grad, atol=1e-9)
        assert np.allclose(x_dense.grad, x_sparse.grad, atol=1e-9)

    def test_rtgcn_forward_and_backward(self, rng):
        rel = relations()
        feats = rng.standard_normal((5, 6, 4))
        outs, grads = [], []
        for mode in ("dense", "sparse"):
            model = RTGCN(rel, num_features=4, strategy="time",
                          graph_mode=mode, rng=np.random.default_rng(11))
            x = Tensor(feats.copy(), requires_grad=True)
            out = model(x)
            (out ** 2.0).sum().backward()
            outs.append(out.data)
            grads.append([p.grad.copy() for p in model.parameters()]
                         + [x.grad.copy()])
        assert np.allclose(outs[0], outs[1], atol=1e-10)
        for g_dense, g_sparse in zip(*grads):
            assert np.allclose(g_dense, g_sparse, atol=1e-8)


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
class TestDispatch:
    def test_auto_resolves_by_density(self):
        rel = relations()
        # 10 undirected edges + 6 loops over 36 cells ≈ 0.44: stays dense.
        assert UniformStrategy(rel).resolved_mode() == "dense"
        # A generous threshold flips the same graph to the sparse path.
        sparse_auto = UniformStrategy(rel, density_threshold=0.9)
        assert sparse_auto.resolved_mode() == "sparse"
        assert isinstance(sparse_auto(), SparseTensor)

    def test_explicit_modes_override_density(self):
        rel = relations()
        assert UniformStrategy(rel, graph_mode="sparse") \
            .resolved_mode() == "sparse"
        assert UniformStrategy(rel, graph_mode="dense",
                               density_threshold=1.0) \
            .resolved_mode() == "dense"

    def test_invalid_mode_rejected_at_construction(self):
        with pytest.raises(ValueError, match="graph mode"):
            UniformStrategy(relations(), graph_mode="csr")

    def test_trainer_config_forces_mode(self, nasdaq_mini):
        model = RTGCN(nasdaq_mini.relations, num_features=4,
                      strategy="uniform", rng=np.random.default_rng(0))
        config = TrainConfig(epochs=1, graph_mode="sparse")
        Trainer(model, nasdaq_mini, config)
        strategy = model._modules["layer0"].relational.strategy
        assert strategy.graph_mode == "sparse"

    def test_trainer_auto_leaves_model_modes(self, nasdaq_mini):
        model = RTGCN(nasdaq_mini.relations, num_features=4,
                      strategy="uniform", graph_mode="dense",
                      rng=np.random.default_rng(0))
        Trainer(model, nasdaq_mini, TrainConfig(epochs=1))
        strategy = model._modules["layer0"].relational.strategy
        assert strategy.graph_mode == "dense"


# ----------------------------------------------------------------------
# the normalized-adjacency cache (satellite b)
# ----------------------------------------------------------------------
class TestAdjacencyCache:
    def test_normalize_once_per_distinct_graph(self, monkeypatch):
        """Regression: N forwards over one static graph normalize once."""
        calls = []
        original = strategies_module.normalize_adjacency
        monkeypatch.setattr(
            strategies_module, "normalize_adjacency",
            lambda *a, **k: calls.append(1) or original(*a, **k))
        rel = relations()
        first = UniformStrategy(rel)
        for _ in range(5):
            first()
        # A *second* model over the same relation set shares the entry.
        second = UniformStrategy(rel)
        second()
        assert len(calls) == 1

    def test_distinct_graphs_get_distinct_entries(self):
        a, b = relations(6), relations(7)
        UniformStrategy(a)()
        before = adjacency_cache().stats()["entries"]
        UniformStrategy(b)()
        assert adjacency_cache().stats()["entries"] == before + 1

    def test_structure_computed_once_across_strategies(self):
        rel = relations()
        WeightStrategy(rel, graph_mode="sparse")()
        misses = adjacency_cache().misses
        # The time strategy reuses the same CSR structure entry.
        s = TimeSensitiveStrategy(rel, graph_mode="sparse")
        s(Tensor(np.random.default_rng(0).standard_normal((2, 6, 3))))
        assert adjacency_cache().hits >= 1
        assert adjacency_cache().misses == misses

    def test_time_sensitive_invalidates_previous_step(self, rng):
        s = TimeSensitiveStrategy(relations())
        key = s.step_key(window=2)
        feats = rng.standard_normal((2, 6, 3))
        s(Tensor(feats))
        cached_first = adjacency_cache().get(key)
        assert cached_first is not None
        s(Tensor(feats * 2.0))
        cached_second = adjacency_cache().get(key)
        assert cached_second is not cached_first
        assert adjacency_cache().stats()["invalidations"] == 1

    def test_cached_per_step_entry_is_detached(self, rng):
        s = TimeSensitiveStrategy(relations())
        s(Tensor(rng.standard_normal((2, 6, 3)), requires_grad=True))
        cached = adjacency_cache().get(s.step_key(window=2))
        assert not cached.requires_grad

    def test_cache_token_tracks_content_not_identity(self):
        a, b = relations(), relations()
        assert a is not b
        assert a.cache_token() == b.cache_token()
        different = RelationMatrix.from_edges(
            6, ["industry:a", "wiki:b"], [(0, 1, 0), (1, 2, 1)])
        assert different.cache_token() != a.cache_token()

    def test_lru_bound_and_reset(self):
        cache = reset_adjacency_cache()
        cache.max_entries = 2
        for i in range(4):
            cache.put(("k", i), i)
        assert len(cache) == 2
        assert ("k", 3) in cache and ("k", 0) not in cache
        assert reset_adjacency_cache() is adjacency_cache()
        assert len(adjacency_cache()) == 0
