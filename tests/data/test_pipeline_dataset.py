"""Feature pipeline (§V-A steps 1–4), dataset object, market presets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (FEATURE_WINDOWS, WARMUP_DAYS, FeaturePanel,
                        MARKET_SPECS, available_markets, chronological_split,
                        compute_return_ratios, load_market, moving_average)


class TestMovingAverage:
    def test_constant_series(self):
        prices = np.full((2, 30), 5.0)
        ma = moving_average(prices, 5)
        assert np.allclose(ma[:, 4:], 5.0)
        assert np.isnan(ma[:, :4]).all()

    def test_matches_manual_mean(self, rng):
        prices = rng.uniform(1, 10, size=(1, 25))
        ma = moving_average(prices, 10)
        assert np.isclose(ma[0, 15], prices[0, 6:16].mean())

    def test_length_one_is_identity(self, rng):
        prices = rng.uniform(1, 10, size=(3, 12))
        assert np.allclose(moving_average(prices, 1), prices)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            moving_average(np.ones((1, 3)), 5)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            moving_average(np.ones((1, 10)), 0)


class TestReturnRatios:
    def test_eq_10(self):
        prices = np.array([[100.0, 110.0, 99.0]])
        r = compute_return_ratios(prices)
        assert np.isclose(r[0, 1], 0.10)
        assert np.isclose(r[0, 2], -0.10)
        assert r[0, 0] == 0.0

    def test_flat_prices_zero_returns(self):
        r = compute_return_ratios(np.full((2, 10), 42.0))
        assert np.allclose(r, 0.0)


class TestFeaturePanel:
    def make_panel(self, rng, stocks=4, days=80):
        prices = np.exp(rng.standard_normal((stocks, days)).cumsum(axis=1)
                        * 0.02 + 2.0)
        return FeaturePanel.from_prices(prices), prices

    def test_raw_layout(self, rng):
        panel, prices = self.make_panel(rng)
        assert panel.raw.shape == (4, 4, 80)
        assert np.allclose(panel.raw[0], prices)     # feature 0 = close

    def test_window_features_shape(self, rng):
        panel, _ = self.make_panel(rng)
        feats = panel.window_features(40, window=15, num_features=3)
        assert feats.shape == (15, 4, 3)

    def test_step1_normalization_anchor_is_one(self, rng):
        panel, _ = self.make_panel(rng)
        feats = panel.window_features(40, window=10)
        assert np.allclose(feats[-1, :, 0], 1.0)   # close / close_T = 1

    def test_no_future_leakage_in_features(self, rng):
        """Perturbing prices after day t must not change features at t."""
        panel, prices = self.make_panel(rng)
        feats_before = panel.window_features(40, window=10)
        bumped = prices.copy()
        bumped[:, 41:] *= 3.0
        panel2 = FeaturePanel.from_prices(bumped)
        feats_after = panel2.window_features(40, window=10)
        assert np.allclose(feats_before, feats_after)

    def test_first_valid_day(self, rng):
        panel, _ = self.make_panel(rng)
        assert panel.first_valid_day(15) == WARMUP_DAYS + 14
        with pytest.raises(ValueError):
            panel.window_features(panel.first_valid_day(15) - 1, 15)

    def test_day_out_of_range(self, rng):
        panel, _ = self.make_panel(rng)
        with pytest.raises(IndexError):
            panel.window_features(200, window=10)

    def test_invalid_feature_count(self, rng):
        panel, _ = self.make_panel(rng)
        with pytest.raises(ValueError):
            panel.window_features(40, window=10, num_features=5)

    def test_nonpositive_prices_rejected(self):
        with pytest.raises(ValueError):
            FeaturePanel.from_prices(np.zeros((2, 30)))

    def test_feature_windows_constant(self):
        assert FEATURE_WINDOWS == (1, 5, 10, 20)
        assert WARMUP_DAYS == 19


class TestChronologicalSplit:
    def test_no_overlap_and_ordered(self):
        train, test = chronological_split(300, 200, 50, window=15)
        assert len(train) == 200 and len(test) == 50
        assert max(train) < min(test)
        assert test[-1] == 298        # last labelable day

    def test_respects_warmup(self):
        train, test = chronological_split(300, 200, 50, window=15)
        assert min(train) >= WARMUP_DAYS + 14

    def test_too_many_days_rejected(self):
        with pytest.raises(ValueError):
            chronological_split(100, 90, 50, window=15)


class TestMarketPresets:
    def test_available_markets(self):
        names = available_markets()
        for expected in ["nasdaq", "nyse", "csi", "nasdaq-mini"]:
            assert expected in names

    def test_full_specs_match_table_ii_and_iii(self):
        nasdaq = MARKET_SPECS["nasdaq"]
        assert nasdaq.num_stocks == 854
        assert nasdaq.num_industries == 97
        assert nasdaq.wiki_types == 41
        assert nasdaq.train_days == 1295 and nasdaq.test_days == 207
        nyse = MARKET_SPECS["nyse"]
        assert nyse.num_stocks == 1405 and nyse.num_industries == 108
        csi = MARKET_SPECS["csi"]
        assert csi.num_stocks == 242 and csi.wiki_types is None
        assert csi.test_days == 139

    def test_unknown_market_rejected(self):
        with pytest.raises(KeyError):
            load_market("lse")

    def test_mini_dataset_consistency(self, nasdaq_mini):
        ds = nasdaq_mini
        assert ds.num_stocks == 48
        assert ds.wiki_relations is not None
        train, test = ds.split(15)
        assert len(train) == 220 and len(test) == 60
        assert max(train) < min(test)

    def test_csi_mini_has_no_wiki(self, csi_mini):
        assert csi_mini.wiki_relations is None
        assert csi_mini.relations is csi_mini.industry_relations
        with pytest.raises(KeyError):
            csi_mini.relations_of("wiki")

    def test_relations_of_sources(self, nasdaq_mini):
        industry = nasdaq_mini.relations_of("industry")
        wiki = nasdaq_mini.relations_of("wiki")
        both = nasdaq_mini.relations_of("all")
        assert both.num_types == industry.num_types + wiki.num_types
        with pytest.raises(ValueError):
            nasdaq_mini.relations_of("news")

    def test_same_seed_reproducible(self):
        a = load_market("csi-mini", seed=11)
        b = load_market("csi-mini", seed=11)
        assert np.allclose(a.prices, b.prices)
        assert a.universe.symbols == b.universe.symbols

    def test_different_seed_differs(self):
        a = load_market("csi-mini", seed=1)
        b = load_market("csi-mini", seed=2)
        assert not np.allclose(a.prices, b.prices)

    def test_spec_overrides(self):
        ds = load_market("csi-mini", seed=0,
                         spec_overrides={"train_days": 60})
        train, _ = ds.split(10)
        assert len(train) == 60

    def test_labels_match_return_ratios(self, nasdaq_mini):
        ds = nasdaq_mini
        _, test = ds.split(10)
        day = test[0]
        expected = ds.prices[:, day + 1] / ds.prices[:, day] - 1.0
        assert np.allclose(ds.label(day), expected)

    def test_label_of_last_day_rejected(self, nasdaq_mini):
        with pytest.raises(IndexError):
            nasdaq_mini.label(nasdaq_mini.num_days - 1)

    def test_samples_iterator(self, nasdaq_mini):
        days = nasdaq_mini.split(10)[0][:3]
        samples = list(nasdaq_mini.samples(days, window=10, num_features=2))
        assert len(samples) == 3
        day, feats, label = samples[0]
        assert feats.shape == (10, 48, 2)
        assert label.shape == (48,)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=60, max_value=200),
       st.integers(min_value=5, max_value=20),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_split_partition_property(num_days, window, seed):
    """Train/test partition the tail of usable days without overlap."""
    rng = np.random.default_rng(seed)
    first = WARMUP_DAYS + window - 1
    usable = num_days - 1 - first
    if usable < 4:
        return
    train_n = int(rng.integers(1, usable - 2))
    test_n = int(rng.integers(1, usable - train_n))
    train, test = chronological_split(num_days, train_n, test_n, window)
    assert len(set(train) & set(test)) == 0
    assert all(t >= first for t in train + test)
    assert all(t + 1 < num_days for t in train + test)
