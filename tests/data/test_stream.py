"""StreamingMarket: determinism, fingerprints, event semantics, regimes.

The stream is a seed-deterministic *recording*: two markets built from
equal scenarios must be event-for-event identical, and the per-day
deltas must reconstruct exactly the adjacency the generator tracked —
the property the delta-update equivalence suite and the store's
fingerprint dedup both stand on.
"""

import json

import numpy as np
import pytest

from repro.data import (SCENARIOS, DayEvents, HypergraphRelations,
                        StreamingMarket, StreamScenario, flash_crash,
                        get_scenario, low_vol_grind, sector_rotation)
from repro.data.stream import MIN_EDGE_WEIGHT
from repro.graph import DynamicNormalizedAdjacency


@pytest.fixture(scope="module")
def smoke_market():
    return StreamingMarket(get_scenario("smoke"))


class TestDeterminism:
    def test_equal_scenarios_replay_identically(self, smoke_market):
        twin = StreamingMarket(get_scenario("smoke"))
        for a, b in zip(smoke_market.replay(), twin.replay()):
            assert a.day == b.day
            assert a.regime == b.regime
            assert a.deltas == b.deltas
            assert a.edges == b.edges
            assert a.listings == b.listings
            assert a.market_return == b.market_return
        np.testing.assert_array_equal(smoke_market.returns, twin.returns)

    def test_different_seed_changes_the_stream(self):
        base = StreamingMarket(get_scenario("smoke"))
        other = StreamingMarket(get_scenario("smoke", seed=99))
        assert any(a.deltas != b.deltas
                   for a, b in zip(base.replay(), other.replay()))

    def test_replay_is_repeatable(self, smoke_market):
        first = [ev.deltas for ev in smoke_market.replay()]
        second = [ev.deltas for ev in smoke_market.replay()]
        assert first == second


class TestFingerprints:
    def test_fingerprint_is_stable_and_seed_sensitive(self):
        a = get_scenario("default")
        assert a.fingerprint() == get_scenario("default").fingerprint()
        assert a.fingerprint() != get_scenario(
            "default", seed=1).fingerprint()
        assert a.fingerprint() != get_scenario("smoke").fingerprint()

    def test_all_presets_validate_and_differ(self):
        prints = {name: scenario.fingerprint()
                  for name, scenario in SCENARIOS.items()}
        assert len(set(prints.values())) == len(prints)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("warp-speed")

    def test_invalid_overrides_rejected(self):
        with pytest.raises(ValueError, match="num_stocks"):
            get_scenario("smoke", num_stocks=2)
        with pytest.raises(ValueError, match="base_density"):
            get_scenario("smoke", base_density=0.0)


class TestEventSemantics:
    def test_deltas_reconstruct_tracked_adjacency(self, smoke_market):
        # replaying the deltas through the dynamic graph must land on
        # adjacency_at(day) for every day — deltas are complete
        dynamic = DynamicNormalizedAdjacency(
            smoke_market.base_adjacency(), mode="csr")
        eye = np.eye(smoke_market.scenario.num_stocks)
        for events in smoke_market.replay():
            dynamic.apply_delta(events.deltas)
            np.testing.assert_array_equal(
                dynamic.unnormalized_dense() - eye,
                smoke_market.adjacency_at(events.day))

    def test_no_weight_below_minimum_survives(self, smoke_market):
        for events in smoke_market.replay():
            for _, _, weight in events.deltas:
                assert weight == 0.0 or weight >= MIN_EDGE_WEIGHT

    def test_payload_is_json_safe_and_round_trips(self, smoke_market):
        events = next(iter(smoke_market.replay()))
        payload = events.to_payload()
        decoded = json.loads(json.dumps(payload))
        assert decoded == payload
        assert decoded["day"] == events.day
        assert [tuple(d) for d in decoded["deltas"]] == [
            (int(i), int(j), float(w)) for i, j, w in events.deltas]

    def test_delist_frees_slot_and_listing_reuses_it(self):
        # high listing churn so both directions occur in a short run
        market = StreamingMarket(get_scenario(
            "smoke", listing_rate=0.9, num_days=20))
        delisted, listed = [], []
        for events in market.replay():
            for ev in events.listings:
                (delisted if ev.action == "delist" else listed).append(ev)
        assert delisted, "no delist event generated"
        assert listed, "no listing event generated"
        reused = {ev.slot for ev in delisted} & {ev.slot for ev in listed}
        assert reused, "no freed slot was reused"
        assert all(ev.symbol.startswith("NEW") for ev in listed)

    def test_mna_collapses_target_relations(self):
        market = StreamingMarket(get_scenario("smoke", mna_rate=1.0))
        merges = [edge for events in market.replay()
                  for edge in events.edges if edge.kind == "merge"]
        assert merges, "no M&A event at rate 1.0"
        # each merge day ends with one strong owned_by edge
        strong = [e for e in merges if e.weight == 2.5]
        assert strong and all(e.relation == "wiki:owned_by"
                              for e in strong)


class TestRegimes:
    def test_scripted_phases_cover_their_days(self):
        scenario = get_scenario("smoke")
        regimes = [ev.regime for ev in
                   StreamingMarket(scenario).replay()]
        assert regimes[3] == "flash_crash" and regimes[4] == "flash_crash"
        assert regimes[6] == "low_vol_grind"
        assert regimes[0] == "calm"

    def test_flash_crash_days_draw_down(self):
        market = StreamingMarket(get_scenario("default"))
        crash_days = [ev.day for ev in market.replay()
                      if ev.regime == "flash_crash"]
        calm_days = [ev.day for ev in market.replay()
                     if ev.regime == "calm"]
        crash_ret = np.mean([market.events[d].market_return
                             for d in crash_days])
        calm_ret = np.mean([market.events[d].market_return
                            for d in calm_days])
        assert crash_ret < -0.02 < calm_ret

    def test_low_vol_grind_is_quieter_than_calm(self):
        market = StreamingMarket(get_scenario("default"))
        by_regime = {}
        for ev in market.replay():
            by_regime.setdefault(ev.regime, []).append(
                market.returns[:, ev.day])
        grind = np.std(np.concatenate(by_regime["low_vol_grind"]))
        calm = np.std(np.concatenate(by_regime["calm"]))
        assert grind < calm

    def test_phase_constructors(self):
        assert flash_crash(3).covers(4) and not flash_crash(3).covers(5)
        assert sector_rotation(0).rotation
        assert low_vol_grind(2).vol_multiplier < 1.0

    def test_invalid_regime_rejected(self):
        from repro.data import RegimePhase
        with pytest.raises(ValueError, match="empty or negative"):
            StreamScenario(name="bad",
                           regimes=(RegimePhase("x", 0, 0),))


class TestHypergraphMode:
    def test_clique_expansion_matches_incidence_product(self):
        market = StreamingMarket(get_scenario("smoke", hypergraph=True))
        hyper = market.hypergraph
        assert hyper is not None
        clique = hyper.clique_adjacency()
        np.testing.assert_array_equal(clique, clique.T)
        assert np.all(np.diag(clique) == 0)
        # membership in a shared industry <=> nonzero clique entry
        incidence = hyper.incidence
        shared = incidence @ incidence.T
        np.fill_diagonal(shared, 0.0)
        np.testing.assert_array_equal(clique != 0, shared != 0)

    def test_incidence_is_asymptotically_smaller(self):
        market = StreamingMarket(get_scenario("smoke", hypergraph=True))
        stats = market.hypergraph.stats()
        assert stats["incidence_nnz"] < stats["clique_nnz"]
        assert stats["compression"] > 1.0

    def test_disabled_by_default(self, smoke_market):
        assert smoke_market.hypergraph is None


class TestSummary:
    def test_summary_counts_every_event(self, smoke_market):
        summary = smoke_market.summary()
        assert summary["num_stocks"] == 24
        assert summary["edge_events"] == sum(
            len(ev.edges) for ev in smoke_market.replay())
        assert summary["fingerprint"] == \
            smoke_market.scenario.fingerprint()
        assert set(summary["event_kinds"]) <= {"add", "decay", "remove",
                                               "merge"}

    def test_day_events_default_factories_are_independent(self):
        a, b = DayEvents(day=0, regime="calm"), DayEvents(day=1,
                                                          regime="calm")
        a.deltas.append((0, 1, 1.0))
        assert b.deltas == []
