"""The factor-model market simulator: structure of the generated returns."""

import numpy as np
import pytest

from repro.data import (CrashEvent, DirectedInfluence, SimulationConfig,
                        build_wiki_relations, generate_universe,
                        simulate_market)


def small_universe(seed=0):
    return generate_universe("X", 40, 5, 0.15, rng=np.random.default_rng(seed))


def simulate(seed=0, influences=(), config=None):
    return simulate_market(small_universe(seed), list(influences),
                           config=config, rng=np.random.default_rng(seed))


class TestBasics:
    def test_shapes(self):
        cfg = SimulationConfig(num_days=100)
        market = simulate(config=cfg)
        assert market.prices.shape == (40, 100)
        assert market.returns.shape == (40, 100)
        assert market.market_factor.shape == (100,)

    def test_prices_positive(self):
        market = simulate(config=SimulationConfig(num_days=300))
        assert np.all(market.prices > 0)

    def test_prices_consistent_with_returns(self):
        market = simulate(config=SimulationConfig(num_days=50))
        recon = market.prices[:, 0:1] * np.exp(
            np.cumsum(market.returns[:, 1:], axis=1))
        assert np.allclose(recon, market.prices[:, 1:])

    def test_deterministic_given_seed(self):
        a = simulate(seed=3, config=SimulationConfig(num_days=60))
        b = simulate(seed=3, config=SimulationConfig(num_days=60))
        assert np.allclose(a.prices, b.prices)

    def test_different_seeds_differ(self):
        a = simulate(seed=1, config=SimulationConfig(num_days=60))
        b = simulate(seed=2, config=SimulationConfig(num_days=60))
        assert not np.allclose(a.prices, b.prices)

    def test_daily_volatility_reasonable(self):
        market = simulate(config=SimulationConfig(num_days=800))
        vol = market.returns[:, 1:].std()
        assert 0.005 < vol < 0.05    # ~0.5%–5% daily, equity-like

    def test_too_few_days_rejected(self):
        with pytest.raises(ValueError):
            simulate(config=SimulationConfig(num_days=1))


class TestFactorStructure:
    def test_same_industry_stocks_correlate_more(self):
        market = simulate(config=SimulationConfig(num_days=1000))
        universe = small_universe()
        industries = universe.industries()
        corr = np.corrcoef(market.returns[:, 1:])
        same, diff = [], []
        labels = [s.industry for s in universe.stocks]
        n = len(universe)
        for i in range(n):
            for j in range(i + 1, n):
                (same if labels[i] == labels[j] else diff).append(corr[i, j])
        assert np.mean(same) > np.mean(diff) + 0.05

    def test_market_factor_moves_everything(self):
        market = simulate(config=SimulationConfig(num_days=1000))
        corr_with_market = [
            np.corrcoef(market.returns[i, 1:],
                        market.market_factor[1:])[0, 1]
            for i in range(market.num_stocks)]
        assert np.mean(corr_with_market) > 0.2

    def test_industry_factor_autocorrelated(self):
        market = simulate(config=SimulationConfig(num_days=2000))
        factor = market.industry_factors[0]
        auto = np.corrcoef(factor[:-1], factor[1:])[0, 1]
        assert auto > 0.1   # AR(1) with φ=0.3


class TestSpillovers:
    def test_lead_lag_effect_present(self):
        influences = [DirectedInfluence(source=0, target=1, strength=0.4)]
        market = simulate(influences=influences,
                          config=SimulationConfig(num_days=3000))
        lagged = np.corrcoef(market.returns[0, 1:-1],
                             market.returns[1, 2:])[0, 1]
        reverse = np.corrcoef(market.returns[1, 1:-1],
                              market.returns[0, 2:])[0, 1]
        assert lagged > reverse + 0.05   # direction matters

    def test_no_spillover_without_influences(self):
        market = simulate(config=SimulationConfig(num_days=3000))
        lagged = np.corrcoef(market.returns[0, 1:-1],
                             market.returns[1, 2:])[0, 1]
        assert abs(lagged) < 0.1


class TestCrash:
    def test_crash_depresses_market(self):
        crash = CrashEvent(start=200, crash_days=20, recovery_days=40)
        cfg = SimulationConfig(num_days=300, crash=crash)
        market = simulate(config=cfg)
        crash_mean = market.market_factor[200:220].mean()
        normal_mean = market.market_factor[50:190].mean()
        assert crash_mean < normal_mean - 0.005

    def test_recovery_lifts_market(self):
        crash = CrashEvent(start=100, crash_days=15, recovery_days=60)
        cfg = SimulationConfig(num_days=250, crash=crash)
        market = simulate(config=cfg)
        recovery = market.market_factor[115:175].mean()
        assert recovery > 0.0

    def test_crash_raises_volatility(self):
        crash = CrashEvent(start=300, crash_days=40, recovery_days=0,
                           vol_multiplier=3.0)
        cfg = SimulationConfig(num_days=400, crash=crash)
        market = simulate(config=cfg)
        crash_vol = market.market_factor[300:340].std()
        normal_vol = market.market_factor[50:290].std()
        assert crash_vol > normal_vol * 1.5

    def test_drift_and_vol_outside_windows_is_none(self):
        crash = CrashEvent(start=10, crash_days=5, recovery_days=5)
        assert crash.drift_and_vol(0) is None
        assert crash.drift_and_vol(12) is not None
        assert crash.drift_and_vol(17) is not None
        assert crash.drift_and_vol(25) is None


class TestWithWikiInfluences:
    def test_integrates_with_relation_builder(self):
        universe = small_universe(7)
        wiki = build_wiki_relations(universe, 4, 0.03,
                                    rng=np.random.default_rng(8))
        market = simulate_market(universe, wiki.influences,
                                 config=SimulationConfig(num_days=120),
                                 rng=np.random.default_rng(9))
        assert market.prices.shape == (40, 120)
        assert np.isfinite(market.prices).all()
