"""Universe generation and relation builders (Table III statistics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (allocate_group_sizes, build_industry_relations,
                        build_wiki_relations, generate_universe,
                        industry_name_pool, pair_ratio_of_sizes,
                        wiki_type_pool)


class TestGroupAllocation:
    def test_sizes_sum_to_total(self):
        sizes = allocate_group_sizes(100, 12, 0.08)
        assert sum(sizes) == 100
        assert len(sizes) == 12

    def test_all_groups_non_empty(self):
        sizes = allocate_group_sizes(50, 20, 0.05)
        assert min(sizes) >= 1

    def test_hits_target_ratio_approximately(self):
        for n, k, target in [(854, 97, 0.054), (1405, 108, 0.069),
                             (242, 24, 0.067)]:
            sizes = allocate_group_sizes(n, k, target)
            ratio = pair_ratio_of_sizes(sizes, n)
            assert abs(ratio - target) / target < 0.15, (n, k, ratio)

    def test_impossible_split_rejected(self):
        with pytest.raises(ValueError):
            allocate_group_sizes(5, 10, 0.1)

    def test_zero_groups_rejected(self):
        with pytest.raises(ValueError):
            allocate_group_sizes(5, 0, 0.1)

    def test_pair_ratio_extremes(self):
        assert pair_ratio_of_sizes([10], 10) == 1.0
        assert pair_ratio_of_sizes([1] * 10, 10) == 0.0


class TestNamePools:
    def test_industry_pool_unique(self):
        names = industry_name_pool(120)
        assert len(names) == len(set(names)) == 120

    def test_wiki_pool_unique_and_prefixed(self):
        names = wiki_type_pool(41)
        assert len(set(names)) == 41
        assert all(n.startswith("wiki:") for n in names)


class TestUniverse:
    def test_basic_shape(self):
        u = generate_universe("NASDAQ", 60, 8, 0.07,
                              rng=np.random.default_rng(0))
        assert len(u) == 60
        assert len(set(u.symbols)) == 60
        assert len(u.industries()) == 8

    def test_industry_pair_ratio_near_target(self):
        u = generate_universe("NYSE", 200, 20, 0.06,
                              rng=np.random.default_rng(1))
        assert abs(u.industry_pair_ratio() - 0.06) < 0.02

    def test_market_caps_positive(self):
        u = generate_universe("CSI", 30, 5, 0.08,
                              rng=np.random.default_rng(2))
        assert np.all(u.market_caps > 0)

    def test_members_shuffled(self):
        u = generate_universe("X", 50, 5, 0.1, rng=np.random.default_rng(3))
        first_industry = u[0].industry
        # With shuffling, the first 10 stocks should not all share one
        # industry (probability of that is negligible).
        assert len({u[i].industry for i in range(10)}) > 1

    def test_deterministic_given_seed(self):
        a = generate_universe("X", 40, 6, 0.08, rng=np.random.default_rng(9))
        b = generate_universe("X", 40, 6, 0.08, rng=np.random.default_rng(9))
        assert a.symbols == b.symbols
        assert [s.industry for s in a.stocks] == [s.industry for s in b.stocks]


class TestIndustryRelations:
    def test_same_industry_connected(self):
        u = generate_universe("X", 30, 4, 0.2, rng=np.random.default_rng(0))
        rel = build_industry_relations(u)
        members = next(iter(u.industries().values()))
        if len(members) >= 2:
            i, j = members[0], members[1]
            assert rel.binary_adjacency()[i, j] == 1.0

    def test_different_industries_not_connected(self):
        u = generate_universe("X", 30, 4, 0.2, rng=np.random.default_rng(0))
        rel = build_industry_relations(u)
        industries = u.industries()
        names = list(industries)
        i = industries[names[0]][0]
        j = industries[names[1]][0]
        assert rel.binary_adjacency()[i, j] == 0.0

    def test_one_type_per_industry(self):
        u = generate_universe("X", 30, 6, 0.15, rng=np.random.default_rng(1))
        rel = build_industry_relations(u)
        assert rel.num_types == 6
        assert all(name.startswith("industry:") for name in rel.type_names)

    def test_ratio_matches_universe(self):
        u = generate_universe("X", 80, 10, 0.07, rng=np.random.default_rng(2))
        rel = build_industry_relations(u)
        assert np.isclose(rel.relation_ratio(), u.industry_pair_ratio())


class TestWikiRelations:
    def test_type_count_and_ratio(self):
        u = generate_universe("X", 120, 10, 0.06,
                              rng=np.random.default_rng(0))
        wiki = build_wiki_relations(u, 12, 0.01,
                                    rng=np.random.default_rng(1))
        assert wiki.matrix.num_types == 12
        assert abs(wiki.matrix.relation_ratio() - 0.01) < 0.005

    def test_every_type_used(self):
        u = generate_universe("X", 100, 8, 0.05, rng=np.random.default_rng(2))
        wiki = build_wiki_relations(u, 10, 0.02,
                                    rng=np.random.default_rng(3))
        usage = wiki.matrix.type_usage()
        assert all(count >= 1 for count in usage.values())

    def test_influences_reference_valid_stocks(self):
        u = generate_universe("X", 50, 6, 0.06, rng=np.random.default_rng(4))
        wiki = build_wiki_relations(u, 5, 0.02, rng=np.random.default_rng(5))
        for inf in wiki.influences:
            assert 0 <= inf.source < 50
            assert 0 <= inf.target < 50
            assert inf.source != inf.target
            assert 0.25 <= inf.strength <= 0.60

    def test_influences_follow_matrix_edges(self):
        u = generate_universe("X", 40, 5, 0.08, rng=np.random.default_rng(6))
        wiki = build_wiki_relations(u, 4, 0.03, rng=np.random.default_rng(7))
        adj = wiki.matrix.binary_adjacency()
        for inf in wiki.influences:
            assert adj[inf.source, inf.target] == 1.0

    def test_invalid_type_count(self):
        u = generate_universe("X", 10, 2, 0.3, rng=np.random.default_rng(8))
        with pytest.raises(ValueError):
            build_wiki_relations(u, 0, 0.01)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=20, max_value=120),
       st.integers(min_value=2, max_value=10),
       st.floats(min_value=0.02, max_value=0.3))
def test_group_allocation_is_feasible_and_exact(n, k, target):
    if n < k:
        n = k
    sizes = allocate_group_sizes(n, k, target)
    assert sum(sizes) == n
    assert len(sizes) == k
    assert min(sizes) >= 1
