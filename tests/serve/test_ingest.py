"""POST /v1/ingest: delta updates, tick-budget fallback, per-op SLO rows.

Built on the blessed ``build(ServeConfig(...))`` threaded stack against
the shared trained checkpoint; the streaming scenario indices are scaled
to the served universe the same way ``repro.cli stream`` does.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.graph import reset_adjacency_cache
from repro.serve import ServeConfig, build


@pytest.fixture(autouse=True)
def fresh_cache():
    yield reset_adjacency_cache()
    reset_adjacency_cache()


def post_json(base, path, payload, timeout=30):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


@pytest.fixture
def served(serving_ckpt_dir):
    handle = build(ServeConfig(checkpoint_dir=str(serving_ckpt_dir),
                               port=0))
    handle.start()
    host, port = handle.address
    try:
        yield handle, f"http://{host}:{port}"
    finally:
        handle.close()


class TestIngestHTTP:
    def test_tick_applies_deltas_and_reranks(self, served):
        handle, base = served
        payload = {"day": 0, "regime": "calm",
                   "deltas": [[0, 1, 0.9], [2, 3, 1.1]],
                   "listings": [], "market_return": 0.001}
        result = post_json(base, "/v1/ingest", payload)
        assert result["op"] == "ingest"
        assert result["applied_edits"] == 2
        assert result["touched_rows"] > 0
        assert result["fallback"] is False
        assert result["day"] == 0
        assert len(result["ranking"]) == 10
        ranks = [entry["rank"] for entry in result["ranking"]]
        assert ranks == list(range(1, 11))
        assert result["graph"]["edits_applied"] == 2

    def test_second_tick_accumulates_state(self, served):
        handle, base = served
        post_json(base, "/v1/ingest", {"day": 0,
                                       "deltas": [[0, 1, 0.9]]})
        result = post_json(base, "/v1/ingest",
                           {"day": 1, "deltas": [[0, 1, 0.0]]})
        assert result["ticks"] == 2
        assert result["graph"]["edits_applied"] == 2
        # stream stats surface through /v1/stats
        with urllib.request.urlopen(base + "/v1/stats",
                                    timeout=30) as response:
            stats = json.load(response)
        versions = stats["stream"]["versions"]
        (state,) = versions.values()
        assert state["ticks"] == 2
        assert state["last_day"] == 1

    def test_empty_body_ticks_without_edits(self, served):
        handle, base = served
        result = post_json(base, "/v1/ingest", {})
        assert result["applied_edits"] == 0
        assert result["fallback"] is False
        assert result["ranking"]

    def test_out_of_range_delta_is_bad_request(self, served):
        handle, base = served
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(base, "/v1/ingest",
                      {"day": 0, "deltas": [[0, 10_000, 1.0]]})
        assert err.value.code == 400
        body = json.load(err.value)
        assert body["error"]["code"] == "bad_request"
        assert "universe" in body["error"]["message"]

    def test_invalid_json_body_is_bad_request(self, served):
        handle, base = served
        request = urllib.request.Request(
            base + "/v1/ingest", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        assert json.load(err.value)["error"]["code"] == "bad_request"

    def test_malformed_delta_shape_is_bad_request(self, served):
        handle, base = served
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(base, "/v1/ingest", {"deltas": [[1, 2]]})
        assert err.value.code == 400


class TestTickBudget:
    def test_overrun_serves_last_ranking_as_fallback(self, serving_ckpt_dir):
        # A budget far below one forward pass: tick 1 has no previous
        # ranking so it computes fresh (late but not a fallback); tick 2
        # overruns with a ranking in hand and falls back to it.
        handle = build(ServeConfig(checkpoint_dir=str(serving_ckpt_dir),
                                   port=0, tick_budget_ms=0.0001))
        handle.start()
        host, port = handle.address
        base = f"http://{host}:{port}"
        try:
            first = post_json(base, "/v1/ingest",
                              {"day": 0, "deltas": [[0, 1, 0.8]]})
            assert first["fallback"] is False
            assert first["overrun"] is True
            assert first["ranking"]
            second = post_json(base, "/v1/ingest",
                               {"day": 1, "deltas": [[0, 1, 1.2]]})
            assert second["fallback"] is True
            assert second["fallbacks"] == 1
            # the stale ranking is byte-identical to tick 1's
            assert second["ranking"] == first["ranking"]
            # the graph delta still landed despite the fallback
            assert second["graph"]["edits_applied"] == 2
        finally:
            handle.close()

    def test_budget_validation(self, tmp_path):
        with pytest.raises(ValueError, match="tick_budget_ms"):
            ServeConfig(checkpoint_dir=str(tmp_path), tick_budget_ms=0)
        with pytest.raises(ValueError, match="stream_alpha"):
            ServeConfig(checkpoint_dir=str(tmp_path), stream_alpha=1.5)


class TestIngestTelemetryAndSLO:
    def test_per_op_slo_rows_include_ingest(self, serving_ckpt_dir,
                                            tmp_path):
        db = tmp_path / "exp.sqlite"
        handle = build(ServeConfig(checkpoint_dir=str(serving_ckpt_dir),
                                   port=0, slo_p99_ms=2000.0,
                                   store=str(db)))
        handle.start()
        host, port = handle.address
        base = f"http://{host}:{port}"
        try:
            for day in range(3):
                post_json(base, "/v1/ingest",
                          {"day": day, "deltas": [[0, 1, 0.5 + day]]})
            snapshot = handle.telemetry.snapshot()
            assert snapshot["per_op"]["ingest"]["requests"] == 3
        finally:
            handle.close()
        from repro.store import ExperimentStore
        with ExperimentStore(db) as store:
            rows = store.execute(
                "SELECT op, requests FROM slo WHERE op = 'ingest'")
            assert len(rows) == 1
            assert rows[0]["requests"] == 3
