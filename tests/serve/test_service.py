"""RankingService: ranking ops, coalescing, timeout fallback, telemetry."""

import threading

import numpy as np
import pytest

from repro.serve import ServiceTimeoutError
from repro.serve.registry import ModelRegistry
from repro.serve.service import RankingService


@pytest.fixture()
def service(serving_ckpt_dir):
    with RankingService(serving_ckpt_dir, max_batch=16,
                        max_wait_ms=2.0) as svc:
        yield svc


class TestRankingOps:
    def test_predict_scores_covers_universe(self, service):
        out = service.predict_scores()
        symbols = service.engine().dataset.universe.symbols
        assert set(out["scores"]) == set(symbols)
        assert out["model"] == "RT-GCN (T)"
        assert out["stale"] is False

    def test_top_k_sorted_best_first(self, service):
        out = service.top_k(k=5)
        scores = [row["score"] for row in out["top_k"]]
        assert scores == sorted(scores, reverse=True)
        assert [row["rank"] for row in out["top_k"]] == [1, 2, 3, 4, 5]

    def test_top_k_clamped_to_universe(self, service):
        out = service.top_k(k=10_000)
        assert out["k"] == service.engine().dataset.num_stocks

    def test_top_k_rejects_nonpositive(self, service):
        with pytest.raises(ValueError, match="k must be"):
            service.top_k(k=0)

    def test_rank_universe_is_permutation(self, service):
        out = service.rank_universe()
        n = service.engine().dataset.num_stocks
        assert sorted(row["rank"] for row in out["ranking"]) == \
            list(range(1, n + 1))

    def test_rank_delta_consistent(self, service):
        out = service.rank_delta(day=100)
        assert out["day"] == 100 and out["prior_day"] == 99
        for row in out["deltas"]:
            assert row["delta"] == row["prior_rank"] - row["rank"]

    def test_rank_delta_needs_prior_day(self, service):
        window = service.engine().servable.window
        with pytest.raises(ValueError, match="prior"):
            service.rank_delta(day=window - 1)

    def test_matches_direct_engine_scores(self, service):
        # The batched path returns exactly what a direct forward does.
        out = service.predict_scores(day=150)
        direct = service.engine().scores(150)
        symbols = service.engine().dataset.universe.symbols
        assert out["scores"] == {s: float(v)
                                 for s, v in zip(symbols, direct)}


class TestCoalescingUnderLoad:
    def test_concurrent_identical_requests_coalesce(self, service):
        results = []
        barrier = threading.Barrier(8)

        def client():
            barrier.wait(timeout=10.0)
            results.append(service.top_k(k=3, day=200))

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert len(results) == 8
        first = results[0]["top_k"]
        assert all(r["top_k"] == first for r in results)
        snap = service.telemetry.snapshot()
        assert snap["requests"] == 8
        assert snap["batches"] < 8           # some requests shared a pass


class TestTimeoutFallback:
    def test_timeout_without_history_raises(self, serving_ckpt_dir):
        service = RankingService(serving_ckpt_dir, max_wait_ms=0.0)
        # Stall the compute path so the deadline always fires.
        service._batcher._compute = lambda key: threading.Event().wait(60)
        try:
            with pytest.raises(ServiceTimeoutError, match="nothing"):
                service.predict_scores(timeout=0.05)
        finally:
            service._batcher._compute = lambda key: np.zeros(1)
            service.close()

    def test_timeout_falls_back_to_last_served(self, serving_ckpt_dir):
        service = RankingService(serving_ckpt_dir, max_wait_ms=0.0)
        try:
            fresh = service.predict_scores(day=120)     # seeds history
            real_compute = service._batcher._compute
            service._batcher._compute = \
                lambda key: threading.Event().wait(60)
            stale = service.predict_scores(day=120, timeout=0.05)
            assert stale["stale"] is True
            assert stale["scores"] == fresh["scores"]
            snap = service.telemetry.snapshot()
            assert snap["fallbacks"] == 1
            service._batcher._compute = real_compute
        finally:
            service.close()

    def test_closed_service_rejects_requests(self, serving_ckpt_dir):
        service = RankingService(serving_ckpt_dir)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.top_k()


class TestStats:
    def test_stats_combines_all_layers(self, service):
        service.top_k(k=3)
        stats = service.stats()
        assert stats["requests"] >= 1
        assert stats["registry"]["loaded"] == ["best"]
        assert stats["engines"][0]["version"] == "best"
        assert "depth" in stats["queue"]
        assert stats["latency_seconds"]["p95"] >= \
            stats["latency_seconds"]["p50"] >= 0
