"""`repro.cli stream`: scenario replay against a live server + dedup.

Runs the real CLI entry point against an in-process threaded server, so
the whole loop — scenario adaptation to the served universe, per-day
POSTs, store recording, fingerprint dedup — is exercised end to end.
"""

import json
import urllib.request

import pytest

from repro.cli import main
from repro.data import get_scenario
from repro.graph import reset_adjacency_cache
from repro.serve import ServeConfig, build
from repro.store import ExperimentStore


@pytest.fixture(autouse=True)
def fresh_cache():
    yield reset_adjacency_cache()
    reset_adjacency_cache()


@pytest.fixture
def served(serving_ckpt_dir):
    handle = build(ServeConfig(checkpoint_dir=str(serving_ckpt_dir),
                               port=0))
    handle.start()
    host, port = handle.address
    try:
        yield handle, host, port
    finally:
        handle.close()


class TestStreamReplayCLI:
    def test_replay_records_report_and_slo(self, served, tmp_path,
                                           capsys):
        handle, host, port = served
        db = tmp_path / "exp.sqlite"
        rc = main(["stream", "--scenario", "smoke", "--host", host,
                   "--port", str(port), "--store", str(db)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "12 tick(s)" in out
        assert "0 fallback(s)" in out

        with urllib.request.urlopen(
                f"http://{host}:{port}/v1/scores", timeout=30) as resp:
            universe = len(json.load(resp)["scores"])
        fingerprint = get_scenario(
            "smoke", num_stocks=universe).fingerprint()
        report_id = f"stream-{fingerprint[:16]}"
        assert report_id in out

        with ExperimentStore(db) as store:
            telemetry = store.execute(
                "SELECT kind, report_id FROM telemetry")
            assert [(r["kind"], r["report_id"]) for r in telemetry] == [
                ("stream", report_id)]
            slo = store.execute(
                "SELECT source, op, requests FROM slo"
                " WHERE source = 'stream-client'")
            assert len(slo) == 1
            assert slo[0]["op"] == "ingest"
            assert slo[0]["requests"] == 12

    def test_second_replay_dedups_by_fingerprint(self, served, tmp_path,
                                                 capsys):
        handle, host, port = served
        db = tmp_path / "exp.sqlite"
        args = ["stream", "--scenario", "smoke", "--host", host,
                "--port", str(port), "--store", str(db)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "already replayed" in out
        # still exactly one recorded replay
        with ExperimentStore(db) as store:
            assert store.execute(
                "SELECT COUNT(*) AS n FROM telemetry")[0]["n"] == 1

    def test_no_dedup_forces_rerun(self, served, tmp_path, capsys):
        handle, host, port = served
        db = tmp_path / "exp.sqlite"
        args = ["stream", "--scenario", "smoke", "--host", host,
                "--port", str(port), "--store", str(db)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--no-dedup"]) == 0
        out = capsys.readouterr().out
        assert "already replayed" not in out
        assert "tick(s)" in out
        with ExperimentStore(db) as store:
            # report UPSERTs on report_id, so still one telemetry row,
            # but a second stream-client slo window was appended
            assert store.execute(
                "SELECT COUNT(*) AS n FROM telemetry")[0]["n"] == 1
            slo = store.execute(
                "SELECT COUNT(*) AS n FROM slo"
                " WHERE source = 'stream-client'")
            assert slo[0]["n"] == 2

    def test_seed_override_changes_fingerprint(self, served, tmp_path,
                                               capsys):
        handle, host, port = served
        db = tmp_path / "exp.sqlite"
        base = ["stream", "--scenario", "smoke", "--host", host,
                "--port", str(port), "--store", str(db)]
        assert main(base) == 0
        assert main(base + ["--seed", "42"]) == 0
        capsys.readouterr()
        with ExperimentStore(db) as store:
            assert store.execute(
                "SELECT COUNT(*) AS n FROM telemetry")[0]["n"] == 2

    def test_unreachable_server_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit, match="stream failed"):
            main(["stream", "--scenario", "smoke", "--host", "127.0.0.1",
                  "--port", "1", "--timeout", "2"])
