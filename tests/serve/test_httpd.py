"""HTTP endpoint: routing, JSON shapes, error statuses."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve._deprecation import sanctioned
from repro.serve.httpd import RankingHTTPServer
from repro.serve.service import RankingService


@pytest.fixture(scope="module")
def server(serving_ckpt_dir):
    # Module-scoped, so it sets up before the autouse sanction fixture.
    with sanctioned():
        service = RankingService(serving_ckpt_dir, max_wait_ms=2.0)
        httpd = RankingHTTPServer(("127.0.0.1", 0), service)  # ephemeral port
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=10.0)


def get(server, path):
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=30.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRoutes:
    def test_health(self, server):
        status, payload = get(server, "/health")
        assert status == 200
        assert payload["status"] == "ok"

    def test_models_lists_archives(self, server):
        status, payload = get(server, "/v1/models")
        assert status == 200
        versions = [m["version"] for m in payload["models"]]
        assert versions == ["best", "ckpt-e0000-b000000"]

    def test_top_k_shape(self, server):
        status, payload = get(server, "/v1/top_k?k=4")
        assert status == 200
        assert payload["k"] == 4
        assert [r["rank"] for r in payload["top_k"]] == [1, 2, 3, 4]
        assert all(isinstance(r["symbol"], str) for r in payload["top_k"])

    def test_scores_with_version_and_day(self, server):
        status, payload = get(
            server, "/v1/scores?version=best&day=200")
        assert status == 200
        assert payload["version"] == "best" and payload["day"] == 200

    def test_rank_and_delta(self, server):
        status, rank = get(server, "/v1/rank")
        assert status == 200 and rank["ranking"]
        status, delta = get(server, "/v1/delta?day=100")
        assert status == 200 and delta["prior_day"] == 99

    def test_stats(self, server):
        status, payload = get(server, "/v1/stats")
        assert status == 200
        assert "latency_seconds" in payload
        assert "batch_size_histogram" in payload


class TestErrorStatuses:
    def test_unknown_route_404(self, server):
        status, payload = get(server, "/v2/everything")
        assert status == 404 and "error" in payload

    def test_unknown_version_404(self, server):
        status, payload = get(server, "/v1/top_k?version=ghost")
        assert status == 404
        assert "ghost" in payload["error"]["message"]

    def test_bad_day_400(self, server):
        status, payload = get(server, "/v1/scores?day=1")
        assert status == 400
        assert payload["error"]["type"] == "ValueError"

    def test_non_integer_param_400(self, server):
        status, payload = get(server, "/v1/top_k?k=lots")
        assert status == 400
        assert "integer" in payload["error"]["message"]
