"""MicroBatcher: coalescing, error routing, shutdown, backpressure."""

import threading
import time
from concurrent.futures import wait

import pytest

from repro.serve import BatcherClosedError
from repro.serve.batcher import MicroBatcher
from repro.serve.telemetry import ServingTelemetry


class CountingCompute:
    """Stub compute that records every call and can be slowed down."""

    def __init__(self, delay=0.0):
        self.calls = []
        self.delay = delay
        self._lock = threading.Lock()

    def __call__(self, key):
        with self._lock:
            self.calls.append(key)
        if self.delay:
            time.sleep(self.delay)
        return ("result", key)


class TestCoalescing:
    def test_single_request_round_trips(self):
        compute = CountingCompute()
        with MicroBatcher(compute, max_wait_ms=1.0) as batcher:
            assert batcher.submit("k").result(timeout=5.0) == \
                ("result", "k")
        assert compute.calls == ["k"]

    def test_same_key_requests_share_one_compute(self):
        # Slow first forward: requests piling up behind it coalesce into
        # the next batch and resolve from a single compute call.
        compute = CountingCompute(delay=0.05)
        with MicroBatcher(compute, max_batch=64,
                          max_wait_ms=20.0) as batcher:
            futures = [batcher.submit("hot") for _ in range(16)]
            results = {f.result(timeout=10.0) for f in futures}
        assert results == {("result", "hot")}
        assert len(compute.calls) < 16       # genuinely coalesced

    def test_distinct_keys_each_computed(self):
        compute = CountingCompute()
        with MicroBatcher(compute, max_wait_ms=10.0) as batcher:
            futures = {key: batcher.submit(key) for key in "abc"}
            for key, future in futures.items():
                assert future.result(timeout=5.0) == ("result", key)
        assert sorted(compute.calls) == ["a", "b", "c"]

    def test_zero_wait_is_unbatched_baseline(self):
        compute = CountingCompute()
        with MicroBatcher(compute, max_batch=1,
                          max_wait_ms=0.0) as batcher:
            futures = [batcher.submit("k") for _ in range(5)]
            wait(futures, timeout=10.0)
        assert len(compute.calls) == 5       # one forward per request

    def test_batch_telemetry_recorded(self):
        telemetry = ServingTelemetry()
        compute = CountingCompute(delay=0.05)
        with MicroBatcher(compute, max_batch=64, max_wait_ms=20.0,
                          telemetry=telemetry) as batcher:
            futures = [batcher.submit("hot") for _ in range(8)]
            wait(futures, timeout=10.0)
        snap = telemetry.snapshot()
        assert snap["batches"] == len(compute.calls)
        assert sum(int(k) * v for k, v
                   in snap["batch_size_histogram"].items()) == 8


class TestErrors:
    def test_compute_error_routed_to_all_waiters(self):
        def explode(key):
            raise ValueError(f"bad key {key}")

        with MicroBatcher(explode, max_wait_ms=10.0) as batcher:
            futures = [batcher.submit("k") for _ in range(3)]
            for future in futures:
                with pytest.raises(ValueError, match="bad key"):
                    future.result(timeout=5.0)

    def test_error_on_one_key_spares_others(self):
        def picky(key):
            if key == "bad":
                raise RuntimeError("nope")
            return key

        with MicroBatcher(picky, max_batch=8, max_wait_ms=30.0) as batcher:
            good = batcher.submit("good")
            bad = batcher.submit("bad")
            assert good.result(timeout=5.0) == "good"
            with pytest.raises(RuntimeError):
                bad.result(timeout=5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(lambda k: k, max_batch=0)
        with pytest.raises(ValueError, match="workers"):
            MicroBatcher(lambda k: k, workers=0)


class TestShutdown:
    def test_close_drains_queued_work(self):
        compute = CountingCompute(delay=0.02)
        batcher = MicroBatcher(compute, max_batch=4, max_wait_ms=5.0)
        futures = [batcher.submit(i) for i in range(8)]
        batcher.close(timeout=30.0)
        for i, future in enumerate(futures):
            assert future.result(timeout=1.0) == ("result", i)

    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(lambda k: k)
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.submit("k")

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(lambda k: k)
        batcher.close()
        batcher.close()

    def test_workers_exit_after_close(self):
        batcher = MicroBatcher(lambda k: k, workers=3)
        batcher.submit("k").result(timeout=5.0)
        batcher.close(timeout=10.0)
        assert not any(w.is_alive() for w in batcher._workers)
