"""Shared fixtures for the serving tests: one trained checkpoint dir.

Training even a tiny RT-GCN dominates test wall-clock, so one session-
scoped directory with a briefly-trained, metadata-stamped checkpoint is
shared by the registry/engine/service/httpd tests (all of which only
read it).
"""

import numpy as np
import pytest

from repro.ckpt import TrainingCheckpoint, save
from repro.core import RTGCN, TrainConfig, Trainer


@pytest.fixture(scope="session")
def serving_ckpt_dir(tmp_path_factory, csi_mini):
    directory = tmp_path_factory.mktemp("serving-ckpts")
    config = TrainConfig(window=6, epochs=1, max_train_days=10, seed=3)
    model = RTGCN(csi_mini.relations, num_features=config.num_features,
                  strategy="time", relational_filters=4,
                  rng=np.random.default_rng(42))
    trainer = Trainer(model, csi_mini, config)
    trainer.run()
    checkpoint = trainer.state_dict()
    checkpoint.metadata = {"model": "RT-GCN (T)", "market": "csi-mini"}
    save(checkpoint, directory / "best.npz")

    # A second, untrained version so multi-version tests have something
    # distinct to load (different scores, same architecture).
    fresh = RTGCN(csi_mini.relations, num_features=config.num_features,
                  strategy="time", relational_filters=4,
                  rng=np.random.default_rng(7))
    save(TrainingCheckpoint(
        model_state=fresh.state_dict(),
        cursor={"epoch": 0, "batch_index": 0},
        config={"window": 6, "num_features": 4, "seed": 3},
        model_class="RTGCN",
        metadata={"model": "RT-GCN (T)", "market": "csi-mini"}),
        directory / "ckpt-e0000-b000000.npz")
    return directory


@pytest.fixture(autouse=True)
def _sanctioned_layer_tests():
    """These are white-box tests of the serving layers build() composes;
    construct them the way the blessed factory does — under sanctioned()
    — now that direct construction raises LegacyRemovedError."""
    from repro.serve._deprecation import sanctioned
    with sanctioned():
        yield
