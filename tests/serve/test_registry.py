"""ModelRegistry: discovery, verification, reconstruction, LRU budget."""

import numpy as np
import pytest

from repro.ckpt import TrainingCheckpoint, corrupt_archive, save
from repro.core import RTGCN
from repro.serve import (RegistryError, infer_rtgcn_architecture,
                         resolve_strategy)
from repro.serve.registry import ModelRegistry


class TestDiscovery:
    def test_discover_lists_versions(self, serving_ckpt_dir):
        registry = ModelRegistry(serving_ckpt_dir)
        assert registry.discover() == ["best", "ckpt-e0000-b000000"]

    def test_empty_directory(self, tmp_path):
        assert ModelRegistry(tmp_path / "nope").discover() == []

    def test_default_version_prefers_best(self, serving_ckpt_dir):
        assert ModelRegistry(serving_ckpt_dir).default_version() == "best"

    def test_default_version_newest_periodic_without_best(self, tmp_path,
                                                          csi_mini):
        model = RTGCN(csi_mini.relations, strategy="uniform",
                      relational_filters=4, rng=np.random.default_rng(0))
        for name in ["ckpt-e0000-b000005.npz", "ckpt-e0002-b000001.npz"]:
            save(TrainingCheckpoint(
                model_state=model.state_dict(),
                cursor={"epoch": 0, "batch_index": 0},
                metadata={"market": "csi-mini"}), tmp_path / name)
        assert (ModelRegistry(tmp_path).default_version()
                == "ckpt-e0002-b000001")

    def test_unknown_version_lists_available(self, serving_ckpt_dir):
        registry = ModelRegistry(serving_ckpt_dir)
        with pytest.raises(RegistryError, match="available"):
            registry.path_of("nope")

    def test_describe_verifies_checksum(self, serving_ckpt_dir, tmp_path):
        registry = ModelRegistry(serving_ckpt_dir)
        meta = registry.describe("best")
        assert meta["version"] == "best"
        assert meta["user"]["model"] == "RT-GCN (T)"
        assert meta["bytes"] > 0

    def test_describe_rejects_corrupt(self, serving_ckpt_dir, tmp_path):
        import shutil
        bad_dir = tmp_path / "bad"
        shutil.copytree(serving_ckpt_dir, bad_dir)
        corrupt_archive(bad_dir / "best.npz", mode="flip")
        with pytest.raises(RegistryError, match="verification"):
            ModelRegistry(bad_dir).describe("best")


class TestReconstruction:
    def test_load_reconstructs_trained_model(self, serving_ckpt_dir):
        registry = ModelRegistry(serving_ckpt_dir)
        servable = registry.load("best")
        assert servable.model_name == "RT-GCN (T)"
        assert servable.strategy == "time"
        assert servable.dataset.market == "CSI-mini"
        assert servable.nbytes > 0
        # reconstructed weights match the archive bitwise
        from repro.ckpt import load as load_archive
        state = load_archive(servable.path).model_state
        for key, value in servable.model.state_dict().items():
            assert np.array_equal(value, state[key]), key

    def test_architecture_inferred_from_shapes(self, csi_mini):
        model = RTGCN(csi_mini.relations, strategy="time", num_layers=2,
                      relational_filters=8, temporal_kernel=5,
                      rng=np.random.default_rng(0))
        arch = infer_rtgcn_architecture(model.state_dict())
        assert arch["num_layers"] == 2
        assert arch["relational_filters"] == 8
        assert arch["temporal_kernel"] == 5
        assert arch["use_relational"] and arch["use_temporal"]
        assert arch["num_features"] == 4

    def test_non_rtgcn_state_rejected(self):
        with pytest.raises(RegistryError, match="RTGCN"):
            infer_rtgcn_architecture({"fc.weight": np.ones((4, 4))})

    def test_strategy_from_metadata(self, csi_mini):
        model = RTGCN(csi_mini.relations, strategy="weight",
                      rng=np.random.default_rng(0))
        ckpt = TrainingCheckpoint(model_state=model.state_dict(),
                                  cursor={"epoch": 0, "batch_index": 0},
                                  metadata={"model": "RT-GCN (W)"})
        assert resolve_strategy(ckpt) == ("RT-GCN (W)", "weight")

    def test_uniform_inferable_without_metadata(self, csi_mini):
        # No strategy parameters in the state dict pins it to uniform.
        model = RTGCN(csi_mini.relations, strategy="uniform",
                      rng=np.random.default_rng(0))
        ckpt = TrainingCheckpoint(model_state=model.state_dict(),
                                  cursor={"epoch": 0, "batch_index": 0})
        assert resolve_strategy(ckpt) == ("RT-GCN (U)", "uniform")

    def test_ambiguous_strategy_requires_name(self, csi_mini):
        # weight- and time-strategy parameters are shape-identical, so an
        # unnamed non-uniform checkpoint must refuse to guess.
        model = RTGCN(csi_mini.relations, strategy="time",
                      rng=np.random.default_rng(0))
        ckpt = TrainingCheckpoint(model_state=model.state_dict(),
                                  cursor={"epoch": 0, "batch_index": 0})
        with pytest.raises(RegistryError, match="explicitly"):
            resolve_strategy(ckpt)
        assert resolve_strategy(ckpt, "RT-GCN (T)") == ("RT-GCN (T)",
                                                        "time")

    def test_unknown_model_name_rejected(self, csi_mini):
        model = RTGCN(csi_mini.relations, strategy="time",
                      rng=np.random.default_rng(0))
        ckpt = TrainingCheckpoint(model_state=model.state_dict(),
                                  cursor={"epoch": 0, "batch_index": 0},
                                  metadata={"model": "LSTM"})
        with pytest.raises(RegistryError, match="servable"):
            resolve_strategy(ckpt)

    def test_missing_market_needs_override(self, tmp_path, csi_mini):
        model = RTGCN(csi_mini.relations, strategy="uniform",
                      rng=np.random.default_rng(0))
        save(TrainingCheckpoint(model_state=model.state_dict(),
                                cursor={"epoch": 0, "batch_index": 0}),
             tmp_path / "bare.npz")
        with pytest.raises(RegistryError, match="market"):
            ModelRegistry(tmp_path).load("bare")
        servable = ModelRegistry(tmp_path,
                                 market="csi-mini").load("bare")
        assert servable.dataset.market == "CSI-mini"


class TestLRUBudget:
    def test_cache_hit_skips_reload(self, serving_ckpt_dir):
        registry = ModelRegistry(serving_ckpt_dir)
        first = registry.load("best")
        assert registry.load("best") is first
        assert registry.hits == 1 and registry.loads == 1

    def test_budget_evicts_least_recently_used(self, serving_ckpt_dir):
        registry = ModelRegistry(serving_ckpt_dir)
        per_model = registry.load("best").nbytes
        registry.evict("best")
        # room for exactly one model: loading the second evicts the first
        registry.memory_budget_bytes = int(per_model * 1.5)
        registry.load("best")
        registry.load("ckpt-e0000-b000000")
        assert registry.loaded_versions() == ["ckpt-e0000-b000000"]
        assert registry.evictions >= 1

    def test_newest_load_kept_even_over_budget(self, serving_ckpt_dir):
        registry = ModelRegistry(serving_ckpt_dir,
                                 memory_budget_bytes=1)
        servable = registry.load("best")
        assert registry.loaded_versions() == ["best"]
        assert servable.nbytes > 1

    def test_warm_and_evict(self, serving_ckpt_dir):
        registry = ModelRegistry(serving_ckpt_dir)
        assert registry.warm() == ["best"]
        assert registry.evict("best") is True
        assert registry.evict("best") is False
        assert registry.loaded_versions() == []

    def test_stats_shape(self, serving_ckpt_dir):
        registry = ModelRegistry(serving_ckpt_dir)
        registry.load("best")
        stats = registry.stats()
        assert stats["loaded"] == ["best"]
        assert stats["resident_bytes"] > 0
        assert set(stats) >= {"available", "loads", "hits", "evictions"}

    def test_versions_share_dataset_object(self, serving_ckpt_dir):
        registry = ModelRegistry(serving_ckpt_dir)
        a = registry.load("best")
        b = registry.load("ckpt-e0000-b000000")
        assert a.dataset is b.dataset
