"""ServingTelemetry: percentile rollups, histograms, schema-v1 reports."""

import json
import threading

from repro.obs.metrics import validate_report
from repro.serve import ServingTelemetry


class TestRecording:
    def test_latency_percentiles_ordered(self):
        telemetry = ServingTelemetry()
        for ms in range(1, 101):
            telemetry.record_request("top_k", ms / 1000.0)
        latency = telemetry.snapshot()["latency_seconds"]
        assert latency["count"] == 100
        assert latency["p50"] <= latency["p95"] <= latency["p99"] \
            <= latency["max"]
        assert abs(latency["p50"] - 0.0505) < 0.002

    def test_batch_histogram_and_mean(self):
        telemetry = ServingTelemetry()
        telemetry.record_batch(1, 0.01)
        telemetry.record_batch(4, 0.02)
        telemetry.record_batch(4, 0.02)
        snap = telemetry.snapshot()
        assert snap["batch_size_histogram"] == {"1": 1, "4": 2}
        assert snap["mean_batch_size"] == 3.0
        assert abs(snap["forward_seconds"] - 0.05) < 1e-9

    def test_errors_and_fallbacks_counted(self):
        telemetry = ServingTelemetry()
        telemetry.record_request("scores", 0.01, fallback=True)
        telemetry.record_error("scores")
        snap = telemetry.snapshot()
        assert snap["fallbacks"] == 1 and snap["errors"] == 1
        assert snap["ops"] == {"scores": 2}

    def test_sample_window_bounded(self):
        telemetry = ServingTelemetry(max_samples=10)
        for i in range(50):
            telemetry.record_request("op", float(i))
        assert telemetry.snapshot()["latency_seconds"]["count"] == 10

    def test_thread_safe_recording(self):
        telemetry = ServingTelemetry()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait(timeout=10.0)
            for _ in range(500):
                telemetry.record_request("op", 0.001, queue_depth=1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert telemetry.snapshot()["requests"] == 8 * 500


class TestSchemaV1Report:
    def test_report_validates_and_serializes(self):
        telemetry = ServingTelemetry()
        telemetry.record_request("top_k", 0.005, queue_depth=2)
        telemetry.record_batch(3, 0.004)
        report = telemetry.report(config={"market": "csi-mini"})
        payload = report.to_dict()
        validate_report(payload)               # schema-v1 contract
        assert payload["kind"] == "serving"
        assert payload["metrics"]["requests"] == 1.0
        assert payload["metrics"]["latency_p50_seconds"] == 0.005
        assert payload["config"]["market"] == "csi-mini"
        serving = payload["config"]["serving"]
        assert serving["batch_size_histogram"] == {"3": 1}
        json.dumps(payload)                    # JSON-serializable end-to-end

    def test_run_id_generated_with_serve_prefix(self):
        report = ServingTelemetry().report()
        assert report.run_id.startswith("serve")
