"""ServingCluster: forked workers, shared weights, admission, crash retry.

These tests fork real worker processes and speak real HTTP, so they are
the slowest in the serve suite; they share the session-scoped checkpoint
fixture and keep request counts small.
"""

import json
import multiprocessing
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import ServeConfig, build
from repro.serve.shm import shm_available

pytestmark = pytest.mark.skipif(
    not (shm_available()
         and "fork" in multiprocessing.get_all_start_methods()),
    reason="cluster mode needs fork + shared_memory")


@pytest.fixture(scope="module")
def cluster(serving_ckpt_dir):
    handle = build(ServeConfig(checkpoint_dir=str(serving_ckpt_dir),
                               port=0, mode="cluster", cluster_workers=2,
                               slo_p99_ms=1000.0, crash_retries=1,
                               watch_interval_s=30.0))
    handle.start()
    yield handle
    handle.close()


def _get(handle, path):
    host, port = handle.address
    with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                timeout=60) as resp:
        return resp.status, dict(resp.headers), json.load(resp)


class TestClusterServing:
    def test_health_reports_both_workers(self, cluster):
        status, _, health = _get(cluster, "/v1/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["mode"] == "cluster"
        assert health["alive"] == 2

    def test_scores_match_inprocess_engine_bitwise(self, cluster):
        _, _, body = _get(cluster, "/v1/scores")
        assert body["generation"] == 0
        engine = cluster.service.engine()
        expected = engine.scores(None)
        symbols = engine.dataset.universe.symbols
        got = np.array([body["scores"][s] for s in symbols])
        assert np.array_equal(got, expected)

    def test_top_k_and_rank(self, cluster):
        _, _, topk = _get(cluster, "/v1/top_k?k=3")
        assert [row["rank"] for row in topk["top_k"]] == [1, 2, 3]
        _, _, rank = _get(cluster, "/v1/rank")
        assert rank["ranking"][0]["rank"] == 1
        assert rank["ranking"][0]["symbol"] == topk["top_k"][0]["symbol"]

    def test_unversioned_alias_carries_deprecation_headers(self, cluster):
        status, headers, body = _get(cluster, "/scores")
        assert status == 200 and body["scores"]
        assert headers.get("Deprecation") == "true"
        assert "/v1/scores" in headers.get("Link", "")

    def test_error_envelope_is_uniform(self, cluster):
        host, port = cluster.address
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"http://{host}:{port}/v1/top_k?k=zebra", timeout=60)
        body = json.load(err.value)
        assert err.value.code == 400
        assert set(body["error"]) >= {"code", "message", "retry_after"}
        assert body["error"]["code"] == "bad_request"

    def test_unknown_route_is_not_found(self, cluster):
        host, port = cluster.address
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"http://{host}:{port}/v1/nope",
                                   timeout=60)
        assert err.value.code == 404
        assert json.load(err.value)["error"]["code"] == "not_found"

    def test_stats_exposes_cluster_block_and_slo(self, cluster):
        _, _, stats = _get(cluster, "/v1/stats")
        assert stats["cluster"]["workers"] == 2
        assert stats["cluster"]["max_queue"] == 256
        assert stats["slo"]["target_p99_ms"] == 1000.0

    def test_request_survives_worker_crash(self, cluster):
        victim = cluster.cluster._handles[0]
        victim.process.kill()
        victim.process.join(timeout=10)
        # crash_retries=1: when the dead worker's proxy pulls a request
        # it hits the closed pipe, respawns the worker, and requeues, so
        # every request is still answered.  Health is served by the
        # parent, so keep sending ranking requests until the dead proxy
        # drew one and respawned.
        deadline_alive = False
        for _ in range(50):
            status, _, body = _get(cluster, "/v1/scores")
            assert status == 200 and body["scores"]
            _, _, health = _get(cluster, "/v1/health")
            if health["alive"] == 2:
                deadline_alive = True
                break
        assert deadline_alive, "killed worker was never respawned"
