"""ServeConfig validation + the blessed build() factory (threaded mode)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import SERVE_MODES, ServeConfig, ServeHandle, build


class TestServeConfigValidation:
    def test_defaults_are_threaded(self, tmp_path):
        config = ServeConfig(checkpoint_dir=str(tmp_path))
        assert config.mode == "threaded"
        assert config.mode in SERVE_MODES

    def test_empty_checkpoint_dir_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            ServeConfig(checkpoint_dir="")

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            ServeConfig(checkpoint_dir=str(tmp_path), mode="warp")

    def test_zero_cluster_workers_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cluster_workers"):
            ServeConfig(checkpoint_dir=str(tmp_path), cluster_workers=0)

    def test_zero_max_queue_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_queue"):
            ServeConfig(checkpoint_dir=str(tmp_path), max_queue=0)

    def test_negative_crash_retries_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="crash_retries"):
            ServeConfig(checkpoint_dir=str(tmp_path), crash_retries=-1)

    def test_memory_budget_bytes(self, tmp_path):
        config = ServeConfig(checkpoint_dir=str(tmp_path),
                             memory_budget_mb=2)
        assert config.memory_budget_bytes == 2 * 1024 * 1024
        assert ServeConfig(
            checkpoint_dir=str(tmp_path)).memory_budget_bytes is None

    def test_to_dict_from_dict_round_trip(self, tmp_path):
        config = ServeConfig(checkpoint_dir=str(tmp_path), mode="cluster",
                             cluster_workers=3, slo_p99_ms=50.0)
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self, tmp_path):
        with pytest.raises(ValueError, match="unknown"):
            ServeConfig.from_dict({"checkpoint_dir": str(tmp_path),
                                   "turbo": True})


class TestBuildThreaded:
    def test_build_returns_handle_with_server(self, serving_ckpt_dir):
        handle = build(ServeConfig(checkpoint_dir=str(serving_ckpt_dir),
                                   port=0))
        try:
            assert isinstance(handle, ServeHandle)
            assert handle.server is not None
            assert handle.cluster is None
            assert handle.config.mode == "threaded"
        finally:
            handle.close()

    def test_close_is_idempotent(self, serving_ckpt_dir):
        handle = build(ServeConfig(checkpoint_dir=str(serving_ckpt_dir),
                                   port=0))
        handle.close()
        handle.close()

    def test_slo_threaded_round_trip_over_http(self, serving_ckpt_dir,
                                               tmp_path):
        db = tmp_path / "exp.sqlite"
        with build(ServeConfig(checkpoint_dir=str(serving_ckpt_dir),
                               port=0, slo_p99_ms=500.0,
                               store=str(db))) as handle:
            handle.start()
            host, port = handle.address
            base = f"http://{host}:{port}"
            with urllib.request.urlopen(base + "/v1/scores",
                                        timeout=30) as resp:
                scores = json.load(resp)
            assert scores["scores"]
            # unversioned alias answers with deprecation headers
            with urllib.request.urlopen(base + "/scores",
                                        timeout=30) as resp:
                assert resp.headers["Deprecation"] == "true"
                assert "/v1/scores" in resp.headers["Link"]
            # uniform error envelope
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(base + "/v1/top_k?k=zebra",
                                       timeout=30)
            body = json.load(err.value)
            assert err.value.code == 400
            assert body["error"]["code"] == "bad_request"
            assert body["error"]["retry_after"] is None
            snapshot = handle.telemetry.snapshot()
            assert snapshot["slo"]["target_p99_ms"] == 500.0
        # store got one aggregate SLO row (op NULL) plus per-endpoint rows
        from repro.store import ExperimentStore
        with ExperimentStore(db) as store:
            rows = store.execute(
                "SELECT source, op, target_p99_ms FROM slo")
            assert all(r["source"] == "serve-threaded" for r in rows)
            assert all(r["target_p99_ms"] == 500.0 for r in rows)
            aggregate = [r for r in rows if r["op"] is None]
            assert len(aggregate) == 1
            per_op = {r["op"] for r in rows if r["op"] is not None}
            assert "scores" in per_op        # canonical endpoint labels
            assert "predict_scores" not in per_op
