"""Hot model reload: promote a new best mid-load, drop zero requests.

The acceptance bar from PR 8: while a closed-loop client hammers the
cluster, overwriting ``best.npz`` must (a) be picked up by the watcher
without restarting anything, (b) never fail an in-flight request, and
(c) leave the served scores bitwise-identical to a fresh
``InferenceEngine`` on the new checkpoint.
"""

import json
import multiprocessing
import shutil
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.ckpt import TrainingCheckpoint, save
from repro.core import RTGCN
from repro.serve import ServeConfig, build
from repro.serve._deprecation import sanctioned
from repro.serve.engine import InferenceEngine
from repro.serve.registry import build_servable
from repro.serve.shm import shm_available

pytestmark = pytest.mark.skipif(
    not (shm_available()
         and "fork" in multiprocessing.get_all_start_methods()),
    reason="cluster mode needs fork + shared_memory")


@pytest.fixture
def swap_ckpt_dir(serving_ckpt_dir, tmp_path):
    """A private copy of the trained checkpoint (the test overwrites it)."""
    directory = tmp_path / "ckpts"
    directory.mkdir()
    shutil.copy(serving_ckpt_dir / "best.npz", directory / "best.npz")
    return directory


def _new_best(csi_mini, path, seed):
    fresh = RTGCN(csi_mini.relations, num_features=4, strategy="time",
                  relational_filters=4, rng=np.random.default_rng(seed))
    save(TrainingCheckpoint(
        model_state=fresh.state_dict(),
        cursor={"epoch": 0, "batch_index": 0},
        config={"window": 6, "num_features": 4, "seed": 3},
        model_class="RTGCN",
        metadata={"model": "RT-GCN (T)", "market": "csi-mini"}), path)


def test_hot_swap_drops_nothing_and_scores_bitwise(swap_ckpt_dir,
                                                   csi_mini):
    handle = build(ServeConfig(checkpoint_dir=str(swap_ckpt_dir), port=0,
                               mode="cluster", cluster_workers=2,
                               watch_interval_s=0.2,
                               default_timeout=60.0))
    handle.start()
    host, port = handle.address
    base = f"http://{host}:{port}"

    def get_scores():
        with urllib.request.urlopen(base + "/v1/scores",
                                    timeout=60) as resp:
            return json.load(resp)

    results = []          # (generation, scores) per completed request
    failures = []
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            try:
                body = get_scores()
                results.append((body["generation"], body["scores"]))
            except Exception as exc:      # noqa: BLE001 - drop counter
                failures.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(3)]
    try:
        first = get_scores()
        assert first["generation"] == 0
        for thread in threads:
            thread.start()
        time.sleep(0.5)                   # load running against gen 0

        # promote a new best mid-load
        _new_best(csi_mini, swap_ckpt_dir / "best.npz", seed=99)
        deadline = time.monotonic() + 30
        swapped = None
        while time.monotonic() < deadline:
            body = get_scores()
            if body["generation"] > 0:
                swapped = body
                break
            time.sleep(0.1)
        assert swapped is not None, "watcher never promoted the new best"
        time.sleep(0.5)                   # load running against gen 1
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        handle.close()

    # (b) zero dropped in-flight requests across the swap
    assert not failures, failures[:3]
    generations = {generation for generation, _ in results}
    assert generations == {0, 1}, generations

    # (c) post-swap scores bitwise-equal to a fresh engine on the new file
    with sanctioned():
        servable = build_servable(swap_ckpt_dir / "best.npz", "best")
        engine = InferenceEngine(servable)
    expected = engine.scores(None)
    symbols = engine.dataset.universe.symbols
    for generation, scores in results:
        if generation == 1:
            got = np.array([scores[s] for s in symbols])
            assert np.array_equal(got, expected)
    assert swapped["scores"] != first["scores"]
