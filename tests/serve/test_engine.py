"""InferenceEngine: tape-free forwards, graph-mode dispatch, day ranges."""

import numpy as np
import pytest

from repro.serve.engine import InferenceEngine
from repro.serve.registry import ModelRegistry
from repro.tensor import tape_node_count


@pytest.fixture()
def servable(serving_ckpt_dir):
    return ModelRegistry(serving_ckpt_dir).load("best")


class TestScoring:
    def test_scores_shape_and_dtype(self, servable):
        engine = InferenceEngine(servable)
        scores = engine.scores()
        assert scores.shape == (servable.dataset.num_stocks,)
        assert scores.dtype == float
        assert np.all(np.isfinite(scores))

    def test_deterministic_across_calls(self, servable):
        engine = InferenceEngine(servable)
        assert np.array_equal(engine.scores(100), engine.scores(100))

    def test_day_defaults_to_latest(self, servable):
        engine = InferenceEngine(servable)
        latest = servable.dataset.num_days - 1
        assert engine.resolve_day(None) == latest
        assert np.array_equal(engine.scores(), engine.scores(latest))

    def test_negative_day_counts_from_end(self, servable):
        engine = InferenceEngine(servable)
        assert engine.resolve_day(-1) == servable.dataset.num_days - 1

    def test_day_outside_window_rejected(self, servable):
        engine = InferenceEngine(servable)
        with pytest.raises(ValueError, match="servable range"):
            engine.scores(0)          # no full lookback window yet
        with pytest.raises(ValueError, match="servable range"):
            engine.scores(servable.dataset.num_days)


class TestNoAutogradAllocation:
    def test_serving_forward_allocates_no_tape(self, servable):
        """Acceptance criterion: serving forwards build zero tape nodes."""
        engine = InferenceEngine(servable)
        engine.scores()                        # warm any lazy caches
        before = tape_node_count()
        for day in (50, 100, 150, None):
            engine.scores(day)
        assert tape_node_count() == before

    def test_training_forward_does_allocate(self, servable):
        # Sanity check that the counter would catch a regression: the
        # same model, forwarded outside inference mode, builds a tape.
        from repro.tensor import Tensor
        features = servable.dataset.features(100, servable.window,
                                             servable.num_features)
        model = servable.model
        model.train()
        try:
            before = tape_node_count()
            model(Tensor(features))
            assert tape_node_count() > before
        finally:
            model.eval()


class TestGraphModeDispatch:
    def test_sparse_scores_bitwise_equal_dense(self, serving_ckpt_dir):
        """Acceptance criterion: the same checkpoint served in sparse
        mode returns bitwise-identical scores to dense mode."""
        # Two registries so each engine owns its model instance; sharing
        # one would let the second set_graph_mode win for both.
        dense = InferenceEngine(
            ModelRegistry(serving_ckpt_dir).load("best"),
            graph_mode="dense")
        sparse = InferenceEngine(
            ModelRegistry(serving_ckpt_dir).load("best"),
            graph_mode="sparse")
        dense_modes = {getattr(m, "graph_mode", None)
                       for m in dense.model.modules()
                       if hasattr(m, "graph_mode")}
        assert dense_modes == {"dense"}
        for day in (30, 100, None):
            d, s = dense.scores(day), sparse.scores(day)
            assert d.tobytes() == s.tobytes()

    def test_engine_applies_registered_graph_mode(self, servable):
        engine = InferenceEngine(servable, graph_mode="sparse")
        modes = {getattr(m, "graph_mode", None)
                 for m in servable.model.modules()
                 if hasattr(m, "graph_mode")}
        assert modes == {"sparse"}
        assert engine.graph_mode == "sparse"

    def test_stats_count_forwards(self, servable):
        engine = InferenceEngine(servable)
        engine.scores()
        engine.scores(100)
        stats = engine.stats()
        assert stats["forwards"] == 2
        assert stats["forward_seconds"] > 0
        assert stats["version"] == "best"
