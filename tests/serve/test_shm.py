"""Generation-tagged shared-memory weights: publish/attach/adopt/retire."""

import numpy as np
import pytest

from repro.serve.shm import (SharedWeightReader, SharedWeightStore,
                             adopt_views, attach_state, publish_state,
                             shm_available)

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="multiprocessing.shared_memory "
                                       "unavailable")


def _state(seed):
    rng = np.random.default_rng(seed)
    return {"w": rng.standard_normal((4, 3)),
            "b": rng.standard_normal(3),
            "scalar": np.float64(seed)}


@pytest.fixture
def base_name():
    import os
    return f"repro-test-shm-{os.getpid()}"


class TestPublishAttach:
    def test_round_trip_is_bitwise(self, base_name):
        state = _state(1)
        published = publish_state(state, f"{base_name}-rt",
                                  generation=0, version="best")
        attached = attach_state(f"{base_name}-rt")
        try:
            for key, value in state.items():
                view = attached.views()[key]
                expected = np.asarray(value)
                assert view.shape == expected.shape    # 0-d stays 0-d
                assert np.array_equal(view, expected)
            assert attached.version == "best"
            assert attached.generation == 0
        finally:
            del view                     # drop buffer export before close
            attached.close()
            published.unlink()
            published.close()

    def test_views_are_read_only(self, base_name):
        published = publish_state(_state(2), f"{base_name}-ro",
                                  generation=0)
        try:
            view = published.views()["w"]
            with pytest.raises((ValueError, TypeError)):
                view[0, 0] = 99.0
            del view                     # drop buffer export before close
        finally:
            published.unlink()
            published.close()


class TestStoreReader:
    def test_generations_advance_and_retire(self, base_name):
        store = SharedWeightStore(base_name=f"{base_name}-gen", keep=2)
        try:
            store.publish(_state(1), version="v1")
            assert store.current_generation() == 0
            store.publish(_state(2), version="v2")
            store.publish(_state(3), version="v3")
            assert store.current_generation() == 2
            # generation 0 is retired (> keep behind head)
            with pytest.raises(FileNotFoundError):
                attach_state(store.segment_name(0))
        finally:
            store.close(unlink=True)

    def test_reader_tracks_swaps(self, base_name):
        store = SharedWeightStore(base_name=f"{base_name}-rd", keep=2)
        reader = SharedWeightReader(f"{base_name}-rd")
        try:
            store.publish(_state(1), version="v1")
            assert reader.refresh() is True
            assert reader.generation == 0
            assert reader.version == "v1"
            assert reader.refresh() is False       # nothing changed
            old_view = reader.views()["w"]
            store.publish(_state(2), version="v2")
            assert reader.refresh() is True
            assert reader.generation == 1
            # the pre-swap views stay readable (kept one swap behind)
            assert float(old_view[0, 0]) == old_view[0, 0]
            assert not np.array_equal(reader.views()["w"], old_view)
            del old_view                 # drop buffer export before close
        finally:
            reader.close()
            store.close(unlink=True)


class TestAdoptViews:
    class _Model:
        def __init__(self, params):
            self._params = params

        def named_parameters(self):
            return dict(self._params)

    class _Param:
        def __init__(self, data):
            self.data = data
            self.grad = None

    def _model(self):
        return self._Model({"w": self._Param(np.zeros((4, 3))),
                            "b": self._Param(np.zeros(3))})

    def test_adopts_without_copy(self):
        model = self._model()
        views = {"w": np.ones((4, 3)), "b": np.ones(3),
                 "extra": np.ones(1)}
        adopt_views(model, views)
        assert model.named_parameters()["w"].data is views["w"]

    def test_missing_parameter_raises(self):
        with pytest.raises(KeyError, match="lacks"):
            adopt_views(self._model(), {"w": np.ones((4, 3))})

    def test_shape_mismatch_leaves_model_untouched(self):
        model = self._model()
        before = model.named_parameters()["w"].data
        # 'w' matches but 'b' does not: nothing must be assigned
        with pytest.raises(ValueError, match="shape mismatch"):
            adopt_views(model, {"w": np.ones((4, 3)), "b": np.ones(7)})
        assert model.named_parameters()["w"].data is before
