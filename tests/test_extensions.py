"""Extended features: DA-RNN, NDCG/Kendall metrics, transaction costs."""

import numpy as np
import pytest
from scipy.stats import kendalltau as scipy_kendalltau

from repro.baselines import DARNN, EXTRA_MODELS, TABLE_IV_MODELS, get_spec
from repro.eval import kendall_tau, ndcg_at_n, run_backtest
from repro.tensor import Tensor, no_grad


class TestDARNN:
    def test_scores_shape(self, rng):
        model = DARNN(num_features=4, hidden_size=8,
                      rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((6, 5, 4)))
        assert model(x).shape == (5,)

    def test_stocks_independent(self, rng):
        model = DARNN(num_features=4, hidden_size=8,
                      rng=np.random.default_rng(0))
        x = rng.standard_normal((6, 5, 4))
        with no_grad():
            base = model(Tensor(x)).data.copy()
            bumped = x.copy()
            bumped[:, 2, :] += 4.0
            out = model(Tensor(bumped)).data
        others = [0, 1, 3, 4]
        assert np.allclose(out[others], base[others])

    def test_gradients_flow_to_both_attention_stages(self, rng):
        model = DARNN(num_features=3, hidden_size=6,
                      rng=np.random.default_rng(1))
        x = Tensor(rng.standard_normal((5, 4, 3)))
        (model(x) ** 2).sum().backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name

    def test_input_rank_validated(self, rng):
        with pytest.raises(ValueError):
            DARNN()(Tensor(rng.standard_normal((5, 4))))

    def test_registered_as_extra_not_table_iv(self):
        assert "DA-RNN" in EXTRA_MODELS
        assert "DA-RNN" not in TABLE_IV_MODELS
        assert get_spec("DA-RNN").category == "REG"
        # Regression family: no ranking loss.
        from repro.core import TrainConfig
        assert get_spec("DA-RNN").adapt_config(TrainConfig(alpha=0.2)).alpha \
            == 0.0

    def test_trains_on_mini_market(self, csi_mini):
        from repro.baselines import make_predictor
        from repro.core import TrainConfig
        predictor = make_predictor("DA-RNN", csi_mini, seed=0)
        result = predictor.fit_predict(
            csi_mini, TrainConfig(window=6, epochs=1, max_train_days=5,
                                  alpha=0.0))
        assert np.isfinite(result.predictions).all()


class TestNDCG:
    def test_perfect_ranking_is_one(self, rng):
        actuals = rng.standard_normal((8, 12))
        assert np.isclose(ndcg_at_n(actuals, actuals, 5), 1.0)

    def test_worse_ranking_scores_lower(self, rng):
        actuals = rng.standard_normal((20, 15))
        inverted = -actuals
        assert ndcg_at_n(actuals, actuals, 5) > \
            ndcg_at_n(inverted, actuals, 5)

    def test_bounded_in_unit_interval(self, rng):
        scores = rng.standard_normal((10, 9))
        actuals = rng.standard_normal((10, 9))
        value = ndcg_at_n(scores, actuals, 4)
        assert 0.0 <= value <= 1.0

    def test_topn_validated(self, rng):
        scores = rng.standard_normal((2, 5))
        with pytest.raises(ValueError):
            ndcg_at_n(scores, scores, 9)


class TestKendallTau:
    def test_perfect_correlation(self, rng):
        actuals = rng.standard_normal((5, 10))
        assert np.isclose(kendall_tau(actuals * 3 + 1, actuals), 1.0)

    def test_perfect_anticorrelation(self, rng):
        actuals = rng.standard_normal((5, 10))
        assert np.isclose(kendall_tau(-actuals, actuals), -1.0)

    def test_matches_scipy(self, rng):
        scores = rng.standard_normal((1, 20))
        actuals = rng.standard_normal((1, 20))
        ours = kendall_tau(scores, actuals)
        ref = scipy_kendalltau(scores[0], actuals[0]).statistic
        assert np.isclose(ours, ref, atol=1e-12)


class TestTransactionCosts:
    def test_zero_cost_unchanged(self, rng):
        scores = rng.standard_normal((10, 8))
        actuals = rng.standard_normal((10, 8)) * 0.01
        free = run_backtest(scores, actuals, 3)
        priced = run_backtest(scores, actuals, 3, cost_bps=0.0)
        assert np.allclose(free.daily_returns, priced.daily_returns)

    def test_costs_reduce_returns(self, rng):
        scores = rng.standard_normal((30, 10))
        actuals = rng.standard_normal((30, 10)) * 0.01
        free = run_backtest(scores, actuals, 3)
        priced = run_backtest(scores, actuals, 3, cost_bps=20)
        assert priced.cumulative_return < free.cumulative_return

    def test_static_portfolio_pays_only_entry(self):
        scores = np.tile(np.array([[3.0, 2.0, 1.0, 0.0]]), (5, 1))
        actuals = np.zeros((5, 4))
        result = run_backtest(scores, actuals, 2, cost_bps=100)
        # Day 0 pays the full 1% buy-in; later days have zero turnover.
        assert np.isclose(result.daily_returns[0], -0.01)
        assert np.allclose(result.daily_returns[1:], 0.0)

    def test_full_turnover_pays_every_day(self, rng):
        # Alternate between two disjoint portfolios -> 100% turnover.
        scores = np.zeros((4, 4))
        scores[0, [0, 1]] = 1.0
        scores[1, [2, 3]] = 1.0
        scores[2, [0, 1]] = 1.0
        scores[3, [2, 3]] = 1.0
        actuals = np.zeros((4, 4))
        result = run_backtest(scores, actuals, 2, cost_bps=50)
        assert np.allclose(result.daily_returns, -0.005)

    def test_negative_cost_rejected(self, rng):
        scores = rng.standard_normal((3, 4))
        with pytest.raises(ValueError):
            run_backtest(scores, scores, 2, cost_bps=-1)
