"""Experiment protocol, market indices, speed harness, case study."""

import numpy as np
import pytest

from repro.core import RTGCN, TrainConfig
from repro.eval import (cap_weighted_index, compare_paired,
                        compare_to_published, find_connected_clique,
                        index_cumulative_returns, market_index_curves,
                        measure_speed, price_weighted_index, run_case_study,
                        run_experiment, run_named_experiment,
                        strongest_baseline)
from repro.eval.protocol import ExperimentResult


def quick_config(**overrides):
    defaults = dict(window=6, epochs=1, max_train_days=8, seed=0)
    defaults.update(overrides)
    return TrainConfig(**defaults)


class TestIndices:
    def test_cap_weighted_starts_at_one(self, rng):
        prices = rng.uniform(10, 100, size=(5, 30))
        caps = rng.uniform(1, 10, size=5)
        level = cap_weighted_index(prices, caps)
        assert np.isclose(level[0], 1.0)
        assert level.shape == (30,)

    def test_cap_weighting_tilts_to_giants(self):
        prices = np.ones((2, 10))
        prices[0] *= np.linspace(1, 2, 10)      # stock 0 doubles
        caps = np.array([1000.0, 1.0])           # stock 0 dominates
        level = cap_weighted_index(prices, caps)
        assert level[-1] > 1.9

    def test_price_weighted_picks_priciest(self):
        prices = np.ones((5, 10))
        prices[2] *= 100.0
        level = price_weighted_index(prices, num_constituents=1)
        assert np.allclose(level, 100.0)

    def test_index_cumulative_returns_alignment(self):
        level = np.array([100.0, 110.0, 99.0, 99.0])
        curve = index_cumulative_returns(level, [0, 1, 2])
        assert np.isclose(curve[0], 0.10)
        assert np.isclose(curve[1], 0.10 - 0.10)

    def test_market_curves_for_us_market(self, nasdaq_mini):
        _, test_days = nasdaq_mini.split(6)
        curves = market_index_curves(nasdaq_mini, test_days)
        assert set(curves) == {"S&P 500", "DJI"}
        assert all(len(v) == len(test_days) for v in curves.values())

    def test_market_curves_for_csi(self, csi_mini):
        _, test_days = csi_mini.split(6)
        curves = market_index_curves(csi_mini, test_days)
        assert set(curves) == {"CSI 300"}

    def test_caps_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            cap_weighted_index(rng.uniform(1, 2, (3, 5)), np.ones(4))


class TestProtocol:
    def test_run_experiment_aggregates(self, nasdaq_mini):
        result = run_experiment(
            "rtgcn-u",
            lambda gen: RTGCN(nasdaq_mini.relations, strategy="uniform",
                              relational_filters=4, rng=gen),
            nasdaq_mini, quick_config(), n_runs=2)
        assert len(result.runs) == 2
        assert result.summary()["MRR"].n_runs == 2
        assert len(result.train_seconds) == 2

    def test_runs_use_different_seeds(self, nasdaq_mini):
        result = run_experiment(
            "rtgcn-u",
            lambda gen: RTGCN(nasdaq_mini.relations, strategy="uniform",
                              relational_filters=4, rng=gen),
            nasdaq_mini, quick_config(), n_runs=2)
        # Different init seeds -> different predictions (almost surely).
        assert result.runs[0]["MRR"] != result.runs[1]["MRR"]

    def test_run_named_experiment_classifier_mrr_nan(self, nasdaq_mini):
        result = run_named_experiment("ARIMA", nasdaq_mini, quick_config(),
                                      n_runs=1)
        assert np.isnan(result.runs[0]["MRR"])
        assert np.isfinite(result.runs[0]["IRR-5"])

    def test_run_named_experiment_ranker(self, nasdaq_mini):
        result = run_named_experiment("Rank_LSTM", nasdaq_mini,
                                      quick_config(), n_runs=1)
        assert np.isfinite(result.runs[0]["MRR"])

    def test_compare_paired_detects_dominance(self):
        ours = ExperimentResult("ours", [{"IRR-5": 1.0 + 0.01 * i}
                                         for i in range(10)], [], [])
        base = ExperimentResult("base", [{"IRR-5": 0.5 + 0.01 * i}
                                         for i in range(10)], [], [])
        outcome = compare_paired(ours, base, "IRR-5")
        assert outcome.p_value < 0.05

    def test_compare_to_published(self):
        ours = ExperimentResult("ours", [{"MRR": 0.5 + 0.01 * i}
                                         for i in range(10)], [], [])
        outcome = compare_to_published(ours, "MRR", 0.3)
        assert outcome.p_value < 0.05
        weak = compare_to_published(ours, "MRR", 0.56)
        assert weak.p_value > 0.05

    def test_strongest_baseline(self):
        results = {
            "a": ExperimentResult("a", [{"IRR-5": 0.1}], [], []),
            "b": ExperimentResult("b", [{"IRR-5": 0.9}], [], []),
        }
        assert strongest_baseline(results, "IRR-5") == "b"

    def test_strongest_baseline_empty_rejected(self):
        with pytest.raises(ValueError):
            strongest_baseline({}, "MRR")


class TestExperimentResume:
    @staticmethod
    def factory(dataset):
        return lambda gen: RTGCN(dataset.relations, strategy="uniform",
                                 relational_filters=4, rng=gen)

    def test_resume_skips_completed_runs_identically(self, csi_mini,
                                                     tmp_path):
        cfg = quick_config()
        baseline = run_experiment("resume-check", self.factory(csi_mini),
                                  csi_mini, cfg, n_runs=3, base_seed=1)

        calls = []

        def crash_on_third(gen):
            calls.append(1)
            if len(calls) > 2:
                raise RuntimeError("simulated crash at run 2")
            return self.factory(csi_mini)(gen)

        with pytest.raises(RuntimeError, match="simulated crash"):
            run_experiment("resume-check", crash_on_third, csi_mini, cfg,
                           n_runs=3, base_seed=1, resume_dir=tmp_path)

        resumed_calls = []

        def counting(gen):
            resumed_calls.append(1)
            return self.factory(csi_mini)(gen)

        resumed = run_experiment("resume-check", counting, csi_mini, cfg,
                                 n_runs=3, base_seed=1,
                                 resume_dir=tmp_path)
        assert len(resumed_calls) == 1    # only run 2 re-executed
        assert resumed.runs == baseline.runs    # aggregate is unchanged

    def test_changed_n_runs_rejected_loudly(self, csi_mini, tmp_path):
        from repro.eval import JournalMismatchError
        cfg = quick_config()
        run_experiment("resume-check", self.factory(csi_mini), csi_mini,
                       cfg, n_runs=2, base_seed=1, resume_dir=tmp_path)
        # Resuming under a different protocol must refuse, not silently
        # mix runs from two different experiments.
        with pytest.raises(JournalMismatchError, match="n_runs"):
            run_experiment("resume-check", self.factory(csi_mini),
                           csi_mini, cfg, n_runs=3, base_seed=1,
                           resume_dir=tmp_path)

    def test_changed_config_rejected_loudly(self, csi_mini, tmp_path):
        from repro.eval import JournalMismatchError
        run_experiment("resume-check", self.factory(csi_mini), csi_mini,
                       quick_config(), n_runs=2, base_seed=1,
                       resume_dir=tmp_path)
        # The error must name the *field* that diverged, not just report
        # an opaque digest mismatch.
        with pytest.raises(JournalMismatchError,
                           match=r"config\.alpha: journal=0\.1 vs "
                                 r"requested=0\.2"):
            run_experiment("resume-check", self.factory(csi_mini),
                           csi_mini, quick_config(alpha=0.2), n_runs=2,
                           base_seed=1, resume_dir=tmp_path)

    def test_pre_fields_journal_reports_digest_only(self, csi_mini,
                                                    tmp_path):
        """Journals written before fingerprint_fields still refuse with
        the plain digest message (no crash on the missing payload)."""
        import json

        from repro.eval import JournalMismatchError
        run_experiment("resume-check", self.factory(csi_mini), csi_mini,
                       quick_config(), n_runs=2, base_seed=1,
                       resume_dir=tmp_path)
        journal = tmp_path / "experiment-resume-check.json"
        payload = json.loads(journal.read_text())
        payload.pop("fingerprint_fields", None)
        journal.write_text(json.dumps(payload))
        with pytest.raises(JournalMismatchError, match="fingerprint"):
            run_experiment("resume-check", self.factory(csi_mini),
                           csi_mini, quick_config(alpha=0.2), n_runs=2,
                           base_seed=1, resume_dir=tmp_path)

    def test_old_version_journal_restarts_with_warning(self, csi_mini,
                                                       tmp_path):
        import json
        journal = tmp_path / "experiment-resume-check.json"
        journal.write_text(json.dumps({
            "version": 1,
            "key": {"name": "resume-check", "n_runs": 2, "base_seed": 1},
            "runs": []}))
        with pytest.warns(RuntimeWarning, match="version"):
            result = run_experiment("resume-check", self.factory(csi_mini),
                                    csi_mini, quick_config(), n_runs=2,
                                    base_seed=1, resume_dir=tmp_path)
        assert len(result.runs) == 2

    def test_corrupt_journal_restarts_cleanly(self, csi_mini, tmp_path):
        journal = tmp_path / "experiment-resume-check.json"
        journal.write_text('{"version": 2, "key": ')   # half-written
        result = run_experiment("resume-check", self.factory(csi_mini),
                                csi_mini, quick_config(), n_runs=2,
                                base_seed=1, resume_dir=tmp_path)
        assert len(result.runs) == 2

    def test_out_of_order_journal_rows_resume(self, csi_mini, tmp_path):
        """Parallel completion order must not confuse the resume logic."""
        cfg = quick_config()
        baseline = run_experiment("resume-check", self.factory(csi_mini),
                                  csi_mini, cfg, n_runs=3, base_seed=1)

        from repro.eval.protocol import (_experiment_fingerprint,
                                         _ExperimentJournal)
        fingerprint = _experiment_fingerprint(cfg, 3, 1)
        journal = _ExperimentJournal(tmp_path, "resume-check", 3, 1,
                                     fingerprint)
        # Journal runs 2 then 0 — as a 2-worker pool might complete them.
        for index in (2, 0):
            journal.record(index, baseline.runs[index], 0.0, 0.0)

        calls = []

        def counting(gen):
            calls.append(1)
            return self.factory(csi_mini)(gen)

        resumed = run_experiment("resume-check", counting, csi_mini, cfg,
                                 n_runs=3, base_seed=1,
                                 resume_dir=tmp_path)
        assert len(calls) == 1          # only the missing run 1 executed
        assert resumed.runs == baseline.runs


class TestSpeed:
    def test_measure_speed_fields(self, nasdaq_mini):
        m = measure_speed(
            "rtgcn", lambda gen: RTGCN(nasdaq_mini.relations,
                                       relational_filters=4, rng=gen),
            nasdaq_mini, quick_config(max_train_days=5), epochs=1)
        assert m.train_seconds_per_epoch > 0
        assert m.test_seconds > 0

    def test_speedup_over(self, nasdaq_mini):
        from repro.eval import SpeedMeasurement
        fast = SpeedMeasurement("fast", 1.0, 0.5)
        slow = SpeedMeasurement("slow", 4.0, 1.0)
        ratio = fast.speedup_over(slow)
        assert np.isclose(ratio["train"], 4.0)
        assert np.isclose(ratio["test"], 2.0)

    def test_speedup_degenerate_self_time_is_nan(self):
        from repro.eval import SpeedMeasurement
        instant = SpeedMeasurement("instant", 0.0, 0.5)
        slow = SpeedMeasurement("slow", 4.0, 1.0)
        with pytest.warns(RuntimeWarning, match="undefined"):
            ratio = instant.speedup_over(slow)
        assert np.isnan(ratio["train"])      # no bogus huge speedup
        assert np.isclose(ratio["test"], 2.0)

    def test_speedup_degenerate_other_time_is_nan(self):
        from repro.eval import SpeedMeasurement
        mine = SpeedMeasurement("mine", 1.0, 1.0)
        broken = SpeedMeasurement("broken", 0.0, 0.0)
        with pytest.warns(RuntimeWarning):
            ratio = mine.speedup_over(broken)
        assert np.isnan(ratio["train"]) and np.isnan(ratio["test"])

    def test_measure_speed_captures_phases(self, nasdaq_mini):
        m = measure_speed(
            "rtgcn", lambda gen: RTGCN(nasdaq_mini.relations,
                                       relational_filters=4, rng=gen),
            nasdaq_mini, quick_config(max_train_days=5), epochs=1)
        for phase in ("data_prep", "forward", "backward",
                      "optimizer_step", "inference"):
            assert phase in m.phases, phase
            assert m.phases[phase]["count"] > 0


class TestCaseStudy:
    def test_clique_is_connected(self, nasdaq_mini):
        clique = find_connected_clique(nasdaq_mini, 5)
        assert len(set(clique)) == 5
        adj = nasdaq_mini.relations.binary_adjacency()
        sub = adj[np.ix_(clique, clique)]
        assert sub.sum() > 0

    def test_clique_size_validated(self, csi_mini):
        with pytest.raises(ValueError):
            find_connected_clique(csi_mini, 100)

    def test_case_study_artifacts(self, nasdaq_mini):
        study = run_case_study(nasdaq_mini, config=quick_config(),
                               num_days=6)
        assert len(study.symbols) == 5
        assert study.predicted_heatmap.shape == (5, 6)
        assert study.actual_heatmap.shape == (5, 6)
        assert study.edge_weights.shape == (5, 5)
        assert study.normalized_prices.shape[0] == 5
        assert np.allclose(study.normalized_prices[:, 0], 1.0)
        assert len(study.days) == 6
