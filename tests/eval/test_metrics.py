"""Ranking metrics (MRR, IRR-N) and the backtester."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (daily_topn_returns, irr, irr_curve, mrr,
                        oracle_backtest, precision_at_n, random_backtest,
                        ranking_metrics, reciprocal_rank_of_top1,
                        run_backtest)


class TestMRR:
    def test_perfect_prediction_gives_one(self, rng):
        actuals = rng.standard_normal((10, 20))
        assert mrr(actuals, actuals) == 1.0

    def test_top1_in_second_place(self):
        scores = np.array([[10.0, 1.0, 0.0]])
        returns = np.array([[0.05, 0.10, -0.01]])   # predicted top is rank 2
        assert mrr(scores, returns) == 0.5

    def test_averages_over_days(self):
        scores = np.array([[10.0, 0.0], [10.0, 0.0]])
        returns = np.array([[1.0, 0.0], [0.0, 1.0]])   # rank 1, rank 2
        assert np.isclose(mrr(scores, returns), (1.0 + 0.5) / 2)

    def test_constant_predictions_score_like_fixed_pick(self, rng):
        """A degenerate constant predictor just always picks stock 0."""
        returns = rng.standard_normal((5, 30))
        constant = np.zeros_like(returns)
        expected = np.mean([1.0 / (1 + (day > day[0]).sum())
                            for day in returns])
        assert np.isclose(mrr(constant, returns), expected)

    def test_tied_returns_rank_pessimistically(self):
        """If the picked stock ties others on true return, it counts at the
        bottom of its tie group."""
        scores = np.array([[10.0, 0.0, 0.0]])
        returns = np.array([[0.05, 0.05, 0.01]])
        assert mrr(scores, returns) == 0.5

    def test_reciprocal_rank_bottom(self):
        scores = np.array([10.0, 0.0, 0.0])
        returns = np.array([-0.5, 0.1, 0.2])
        assert reciprocal_rank_of_top1(scores, returns) == 1 / 3


class TestIRR:
    def test_oracle_is_best_possible(self, rng):
        actuals = rng.standard_normal((30, 25)) * 0.02
        oracle = irr(actuals, actuals, 5)
        for _ in range(5):
            noisy = actuals + rng.standard_normal(actuals.shape)
            assert irr(noisy, actuals, 5) <= oracle + 1e-12

    def test_daily_returns_are_topn_mean(self):
        scores = np.array([[3.0, 2.0, 1.0, 0.0]])
        actuals = np.array([[0.04, 0.02, -0.1, -0.2]])
        daily = daily_topn_returns(scores, actuals, 2)
        assert np.isclose(daily[0], 0.03)

    def test_irr_sums_days(self):
        scores = np.tile(np.array([[2.0, 1.0]]), (3, 1))
        actuals = np.array([[0.01, 0.0], [0.02, 0.0], [0.03, 0.0]])
        assert np.isclose(irr(scores, actuals, 1), 0.06)

    def test_curve_monotone_relation_to_total(self, rng):
        scores = rng.standard_normal((12, 8))
        actuals = rng.standard_normal((12, 8)) * 0.01
        curve = irr_curve(scores, actuals, 3)
        assert curve.shape == (12,)
        assert np.isclose(curve[-1], irr(scores, actuals, 3))

    def test_topn_bounds_validated(self, rng):
        scores = rng.standard_normal((3, 5))
        with pytest.raises(ValueError):
            irr(scores, scores, 6)
        with pytest.raises(ValueError):
            irr(scores, scores, 0)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            mrr(rng.standard_normal((3, 4)), rng.standard_normal((3, 5)))

    def test_1d_inputs_promoted(self):
        scores = np.array([2.0, 1.0])
        actuals = np.array([0.05, 0.01])
        assert np.isclose(irr(scores, actuals, 1), 0.05)


class TestPrecisionAndBundle:
    def test_precision_perfect(self, rng):
        actuals = rng.standard_normal((6, 10))
        assert precision_at_n(actuals, actuals, 3) == 1.0

    def test_ranking_metrics_keys(self, rng):
        m = ranking_metrics(rng.standard_normal((4, 12)),
                            rng.standard_normal((4, 12)))
        assert set(m) == {"MRR", "IRR-1", "IRR-5", "IRR-10"}


class TestBacktest:
    def test_summary_fields(self, rng):
        scores = rng.standard_normal((40, 15))
        actuals = rng.standard_normal((40, 15)) * 0.02
        result = run_backtest(scores, actuals, 5)
        summary = result.summary()
        assert summary["days"] == 40
        assert np.isclose(summary["irr"], result.cumulative_return)
        assert 0.0 <= summary["hit_rate"] <= 1.0
        assert summary["max_drawdown"] >= 0.0

    def test_cumulative_matches_curve(self, rng):
        scores = rng.standard_normal((10, 6))
        actuals = rng.standard_normal((10, 6)) * 0.01
        result = run_backtest(scores, actuals, 2)
        assert np.isclose(result.curve[-1], result.cumulative_return)

    def test_compounded_differs_from_sum(self, rng):
        actuals = np.full((10, 4), 0.01)
        result = run_backtest(actuals, actuals, 2)
        assert result.compounded_return > result.cumulative_return - 1e-12

    def test_oracle_beats_random(self, rng):
        actuals = rng.standard_normal((60, 30)) * 0.02
        oracle = oracle_backtest(actuals, 5)
        rand = random_backtest(actuals, 5, rng=rng)
        assert oracle.cumulative_return > rand.cumulative_return

    def test_max_drawdown_known_case(self):
        daily = np.array([0.1, -0.05, -0.05, 0.2])
        from repro.eval.backtest import BacktestResult
        result = BacktestResult(daily_returns=daily, top_n=1)
        assert np.isclose(result.max_drawdown, 0.10)

    def test_sharpe_sign_follows_mean(self):
        from repro.eval.backtest import BacktestResult
        up = BacktestResult(np.array([0.01, 0.02, 0.01]), 1)
        down = BacktestResult(np.array([-0.01, -0.02, -0.01]), 1)
        assert up.sharpe > 0 > down.sharpe


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=10),
       st.integers(min_value=2, max_value=20),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_irr_bounded_by_oracle_property(days, stocks, seed):
    rng = np.random.default_rng(seed)
    actuals = rng.standard_normal((days, stocks)) * 0.02
    scores = rng.standard_normal((days, stocks))
    top_n = min(5, stocks)
    assert irr(scores, actuals, top_n) <= irr(actuals, actuals, top_n) + 1e-12


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=15),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_mrr_always_in_unit_interval(stocks, seed):
    rng = np.random.default_rng(seed)
    scores = rng.standard_normal((6, stocks))
    actuals = rng.standard_normal((6, stocks))
    value = mrr(scores, actuals)
    assert 1.0 / stocks <= value <= 1.0
