"""ExperimentPool: fan-out, fault tolerance, telemetry."""

import os
import time

import pytest

from repro.obs import validate_report
from repro.parallel import (ExperimentPool, TaskFailedError,
                            WorkerCrashError, fork_available,
                            resolve_workers)

pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="needs the fork start method")


def square(task):
    return task * task


class TestBasics:
    def test_results_match_serial_map(self):
        tasks = list(range(7))
        pool = ExperimentPool(3, square)
        assert pool.run(tasks) == {t: t * t for t in tasks}

    def test_empty_task_list(self):
        assert ExperimentPool(2, square).run([]) == {}

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ExperimentPool(2, square).run([1, 1])

    def test_single_worker_works(self):
        pool = ExperimentPool(1, square)
        assert pool.run([2, 3]) == {2: 4, 3: 9}

    def test_closures_pass_via_fork(self):
        # The whole point of fork: task_fn may capture arbitrary
        # (unpicklable) state, e.g. a lambda over local data.
        data = {"offset": 100}
        pool = ExperimentPool(2, lambda t: t + data["offset"])
        assert pool.run([1, 2]) == {1: 101, 2: 102}

    def test_on_result_fires_once_per_task(self):
        seen = {}
        pool = ExperimentPool(2, square)
        pool.run([4, 5, 6], on_result=lambda t, p: seen.__setitem__(t, p))
        assert seen == {4: 16, 5: 25, 6: 36}

    def test_invalid_max_attempts_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ExperimentPool(2, square, max_attempts=0)

    def test_resolve_workers(self):
        assert resolve_workers(4, 2) == 2      # never more than tasks
        assert resolve_workers(2, 10) == 2
        assert resolve_workers(None, 3) <= 3   # default: per-CPU, clamped
        assert resolve_workers(0, 3) >= 1
        assert resolve_workers(8, 0) == 1      # degenerate: no tasks


class TestFaultTolerance:
    def test_worker_exception_fails_fast(self):
        def boom(task):
            raise ValueError(f"bad task {task}")

        pool = ExperimentPool(2, boom)
        with pytest.raises(TaskFailedError, match="bad task") as info:
            pool.run([0, 1])
        assert "ValueError" in info.value.worker_traceback

    def test_crashed_worker_retried_via_marker(self, tmp_path):
        # In-memory flags don't survive the respawned worker, so the
        # "crash only once" state lives in a marker file.
        marker = tmp_path / "crashed-once"

        def crash_once(task):
            if task == 1 and not marker.exists():
                marker.write_text("x")
                os._exit(17)           # simulates SIGKILL/OOM
            return task * 10

        pool = ExperimentPool(2, crash_once)
        with pytest.warns(RuntimeWarning, match="retrying"):
            results = pool.run([0, 1, 2])
        assert results == {0: 0, 1: 10, 2: 20}
        assert pool.telemetry.crashes == 1
        assert pool.telemetry.retries == 1
        assert pool.telemetry.task_stats[1]["attempts"] == 2

    def test_crash_budget_exhausted(self):
        def always_crash(task):
            os._exit(23)

        pool = ExperimentPool(1, always_crash, max_attempts=2)
        with pytest.warns(RuntimeWarning, match="retrying"):
            with pytest.raises(WorkerCrashError, match="2 attempt"):
                pool.run([0])

    def test_hung_worker_killed_and_retried(self, tmp_path):
        marker = tmp_path / "hung-once"

        def hang_once(task):
            if task == 0 and not marker.exists():
                marker.write_text("x")
                time.sleep(60)
            return task + 1

        pool = ExperimentPool(1, hang_once, task_timeout=0.5)
        started = time.perf_counter()
        with pytest.warns(RuntimeWarning, match="hung"):
            results = pool.run([0, 1])
        assert results == {0: 1, 1: 2}
        assert time.perf_counter() - started < 30   # not the full sleep
        assert pool.telemetry.timeouts == 1


class TestTelemetry:
    def test_report_is_schema_v1(self):
        pool = ExperimentPool(2, square)
        pool.run(list(range(5)))
        report = pool.telemetry.report(config={"what": "test"})
        validate_report(report.to_dict())   # raises on schema violations
        payload = report.to_dict()
        assert payload["schema_version"] == 1
        assert payload["metrics"]["tasks_completed"] == 5
        assert payload["metrics"]["workers"] == 2
        assert len(payload["ops"]) == 5
        assert set(payload["phases"]) == {"worker-0", "worker-1"}

    def test_worker_accounting_covers_all_tasks(self):
        pool = ExperimentPool(2, square)
        pool.run(list(range(6)))
        stats = pool.telemetry
        assert sum(stats.worker_tasks.values()) == 6
        assert stats.wall_seconds > 0
        assert set(stats.task_stats) == set(range(6))
