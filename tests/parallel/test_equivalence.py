"""Parallel execution must be bitwise-identical to the serial protocol."""

import os

import numpy as np
import pytest

from repro.core import RTGCN, TrainConfig
from repro.eval import grid_search, run_experiment, run_named_experiment
from repro.parallel import fork_available, run_experiments_parallel

pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="needs the fork start method")


def quick_config(**overrides):
    defaults = dict(window=6, epochs=1, max_train_days=8, seed=0)
    defaults.update(overrides)
    return TrainConfig(**defaults)


def factory(dataset):
    return lambda gen: RTGCN(dataset.relations, strategy="uniform",
                             relational_filters=4, rng=gen)


class TestBitwiseEquality:
    def test_dense_parallel_equals_serial(self, nasdaq_mini):
        cfg = quick_config(graph_mode="dense")
        serial = run_experiment("eq-dense", factory(nasdaq_mini),
                                nasdaq_mini, cfg, n_runs=3, workers=1)
        par = run_experiment("eq-dense", factory(nasdaq_mini),
                             nasdaq_mini, cfg, n_runs=3, workers=2)
        assert par.runs == serial.runs          # bitwise: dict of floats
        assert par.train_seconds and par.test_seconds

    def test_sparse_parallel_equals_serial(self, nasdaq_mini):
        cfg = quick_config(graph_mode="sparse")
        serial = run_experiment("eq-sparse", factory(nasdaq_mini),
                                nasdaq_mini, cfg, n_runs=3, workers=1)
        par = run_experiment("eq-sparse", factory(nasdaq_mini),
                             nasdaq_mini, cfg, n_runs=3, workers=2)
        assert par.runs == serial.runs

    def test_named_experiment_parallel_equals_serial(self, nasdaq_mini):
        cfg = quick_config()
        serial = run_named_experiment("Rank_LSTM", nasdaq_mini, cfg,
                                      n_runs=3, workers=1)
        par = run_named_experiment("Rank_LSTM", nasdaq_mini, cfg,
                                   n_runs=3, workers=2)
        assert par.runs == serial.runs

    def test_parallel_attaches_schema_v1_telemetry(self, nasdaq_mini):
        from repro.obs import validate_report
        cfg = quick_config()
        par = run_named_experiment("Rank_LSTM", nasdaq_mini, cfg,
                                   n_runs=2, workers=2)
        serial = run_named_experiment("Rank_LSTM", nasdaq_mini, cfg,
                                      n_runs=2, workers=1)
        assert serial.telemetry is None
        validate_report(par.telemetry)
        assert par.telemetry["metrics"]["workers"] == 2
        assert par.telemetry["metrics"]["tasks_completed"] == 2

    def test_grid_search_parallel_equals_serial(self, nasdaq_mini):
        cfg = quick_config()

        def grid_factory(gen, config):
            return RTGCN(nasdaq_mini.relations, strategy="uniform",
                         relational_filters=4, rng=gen)

        grid = {"window": [5, 6], "alpha": [0.1, 0.2]}
        serial = grid_search(grid_factory, nasdaq_mini, grid,
                             base_config=cfg, validation_days=5,
                             workers=1)
        par = grid_search(grid_factory, nasdaq_mini, grid,
                          base_config=cfg, validation_days=5, workers=2)
        assert [p.params for p in par.points] == \
               [p.params for p in serial.points]
        assert [p.score for p in par.points] == \
               [p.score for p in serial.points]


class TestFaultInjection:
    def test_killed_worker_mid_run_still_bitwise_equal(self, nasdaq_mini,
                                                       tmp_path):
        """A SIGKILL-style death mid-run must not change the aggregate."""
        cfg = quick_config()
        serial = run_experiment("eq-crash", factory(nasdaq_mini),
                                nasdaq_mini, cfg, n_runs=3, workers=1)

        marker = tmp_path / "crashed-once"

        def crashing_factory(gen):
            # Die the hard way (no exception, no cleanup) on the first
            # attempt only; the marker survives the respawned worker.
            if not marker.exists():
                marker.write_text("x")
                os._exit(9)
            return factory(nasdaq_mini)(gen)

        with pytest.warns(RuntimeWarning, match="retrying"):
            par = run_experiment("eq-crash", crashing_factory,
                                 nasdaq_mini, cfg, n_runs=3, workers=2)
        assert marker.exists()                  # the crash really fired
        assert par.runs == serial.runs
        assert par.telemetry["metrics"]["crashes"] == 1

    def test_killed_sweep_resumes_at_run_k(self, nasdaq_mini, tmp_path):
        """Journaled parallel runs survive a dead parent: the second
        invocation executes only the missing runs."""
        cfg = quick_config()
        resume = tmp_path / "journal"
        resume.mkdir()
        serial = run_experiment("eq-resume", factory(nasdaq_mini),
                                nasdaq_mini, cfg, n_runs=4, workers=1)

        # First invocation: run only 2 of the 4 runs in parallel, then
        # "die" (simulated by asking for fewer runs via a seeded journal:
        # we journal runs 0 and 2 exactly as a killed 2-worker sweep that
        # completed those runs out of order would have).
        from repro.eval.protocol import (_experiment_fingerprint,
                                         _ExperimentJournal)
        fingerprint = _experiment_fingerprint(cfg, 4, 0)
        journal = _ExperimentJournal(resume, "eq-resume", 4, 0, fingerprint)
        for index in (2, 0):
            journal.record(index, serial.runs[index],
                           serial.train_seconds[index],
                           serial.test_seconds[index])

        # Resume with 2 workers: only runs 1 and 3 may execute.  Fork
        # means in-memory counters don't propagate back, so count
        # executions through marker files instead.
        executed = tmp_path / "executed"
        executed.mkdir()

        def counting_factory(gen):
            state = gen.bit_generator.state["state"]["state"]
            (executed / f"run-{state:x}").write_text("x")
            return factory(nasdaq_mini)(gen)

        par = run_experiment("eq-resume", counting_factory, nasdaq_mini,
                             cfg, n_runs=4, workers=2, resume_dir=resume)
        assert len(list(executed.iterdir())) == 2
        assert par.runs == serial.runs

        # A third invocation finds the journal complete: nothing runs.
        for path in executed.iterdir():
            path.unlink()
        again = run_experiment("eq-resume", counting_factory, nasdaq_mini,
                               cfg, n_runs=4, workers=2, resume_dir=resume)
        assert list(executed.iterdir()) == []
        assert again.runs == serial.runs


class TestSweep:
    def test_sweep_matches_named_experiments(self, nasdaq_mini, csi_mini):
        cfg = quick_config()
        sweep = run_experiments_parallel(
            ["Rank_LSTM", "LSTM"], ["nasdaq-mini", "csi-mini"],
            config=cfg, n_runs=2, base_seed=0, workers=2, dataset_seed=7)
        assert set(sweep.results) == {
            ("Rank_LSTM", "nasdaq-mini"), ("Rank_LSTM", "csi-mini"),
            ("LSTM", "nasdaq-mini"), ("LSTM", "csi-mini")}
        for market, dataset in (("nasdaq-mini", nasdaq_mini),
                                ("csi-mini", csi_mini)):
            for model in ("Rank_LSTM", "LSTM"):
                expected = run_named_experiment(model, dataset, cfg,
                                                n_runs=2, workers=1)
                assert sweep.results[(model, market)].runs == expected.runs

    def test_sweep_serial_fallback_matches(self, nasdaq_mini):
        cfg = quick_config()
        par = run_experiments_parallel(["Rank_LSTM"], ["nasdaq-mini"],
                                       config=cfg, n_runs=2, workers=2,
                                       dataset_seed=7)
        ser = run_experiments_parallel(["Rank_LSTM"], ["nasdaq-mini"],
                                       config=cfg, n_runs=2, workers=1,
                                       dataset_seed=7)
        key = ("Rank_LSTM", "nasdaq-mini")
        assert par.results[key].runs == ser.results[key].runs
        assert ser.telemetry is None and par.telemetry is not None

    def test_sweep_journals_and_resumes(self, tmp_path):
        cfg = quick_config()
        resume = tmp_path / "sweep-journal"
        first = run_experiments_parallel(
            ["Rank_LSTM"], ["nasdaq-mini"], config=cfg, n_runs=2,
            workers=2, dataset_seed=7, resume_dir=resume)
        assert (resume / "experiment-Rank_LSTM_nasdaq-mini.json").exists()
        # Fully journaled: the resumed sweep schedules zero tasks.
        second = run_experiments_parallel(
            ["Rank_LSTM"], ["nasdaq-mini"], config=cfg, n_runs=2,
            workers=2, dataset_seed=7, resume_dir=resume)
        key = ("Rank_LSTM", "nasdaq-mini")
        assert second.results[key].runs == first.results[key].runs
        assert second.telemetry is None     # nothing left to execute

    def test_classifier_mrr_is_nan_in_sweep(self):
        cfg = quick_config()
        sweep = run_experiments_parallel(["ARIMA"], ["nasdaq-mini"],
                                         config=cfg, n_runs=2, workers=2,
                                         dataset_seed=7)
        runs = sweep.results[("ARIMA", "nasdaq-mini")].runs
        assert all(np.isnan(run["MRR"]) for run in runs)
        assert all(np.isfinite(run["IRR-5"]) for run in runs)

    def test_sweep_validates_inputs(self):
        with pytest.raises(ValueError, match="non-empty"):
            run_experiments_parallel([], ["nasdaq-mini"])
        with pytest.raises(ValueError, match="n_runs"):
            run_experiments_parallel(["LSTM"], ["nasdaq-mini"], n_runs=0)
