"""Metrics sink: schema round-trip, validation, telemetry callback."""

import json

import numpy as np
import pytest

from repro.core import RTGCN, TrainConfig, Trainer
from repro.obs import (SCHEMA_VERSION, MetricsSink, RunReport,
                       TelemetryCallback, Tracer, new_run_id, use_tracer,
                       validate_report)


def sample_report():
    return RunReport(
        run_id=new_run_id("test"), kind="train",
        config={"market": "nasdaq-mini", "window": 8},
        epoch_losses=[0.5, 0.4],
        phases={"forward": {"count": 10, "seconds": 1.25}},
        ops=[{"op": "matmul", "pass": "forward", "count": 10,
              "seconds": 0.9, "bytes": 1024}],
        metrics={"MRR": 0.12})


class TestSchema:
    def test_roundtrip_through_sink(self, tmp_path):
        sink = MetricsSink(tmp_path / "runs")
        report = sample_report()
        path = sink.write(report)
        assert path.name == f"{report.run_id}.json"
        loaded = sink.read(path)
        assert loaded == report

    def test_read_by_run_id(self, tmp_path):
        sink = MetricsSink(tmp_path / "runs")
        report = sample_report()
        sink.write(report)
        assert sink.read(report.run_id) == report

    def test_written_json_is_schema_v1(self, tmp_path):
        sink = MetricsSink(tmp_path)
        path = sink.write(sample_report())
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        for key in ("run_id", "kind", "created_at", "config",
                    "epoch_losses", "phases", "ops", "metrics"):
            assert key in payload

    def test_missing_key_rejected(self):
        payload = sample_report().to_dict()
        del payload["phases"]
        with pytest.raises(ValueError, match="phases"):
            validate_report(payload)

    def test_wrong_version_rejected(self):
        payload = sample_report().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            RunReport.from_dict(payload)

    def test_malformed_op_row_rejected(self):
        payload = sample_report().to_dict()
        payload["ops"] = [{"op": "matmul"}]
        with pytest.raises(ValueError, match="op row"):
            validate_report(payload)

    def test_numpy_values_serialised(self, tmp_path):
        report = sample_report()
        report.metrics["IRR"] = np.float64(0.25)
        report.config["days"] = np.int64(60)
        path = MetricsSink(tmp_path).write(report)
        payload = json.loads(path.read_text())
        assert payload["metrics"]["IRR"] == 0.25
        assert payload["config"]["days"] == 60

    def test_run_ids_unique(self):
        assert new_run_id() != new_run_id()

    def test_list_runs(self, tmp_path):
        sink = MetricsSink(tmp_path)
        assert sink.list_runs() == []
        sink.write(sample_report())
        sink.write(sample_report())
        assert len(sink.list_runs()) == 2


class TestTelemetryCallback:
    def test_collects_losses_and_phases(self, nasdaq_mini):
        model = RTGCN(nasdaq_mini.relations, relational_filters=4,
                      rng=np.random.default_rng(0))
        trainer = Trainer(model, nasdaq_mini, TrainConfig(
            window=8, epochs=2, max_train_days=4, seed=0))
        telemetry = TelemetryCallback(kind="train",
                                      config=trainer.config)
        with use_tracer(Tracer()):
            losses = trainer.fit(callbacks=[telemetry])
        report = telemetry.report
        assert report.epoch_losses == losses
        assert telemetry.num_batches == 8     # 2 epochs x 4 days
        assert report.phases["forward"]["count"] == 8
        assert "backward" in report.phases
        assert report.config["window"] == 8
        # the accumulated report is a valid schema-v1 document
        validate_report(report.to_dict())
