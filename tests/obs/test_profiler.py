"""Op profiler: recording, clean install/uninstall, numeric transparency."""

import numpy as np
import pytest

import repro.tensor.ops as ops
from repro.core import RTGCN, TrainConfig, Trainer
from repro.obs import OpProfiler, active_profiler
from repro.tensor import Tensor


def small_graph():
    a = Tensor(np.arange(12.0).reshape(3, 4) + 1.0, requires_grad=True)
    b = Tensor(np.ones((4, 2)), requires_grad=True)
    out = ((a @ b) * 2.0 + 1.0).tanh().sum()
    return a, b, out


class TestRecording:
    def test_forward_and_backward_recorded(self):
        with OpProfiler() as prof:
            a, b, out = small_graph()
            out.backward()
        for key in [("matmul", "forward"), ("mul", "forward"),
                    ("add", "forward"), ("tanh", "forward"),
                    ("sum", "forward"), ("matmul", "backward"),
                    ("tanh", "backward"), ("sum", "backward")]:
            assert key in prof.records, f"missing {key}"
        stat = prof.records[("matmul", "forward")]
        assert stat.count == 1
        assert stat.seconds >= 0.0
        assert stat.bytes == 3 * 2 * 8    # (3,2) float64 output

    def test_counts_accumulate(self):
        with OpProfiler() as prof:
            x = Tensor(np.ones(4), requires_grad=True)
            for _ in range(5):
                _ = x * 2.0
        assert prof.records[("mul", "forward")].count == 5

    def test_conv1d_attributes_window_gather(self):
        with OpProfiler() as prof:
            x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 12)),
                       requires_grad=True)
            w = Tensor(np.random.default_rng(1).normal(size=(4, 3, 3)),
                       requires_grad=True)
            ops.conv1d(x, w, padding=(2, 0)).sum().backward()
        assert ("conv1d_window", "forward") in prof.records
        assert ("conv1d_window", "backward") in prof.records
        assert ("einsum", "backward") in prof.records

    def test_reflected_operators_recorded(self):
        with OpProfiler() as prof:
            x = Tensor(np.ones(3), requires_grad=True)
            _ = 2.0 + x          # __radd__ alias of __add__
            _ = 3.0 * x          # __rmul__ alias of __mul__
        assert prof.records[("add", "forward")].count == 1
        assert prof.records[("mul", "forward")].count == 1

    def test_rows_and_table(self):
        with OpProfiler() as prof:
            _ = Tensor(np.ones(3)) + 1.0
        rows = prof.as_rows()
        assert rows and set(rows[0]) == {"op", "pass", "count", "seconds",
                                         "bytes"}
        assert "add" in prof.table(top=3)


class TestInstallation:
    def test_primitives_restored_after_exit(self):
        original_add = Tensor.__add__
        original_einsum = ops.einsum
        with OpProfiler():
            assert Tensor.__add__ is not original_add
            assert ops.einsum is not original_einsum
        assert Tensor.__add__ is original_add
        assert Tensor.__radd__ is Tensor.__add__
        assert ops.einsum is original_einsum
        assert active_profiler() is None

    def test_restored_even_on_error(self):
        original_add = Tensor.__add__
        with pytest.raises(RuntimeError):
            with OpProfiler():
                raise RuntimeError("boom")
        assert Tensor.__add__ is original_add

    def test_nothing_recorded_outside_context(self):
        prof = OpProfiler()
        with prof:
            pass
        _ = Tensor(np.ones(3)) + 1.0
        assert prof.records == {}

    def test_nested_profilers_rejected(self):
        with OpProfiler():
            with pytest.raises(RuntimeError, match="nest"):
                OpProfiler().install()

    def test_uninstall_is_idempotent(self):
        prof = OpProfiler().install()
        prof.uninstall()
        prof.uninstall()
        assert active_profiler() is None


class TestNumericTransparency:
    def run_training(self, dataset, profiled):
        model = RTGCN(dataset.relations, relational_filters=4, dropout=0.0,
                      rng=np.random.default_rng(3))
        trainer = Trainer(model, dataset, TrainConfig(
            window=8, epochs=2, max_train_days=6, seed=0))
        if profiled:
            with OpProfiler() as prof:
                losses = trainer.fit()
            assert prof.records   # the run was actually observed
        else:
            losses = trainer.fit()
        _, test_days = dataset.split(8)
        return losses, trainer.predict(test_days[:3])

    def test_profiled_run_bit_identical(self, nasdaq_mini):
        losses_off, preds_off = self.run_training(nasdaq_mini, False)
        losses_on, preds_on = self.run_training(nasdaq_mini, True)
        assert losses_off == losses_on              # bit-identical floats
        assert np.array_equal(preds_off, preds_on)
