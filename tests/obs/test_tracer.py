"""Tracer: span aggregation, nesting, the active-tracer stack."""

import time

from repro.obs import (GLOBAL_TRACER, Tracer, current_tracer, trace,
                       use_tracer)


class TestSpans:
    def test_span_aggregates_count_and_seconds(self):
        t = Tracer()
        for _ in range(3):
            with t.span("work"):
                time.sleep(0.001)
        assert t.count("work") == 3
        assert t.seconds("work") >= 0.003
        snap = t.snapshot()
        assert snap["work"]["count"] == 3

    def test_unknown_span_reads_as_zero(self):
        t = Tracer()
        assert t.seconds("never") == 0.0
        assert t.count("never") == 0

    def test_nested_spans_accumulate_independently(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner"):
                pass
        assert t.count("outer") == 1
        assert t.count("inner") == 2
        # the outer span contains both inner spans
        assert t.seconds("outer") >= t.seconds("inner")

    def test_span_recorded_on_exception(self):
        t = Tracer()
        try:
            with t.span("fails"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert t.count("fails") == 1

    def test_reset_clears(self):
        t = Tracer()
        with t.span("x"):
            pass
        t.reset()
        assert t.snapshot() == {}


class TestActiveTracer:
    def test_global_tracer_is_default(self):
        assert current_tracer() is GLOBAL_TRACER

    def test_use_tracer_scopes_trace_calls(self):
        mine = Tracer()
        with use_tracer(mine):
            assert current_tracer() is mine
            with trace("scoped"):
                pass
        assert current_tracer() is GLOBAL_TRACER
        assert mine.count("scoped") == 1

    def test_use_tracer_nests(self):
        a, b = Tracer(), Tracer()
        with use_tracer(a):
            with use_tracer(b):
                with trace("deep"):
                    pass
            with trace("shallow"):
                pass
        assert b.count("deep") == 1 and b.count("shallow") == 0
        assert a.count("shallow") == 1 and a.count("deep") == 0

    def test_use_tracer_restores_on_exception(self):
        t = Tracer()
        try:
            with use_tracer(t):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_tracer() is GLOBAL_TRACER
