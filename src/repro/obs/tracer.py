"""Scoped-span wall-clock tracing.

A :class:`Tracer` aggregates named spans — ``with trace("forward"): ...`` —
into per-name counts and total seconds.  The trainer, data pipeline and
speed harness are instrumented with spans so any run can be broken down
into the phases the paper's Figure 5 reasons about (data prep / forward /
backward / optimiser step / inference).

Spans are aggregated *flat* by name: nesting is allowed (an ``epoch`` span
contains many ``forward`` spans) and each name accumulates independently.
The cost of an inactive or active span is two ``perf_counter`` calls plus a
dictionary update, which is negligible next to the NumPy work inside any
phase worth tracing.

A module-global tracer is always active so instrumented library code never
has to check for one.  Use :func:`use_tracer` to capture an isolated window
of activity::

    with use_tracer(Tracer()) as t:
        trainer.fit()
    t.snapshot()   # {"epoch": {"count": 10, "seconds": ...}, ...}
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List


class SpanStat:
    """Aggregate of every completed span with one name."""

    __slots__ = ("count", "seconds")

    def __init__(self) -> None:
        self.count = 0
        self.seconds = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.seconds += seconds

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "seconds": self.seconds}

    def __repr__(self) -> str:
        return f"SpanStat(count={self.count}, seconds={self.seconds:.6f})"


class Tracer:
    """Accumulates named wall-clock spans."""

    def __init__(self) -> None:
        self._spans: Dict[str, SpanStat] = {}

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time the enclosed block and add it to the ``name`` aggregate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stat = self._spans.get(name)
            if stat is None:
                stat = self._spans[name] = SpanStat()
            stat.add(elapsed)

    def seconds(self, name: str) -> float:
        """Total seconds recorded under ``name`` (0.0 if never entered)."""
        stat = self._spans.get(name)
        return stat.seconds if stat is not None else 0.0

    def count(self, name: str) -> int:
        """Number of completed spans named ``name``."""
        stat = self._spans.get(name)
        return stat.count if stat is not None else 0

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A JSON-ready copy: ``{name: {"count": n, "seconds": s}}``."""
        return {name: stat.as_dict() for name, stat in self._spans.items()}

    def reset(self) -> None:
        """Discard all recorded spans."""
        self._spans.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v.seconds:.3f}s/{v.count}"
                          for k, v in sorted(self._spans.items()))
        return f"Tracer({inner})"


#: the always-available fallback tracer (bottom of the stack)
GLOBAL_TRACER = Tracer()

_TRACER_STACK: List[Tracer] = [GLOBAL_TRACER]


def current_tracer() -> Tracer:
    """The tracer that :func:`trace` currently records into."""
    return _TRACER_STACK[-1]


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Route :func:`trace` spans into ``tracer`` for the enclosed block."""
    _TRACER_STACK.append(tracer)
    try:
        yield tracer
    finally:
        # Remove this exact tracer even if the stack was perturbed.
        for i in range(len(_TRACER_STACK) - 1, 0, -1):
            if _TRACER_STACK[i] is tracer:
                del _TRACER_STACK[i]
                break


@contextmanager
def trace(name: str) -> Iterator[None]:
    """Record a span named ``name`` on the currently active tracer."""
    with current_tracer().span(name):
        yield
