"""Structured run telemetry: the JSON report schema and its sink.

Every observed run — a training run, a ``repro.cli profile`` invocation, a
benchmark — serialises to one JSON document so later PRs can diff perf
trajectories mechanically instead of parsing text tables.

Schema (version 1)
------------------
``RunReport`` serialises to an object with exactly these keys:

- ``schema_version`` (int) — currently ``1``;
- ``run_id`` (str) — unique id, see :func:`new_run_id`;
- ``kind`` (str) — ``"train"`` / ``"profile"`` / ``"benchmark"``;
- ``created_at`` (str) — ISO-8601 UTC timestamp;
- ``config`` (object) — free-form run configuration (market, model,
  ``TrainConfig`` fields, ...);
- ``epoch_losses`` (array of float) — per-epoch mean training loss;
- ``phases`` (object) — ``{phase: {"count": int, "seconds": float}}``
  from a :class:`~repro.obs.tracer.Tracer` snapshot;
- ``ops`` (array) — per-primitive rows ``{op, pass, count, seconds,
  bytes}`` from an :class:`~repro.obs.profiler.OpProfiler`;
- ``metrics`` (object) — scalar result metrics (MRR, IRR, seconds, ...).

:class:`MetricsSink` writes reports as ``<dir>/<run_id>.json`` and reads
them back, validating the schema on both sides.
"""

from __future__ import annotations

import json
import time
import uuid
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: bump when a key is added/renamed/removed
SCHEMA_VERSION = 1

_REQUIRED_KEYS = ("schema_version", "run_id", "kind", "created_at",
                  "config", "epoch_losses", "phases", "ops", "metrics")


def new_run_id(prefix: str = "run") -> str:
    """A unique, sortable run id: ``<prefix>-<utc stamp>-<random>``."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{prefix}-{stamp}-{uuid.uuid4().hex[:8]}"


def _jsonable(value: Any) -> Any:
    """Coerce configs/NumPy scalars into plain JSON types."""
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item):   # numpy scalar
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass
class RunReport:
    """One observed run, ready to serialise under schema version 1."""

    run_id: str
    kind: str
    config: Dict[str, Any] = field(default_factory=dict)
    epoch_losses: List[float] = field(default_factory=list)
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    ops: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    created_at: str = field(default_factory=lambda: time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime()))
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """The schema-v1 JSON object for this report."""
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "kind": self.kind,
            "created_at": self.created_at,
            "config": _jsonable(self.config),
            "epoch_losses": [float(x) for x in self.epoch_losses],
            "phases": _jsonable(self.phases),
            "ops": _jsonable(self.ops),
            "metrics": _jsonable(self.metrics),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunReport":
        """Parse and validate a schema-v1 object."""
        validate_report(payload)
        return cls(run_id=payload["run_id"], kind=payload["kind"],
                   config=payload["config"],
                   epoch_losses=list(payload["epoch_losses"]),
                   phases=payload["phases"], ops=list(payload["ops"]),
                   metrics=payload["metrics"],
                   created_at=payload["created_at"],
                   schema_version=payload["schema_version"])


def validate_report(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid schema-v1 report."""
    if not isinstance(payload, dict):
        raise ValueError(f"report must be an object, got {type(payload)}")
    missing = [k for k in _REQUIRED_KEYS if k not in payload]
    if missing:
        raise ValueError(f"report missing required keys: {missing}")
    if payload["schema_version"] != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema_version "
                         f"{payload['schema_version']!r} "
                         f"(expected {SCHEMA_VERSION})")
    if not isinstance(payload["epoch_losses"], list):
        raise ValueError("epoch_losses must be an array")
    if not isinstance(payload["phases"], dict):
        raise ValueError("phases must be an object")
    if not isinstance(payload["ops"], list):
        raise ValueError("ops must be an array")
    for row in payload["ops"]:
        row_missing = [k for k in ("op", "pass", "count", "seconds", "bytes")
                       if k not in row]
        if row_missing:
            raise ValueError(f"op row missing keys: {row_missing}")


class TelemetryCallback:
    """Trainer callback that accumulates a :class:`RunReport` during a fit.

    Duck-typed to the :class:`repro.core.callbacks.TrainerCallback`
    protocol (deliberately not a subclass, so :mod:`repro.obs` stays
    importable without :mod:`repro.core`).  Pass one to
    ``Trainer.fit(callbacks=[...])``; when the fit ends, :attr:`report`
    holds the run id, per-epoch losses, batch count, and — if a tracer was
    active via :func:`~repro.obs.tracer.use_tracer` — the phase breakdown.
    """

    def __init__(self, kind: str = "train", config: Any = None,
                 run_id: Optional[str] = None):
        self.report = RunReport(
            run_id=run_id if run_id is not None else new_run_id(kind),
            kind=kind, config=_jsonable(config) if config is not None else {})
        self.num_batches = 0

    def on_epoch_start(self, trainer, epoch: int) -> None:
        """No-op; present to satisfy the callback protocol."""

    def on_batch_end(self, trainer, epoch: int, day: int,
                     loss: float) -> None:
        """Count batches."""
        self.num_batches += 1

    def on_epoch_end(self, trainer, epoch: int, mean_loss: float) -> None:
        """Append the epoch's mean loss to the report."""
        self.report.epoch_losses.append(float(mean_loss))

    def on_fit_end(self, trainer, losses) -> None:
        """Capture the active tracer's phase snapshot into the report."""
        from .tracer import current_tracer
        self.report.phases = current_tracer().snapshot()
        self.report.metrics.setdefault("num_batches", self.num_batches)


class MetricsSink:
    """Writes/reads :class:`RunReport` JSON files under one directory."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path_for(self, report: RunReport) -> Path:
        return self.directory / f"{report.run_id}.json"

    def write(self, report: RunReport) -> Path:
        """Serialise ``report``; returns the path written."""
        payload = report.to_dict()
        validate_report(payload)
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(report)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    def read(self, ref: Union[str, Path]) -> RunReport:
        """Load and validate a report by run id or by path.

        A bare run id (``sink.read(report.run_id)``) resolves to
        ``<directory>/<run_id>.json``; anything naming an existing file is
        read as-is.
        """
        path = Path(ref)
        if not path.exists():
            name = path.name
            if not name.endswith(".json"):
                name += ".json"
            path = self.directory / name
        payload = json.loads(path.read_text())
        return RunReport.from_dict(payload)

    def list_runs(self) -> List[Path]:
        """All report files in the sink directory, sorted by name."""
        if not self.directory.exists():
            return []
        return sorted(self.directory.glob("*.json"))
