"""repro.obs — runtime observability: profiler, tracer, telemetry.

Zero-dependency instrumentation for the whole stack:

- :class:`OpProfiler` — patches the autograd primitives while active and
  records count / wall-clock / bytes per op for forward and backward
  passes; exactly zero overhead when not installed.
- :class:`Tracer` / :func:`trace` — scoped wall-clock spans; the trainer,
  data pipeline and speed harness emit ``data_prep`` / ``forward`` /
  ``backward`` / ``optimizer_step`` / ``inference`` phases.
- :class:`RunReport` / :class:`MetricsSink` — schema-versioned JSON
  serialisation of runs (config, per-epoch losses, per-phase seconds,
  per-op table) so benchmarks leave machine-readable artifacts.

See ``docs/observability.md`` for the full guide and the JSON schema.
"""

from .metrics import (SCHEMA_VERSION, MetricsSink, RunReport,
                      TelemetryCallback, new_run_id, validate_report)
from .profiler import OpProfiler, OpStat, active_profiler
from .tracer import (GLOBAL_TRACER, SpanStat, Tracer, current_tracer, trace,
                     use_tracer)

__all__ = [
    "OpProfiler", "OpStat", "active_profiler",
    "Tracer", "SpanStat", "trace", "use_tracer", "current_tracer",
    "GLOBAL_TRACER",
    "RunReport", "MetricsSink", "TelemetryCallback", "new_run_id",
    "validate_report", "SCHEMA_VERSION",
]
