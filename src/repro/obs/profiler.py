"""Op-level profiler for the autograd engine.

:class:`OpProfiler` instruments every primitive of :mod:`repro.tensor` —
the ``Tensor`` operator methods, the module-level graph functions
(``concat``, ``stack``, ``where``, ``maximum``, ``einsum``), the sparse
primitives (``spmm``, ``sddmm``, segment ops) and the conv1d window
gather — and records, per primitive and per pass (forward / backward):
call count, wall-clock seconds, and the bytes of the array each call
produced.

The instrumentation is installed by *patching*: while a profiler is active
the primitive attributes are replaced with timing wrappers, and on exit the
originals are restored.  When no profiler is active the engine runs the
original, unwrapped functions — the disabled-state overhead is exactly
zero.  Wrappers only measure; they never touch the computed arrays, so a
profiled run is bit-identical to an unprofiled one at the same seed.

Backward timing works by intercepting the closure an op records on its
output: the wrapper re-wraps ``out._backward`` so the reverse pass of every
profiled primitive is timed when :meth:`Tensor.backward` later invokes it.

Usage::

    with OpProfiler() as prof:
        trainer.fit()
    for row in prof.table(top=10):
        print(row)
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..tensor import fused as _fused_module
from ..tensor import ops as _ops_module
from ..tensor import sparse as _sparse_module
from ..tensor import tensor as _tensor_module
from ..tensor.arena import arena_stats
from ..tensor.tensor import Tensor

#: ``Tensor`` methods treated as primitives, mapped to their report names.
#: ``__radd__``/``__rmul__`` are class-level aliases of ``__add__``/
#: ``__mul__`` and are caught by identity when the originals are patched.
_TENSOR_PRIMITIVES: Dict[str, str] = {
    "__add__": "add", "__neg__": "neg", "__mul__": "mul",
    "__truediv__": "div", "__pow__": "pow", "__matmul__": "matmul",
    "exp": "exp", "log": "log", "sqrt": "sqrt", "abs": "abs",
    "tanh": "tanh", "sigmoid": "sigmoid", "relu": "relu",
    "leaky_relu": "leaky_relu", "elu": "elu", "clip": "clip",
    "sum": "sum", "max": "max",
    "reshape": "reshape", "transpose": "transpose", "swapaxes": "swapaxes",
    "squeeze": "squeeze", "unsqueeze": "unsqueeze",
    "broadcast_to": "broadcast_to", "__getitem__": "getitem", "pad": "pad",
}

#: module-level primitives of :mod:`repro.tensor.tensor`; these are
#: imported by name into many modules, so patching must rebind every
#: module-global that refers to the same function object.
_FUNCTION_PRIMITIVES: Dict[str, str] = {
    "concat": "concat", "stack": "stack", "where": "where",
    "maximum": "maximum", "einsum": "einsum",
}

#: sparse primitives of :mod:`repro.tensor.sparse`, attributed under their
#: own names so a sparse run shows ``spmm`` replacing dense ``matmul`` in
#: the op table.  They are monolithic (raw-kernel forward + closure
#: backward, no inner Tensor ops), so there is no double counting.
_SPARSE_PRIMITIVES: Dict[str, str] = {
    "spmm": "spmm", "sddmm": "sddmm",
    "sparse_segment_sum": "segment_sum", "sparse_gather": "sparse_gather",
}

#: fused composite nodes of :mod:`repro.tensor.fused`.  Each is a single
#: tape node (two for the LSTM's h/c pair), so its row replaces the chain
#: of primitive rows the composed path would have produced — a profile of
#: a fused run attributes the whole cell/propagation to one labeled op.
_FUSED_PRIMITIVES: Dict[str, str] = {
    "affine_act_fused": "affine_act_fused",
    "lstm_cell_fused": "lstm_cell_fused",
    "gru_cell_fused": "gru_cell_fused",
    "gcn_propagate_fused": "gcn_propagate_fused",
}

#: arena counters whose install→report deltas the profiler exposes.
_ARENA_COUNTERS = ("hits", "misses", "released", "bytes_reused")

_active_profiler: Optional["OpProfiler"] = None


class OpStat:
    """Aggregate cost of one (op, pass) pair."""

    __slots__ = ("count", "seconds", "bytes")

    def __init__(self) -> None:
        self.count = 0
        self.seconds = 0.0
        self.bytes = 0

    def add(self, seconds: float, nbytes: int) -> None:
        self.count += 1
        self.seconds += seconds
        self.bytes += nbytes

    def __repr__(self) -> str:
        return (f"OpStat(count={self.count}, seconds={self.seconds:.6f}, "
                f"bytes={self.bytes})")


class OpProfiler:
    """Records per-primitive forward/backward cost while installed.

    Use as a context manager (or call :meth:`install` / :meth:`uninstall`
    explicitly).  Only one profiler may be active at a time; nesting raises
    ``RuntimeError`` rather than silently double-counting.
    """

    def __init__(self) -> None:
        #: ``{(op_name, "forward"|"backward"): OpStat}``
        self.records: Dict[Tuple[str, str], OpStat] = {}
        self._patches: List[Tuple[object, str, object]] = []
        self._installed = False
        self._arena_start: Optional[Dict[str, int]] = None
        self._arena_end: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _record(self, name: str, pass_: str, seconds: float,
                nbytes: int) -> None:
        key = (name, pass_)
        stat = self.records.get(key)
        if stat is None:
            stat = self.records[key] = OpStat()
        stat.add(seconds, nbytes)

    def _wrap(self, fn: Callable, name: str) -> Callable:
        profiler = self

        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            out = fn(*args, **kwargs)
            elapsed = time.perf_counter() - start
            # Fused cells return a tuple of Tensors (LSTM's (h, c)); time
            # each output's backward under the same op name.
            outputs = (out,) if isinstance(out, Tensor) else (
                tuple(t for t in out if isinstance(t, Tensor))
                if isinstance(out, tuple) else ())
            if outputs:
                profiler._record(name, "forward", elapsed,
                                 sum(t.data.nbytes for t in outputs))
                for tensor in outputs:
                    inner = tensor._backward
                    if inner is not None:
                        def timed_backward(grad, _inner=inner):
                            b_start = time.perf_counter()
                            _inner(grad)
                            profiler._record(name, "backward",
                                             time.perf_counter() - b_start,
                                             grad.nbytes)
                        tensor._backward = timed_backward
            else:
                profiler._record(name, "forward", elapsed, 0)
            return out

        wrapper.__name__ = getattr(fn, "__name__", name)
        wrapper.__doc__ = fn.__doc__
        wrapper.__profiled_original__ = fn
        return wrapper

    # ------------------------------------------------------------------
    # install / uninstall
    # ------------------------------------------------------------------
    def install(self) -> "OpProfiler":
        """Patch the engine's primitives to record into this profiler."""
        global _active_profiler
        if self._installed:
            raise RuntimeError("profiler is already installed")
        if _active_profiler is not None:
            raise RuntimeError("another OpProfiler is already active; "
                               "profilers cannot nest")
        _active_profiler = self
        self._installed = True
        self._arena_start = arena_stats()
        self._arena_end = None

        # Tensor methods: wrap each original once, then rebind every class
        # attribute that refers to it (catches __radd__ = __add__ aliases).
        wrapped: Dict[int, Callable] = {}
        for attr, name in _TENSOR_PRIMITIVES.items():
            original = Tensor.__dict__[attr]
            wrapped[id(original)] = self._wrap(original, name)
        for attr, value in list(Tensor.__dict__.items()):
            if id(value) in wrapped:
                self._patches.append((Tensor, attr, value))
                setattr(Tensor, attr, wrapped[id(value)])

        # Module-level functions: rebind every repro module-global that is
        # the same object as the canonical definition in its home module.
        for home, mapping in ((_tensor_module, _FUNCTION_PRIMITIVES),
                              (_sparse_module, _SPARSE_PRIMITIVES),
                              (_fused_module, _FUSED_PRIMITIVES)):
            for attr, name in mapping.items():
                original = getattr(home, attr)
                replacement = self._wrap(original, name)
                for module in list(sys.modules.values()):
                    mod_name = getattr(module, "__name__", "")
                    if not mod_name.startswith("repro"):
                        continue
                    for key, value in list(vars(module).items()):
                        if value is original:
                            self._patches.append((module, key, value))
                            setattr(module, key, replacement)

        # The conv1d sliding-window gather has a bespoke scatter backward
        # that dominates convolution cost; profile it as its own primitive.
        original = _ops_module._extract_windows
        self._patches.append((_ops_module, "_extract_windows", original))
        _ops_module._extract_windows = self._wrap(original, "conv1d_window")
        return self

    def uninstall(self) -> None:
        """Restore every patched primitive."""
        global _active_profiler
        if not self._installed:
            return
        for owner, attr, original in reversed(self._patches):
            setattr(owner, attr, original)
        self._patches.clear()
        self._installed = False
        self._arena_end = arena_stats()
        if _active_profiler is self:
            _active_profiler = None

    def __enter__(self) -> "OpProfiler":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def total_seconds(self) -> float:
        """Seconds across every recorded primitive and pass."""
        return sum(stat.seconds for stat in self.records.values())

    def arena_summary(self) -> Dict[str, object]:
        """Buffer-arena activity while this profiler was installed.

        Counter deltas between install and uninstall (or "now" while still
        installed), plus the derived ``hit_rate`` — ``hits / (hits +
        misses)`` of backward-buffer acquisitions, 0.0 when the arena saw
        no traffic.
        """
        start = self._arena_start or {key: 0 for key in _ARENA_COUNTERS}
        end = self._arena_end if self._arena_end is not None \
            else arena_stats()
        delta = {key: end[key] - start.get(key, 0)
                 for key in _ARENA_COUNTERS}
        acquired = delta["hits"] + delta["misses"]
        delta["hit_rate"] = delta["hits"] / acquired if acquired else 0.0
        delta["enabled"] = bool(end.get("enabled"))
        return delta

    def as_rows(self) -> List[Dict[str, object]]:
        """JSON-ready rows sorted by descending seconds."""
        rows = [{"op": op, "pass": pass_, "count": stat.count,
                 "seconds": stat.seconds, "bytes": stat.bytes}
                for (op, pass_), stat in self.records.items()]
        rows.sort(key=lambda r: -r["seconds"])
        return rows

    def table(self, top: Optional[int] = None) -> str:
        """Aligned text table of the most expensive primitives."""
        rows = self.as_rows()
        if top is not None:
            rows = rows[:top]
        lines = [f"{'op':20s} {'pass':8s} {'count':>9s} {'seconds':>10s} "
                 f"{'MB':>10s}"]
        lines.append("-" * len(lines[0]))
        for row in rows:
            lines.append(f"{row['op']:20s} {row['pass']:8s} "
                         f"{row['count']:9d} {row['seconds']:10.4f} "
                         f"{row['bytes'] / 1e6:10.2f}")
        summary = self.arena_summary()
        if summary["enabled"] or summary["hits"] or summary["misses"]:
            lines.append(
                f"arena: hit_rate={summary['hit_rate']:.1%} "
                f"hits={summary['hits']} misses={summary['misses']} "
                f"reused={summary['bytes_reused'] / 1e6:.2f} MB")
        return "\n".join(lines)


def active_profiler() -> Optional[OpProfiler]:
    """The currently installed profiler, if any."""
    return _active_profiler
