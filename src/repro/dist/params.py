"""Live model parameters and Adam moments in shared memory.

The data-parallel trainer never re-pickles the model: the parent
publishes every parameter into one mutable shared segment *before*
forking its workers and then adopts **writable** zero-copy views — so
the in-place Adam update (``param.data -= ...``) *is* the per-step
weight broadcast.  Forked workers inherit the mapping and adopt
**read-only** views over the same bytes; they see each step's new
weights with zero copies and zero messages, and an accidental in-place
write in a worker fails loudly instead of corrupting the run.

Synchronization is by protocol, not locks: the parent only writes
parameters between steps, when every worker is idle (blocked on its
task pipe), and workers only read while a shard task is in flight.  The
generation slot (a :class:`~repro.shm.GenerationControl` seqlock, bumped
to the optimizer step count by :meth:`ParamStore.commit`) lets a worker
assert it is computing against the weights the parent thinks it
published — a cheap cross-process torn-step detector.

:class:`GradSlots` is the reverse path: one shared segment of
per-parameter gradient buffers per worker slot, written by the worker
that computed a shard and read back by the parent when the shard's
"done" event arrives.  Gradients thus never travel through a pipe
either; only day losses (a few floats) do.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..shm import (GenerationControl, SharedModelState, adopt_views,
                   default_base_name, publish_state)

__all__ = ["ParamStore", "GradSlots"]


class ParamStore:
    """Owner of the shared parameter + optimizer-moment segments.

    Parameters
    ----------
    model:
        The model whose parameters are shared (adopted in place).
    optimizer:
        The optimizer whose per-parameter moment buffers are mirrored
        into shared memory by :meth:`commit` (Adam's ``m``/``v``; any
        :class:`~repro.optim.Optimizer` state dict-of-slots works).
    base_name:
        Segment name prefix; a collision-resistant default is derived
        from the pid.
    """

    def __init__(self, model, optimizer=None,
                 base_name: Optional[str] = None):
        self.model = model
        self.optimizer = optimizer
        self.base_name = base_name or default_base_name("repro-dist")
        named = dict(model.named_parameters())
        self.param_names: List[str] = list(named)
        self.params_state = publish_state(
            {name: param.data for name, param in named.items()},
            f"{self.base_name}-params")
        moments: Dict[str, np.ndarray] = {}
        if optimizer is not None:
            for index, param in enumerate(optimizer.params):
                for slot in self._moment_slots():
                    moments[f"{slot}:{index}"] = np.zeros_like(param.data)
        self.moments_state = (publish_state(
            moments, f"{self.base_name}-moments") if moments else None)
        self.control = GenerationControl.create(f"{self.base_name}-ctl")

    @staticmethod
    def _moment_slots() -> tuple:
        return ("m", "v")

    # ------------------------------------------------------------------
    # adoption
    # ------------------------------------------------------------------
    def adopt_parent(self) -> None:
        """Point the parent's model at writable shared views.

        After this, every optimizer step writes the shared segment
        directly — the broadcast is the page cache.
        """
        adopt_views(self.model, self.params_state.views(writable=True))

    def adopt_worker(self, model) -> None:
        """Point a forked worker's model at read-only shared views."""
        adopt_views(model, self.params_state.views(writable=False))

    # ------------------------------------------------------------------
    # step protocol
    # ------------------------------------------------------------------
    def commit(self, generation: int) -> None:
        """Mirror optimizer moments into shm and publish ``generation``.

        Called once per optimizer step, after ``optimizer.step()``
        returned (parameters are already in the segment — the parent
        writes them in place).  Adam rebinds its moment arrays each step
        rather than updating them in place, so the mirror is an explicit
        copy; workers never read the moments mid-step because the parent
        only runs this while they are idle.
        """
        if self.moments_state is not None and self.optimizer is not None:
            views = self.moments_state.views(writable=True)
            for index in range(len(self.optimizer.params)):
                slots = self.optimizer.state.get(index)
                if not slots:
                    continue
                for slot in self._moment_slots():
                    buffer = slots.get(slot)
                    if buffer is not None:
                        np.copyto(views[f"{slot}:{index}"], buffer)
        self.control.publish(generation)

    def generation(self) -> int:
        """The last committed generation (seqlock read, any process)."""
        return self.control.current()

    def moments(self) -> Dict[str, np.ndarray]:
        """Copies of the mirrored moment buffers (inspection/tests)."""
        if self.moments_state is None:
            return {}
        return self.moments_state.state_dict()

    # ------------------------------------------------------------------
    def close(self, unlink: bool = True) -> None:
        """Tear down every mapping (and, by default, every name).

        The model keeps whatever arrays its parameters currently point
        at; callers that need the weights to outlive the store must
        re-own them first (see ``fit_distributed``'s teardown, which
        copies the final parameters back into process-private arrays).
        """
        for state in (self.params_state, self.moments_state):
            if state is None:
                continue
            if unlink:
                state.unlink()
            state.close()
        if unlink:
            self.control.unlink()
        self.control.close()


class GradSlots:
    """Per-worker shared gradient buffers, one segment per slot.

    Slot ``k`` belongs to worker ``k`` (slot 0 doubles as the inline
    executor's scratch).  A worker overwrites its slot's buffers with
    the shard's accumulated gradients, then signals "done"; the parent
    copies them out before handing that worker its next shard, so a
    slot is never read and written concurrently.
    """

    def __init__(self, templates: Dict[str, np.ndarray], n_slots: int,
                 base_name: Optional[str] = None):
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        self.base_name = base_name or default_base_name("repro-dist")
        self.n_slots = int(n_slots)
        self.names = list(templates)
        self.states: List[SharedModelState] = [
            publish_state({name: np.zeros_like(array)
                           for name, array in templates.items()},
                          f"{self.base_name}-grad{slot}")
            for slot in range(self.n_slots)]

    def views(self, slot: int) -> Dict[str, np.ndarray]:
        """Writable views of one slot's gradient buffers."""
        return self.states[slot].views(writable=True)

    def read(self, slot: int) -> Dict[str, np.ndarray]:
        """Owned copies of one slot's buffers (parent side, post-event)."""
        return {name: np.array(view)
                for name, view in self.states[slot].views().items()}

    def close(self, unlink: bool = True) -> None:
        for state in self.states:
            if unlink:
                state.unlink()
            state.close()
        self.states = []
