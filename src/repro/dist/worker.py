"""Shard execution: the forked worker pool and its inline twin.

One shard = forward + backward over a few training days against the
current shared parameters, gradients accumulated into the worker's
:class:`~repro.dist.params.GradSlots` slot.  The *same*
:func:`compute_shard` function runs in a forked worker and in the
parent's inline path (``workers=1``), so the serial reference and the
parallel run share every arithmetic instruction — bitwise equality is
then a property of the plan and the reducer, not of luck.

Worker lifecycle is the :mod:`repro.parallel.pool` recipe, specialized
to persistent step-synchronous workers:

- **fork once, at fit start** — the dataset and model travel by
  copy-on-write and the shared segments by inherited mapping; nothing
  is ever pickled but the tiny task tuples and per-day losses;
- **PDEATHSIG reaping** (:func:`repro.parallel.pool.die_with_parent`)
  so a SIGKILLed parent never orphans workers;
- **crash retry that replays the failed shard**: a worker that dies
  mid-shard is respawned (a fresh fork of the *current* parent, so it
  adopts the current weights) and the shard is re-dispatched — shard
  computation is deterministic, so the replay produces the identical
  gradients.  Python exceptions propagate immediately as
  :class:`~repro.parallel.pool.TaskFailedError` (a deterministic bug;
  retrying would reproduce it).

Per-shard RNG realignment (:func:`reseed_shard`) is what keeps dropout
masks identical across worker counts: every shard reseeds the model's
generators from ``(seed, epoch, step, shard, stream)``, in the worker
*and* in the inline path, so the streams never depend on which process
ran the previous shard.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.losses import combined_loss
from ..nn.random import get_rng
from ..obs.tracer import trace
from ..parallel.pool import (ParallelUnavailableError, TaskFailedError,
                             WorkerCrashError, WorkerHandle, die_with_parent,
                             fork_available)
from ..parallel.telemetry import PoolTelemetry
from ..tensor import Tensor, arena, clear_arena, dtype_policy, fused_kernels
from .params import GradSlots, ParamStore
from .plan import Shard, StepGroup

__all__ = ["ShardExecutor", "WorkerContext", "compute_shard",
           "reseed_shard", "shard_rngs"]

_POLL_SECONDS = 0.05


# ----------------------------------------------------------------------
# deterministic per-shard randomness
# ----------------------------------------------------------------------
def shard_rngs(model) -> List[Tuple[str, np.random.Generator]]:
    """The model's RNG streams in a frozen order, global stream first.

    Mirrors ``Trainer._named_rngs`` (distinct generators by dotted
    module name) but always includes the library-global generator —
    modules built without an explicit ``rng`` *alias* it, and an alias
    is deduplicated by identity so each physical stream is reseeded
    exactly once.
    """
    seen: Dict[int, Tuple[str, np.random.Generator]] = {}
    global_rng = get_rng()
    seen[id(global_rng)] = ("<global>", global_rng)
    for name, module in model.named_modules():
        gen = getattr(module, "_rng", None)
        if isinstance(gen, np.random.Generator) and id(gen) not in seen:
            seen[id(gen)] = (name or "<root>", gen)
    return list(seen.values())


def reseed_shard(model, seed: int, epoch: int, step: int,
                 shard: int) -> None:
    """Reset every RNG stream to the shard's canonical state.

    A pure function of ``(seed, epoch, step, shard, stream index)`` —
    executed identically by the inline path and by whichever worker the
    shard lands on, so dropout masks are invariant to the worker count
    and to crash-replay.
    """
    entropy_seed = int(seed) & 0x7FFFFFFFFFFFFFFF
    for stream, (_, gen) in enumerate(shard_rngs(model)):
        seq = np.random.SeedSequence(
            [entropy_seed, int(epoch), int(step), int(shard), stream])
        gen.bit_generator.state = type(gen.bit_generator)(seq).state


# ----------------------------------------------------------------------
# the shard computation both paths share
# ----------------------------------------------------------------------
@dataclass
class WorkerContext:
    """Everything a shard computation needs; inherited over fork."""

    model: Any
    dataset: Any
    config: Any
    loss_fn: Optional[Callable]
    store: ParamStore
    slots: GradSlots


def compute_shard(context: WorkerContext, epoch: int, step_index: int,
                  shard: Shard,
                  grad_out: Dict[str, np.ndarray]
                  ) -> List[Tuple[int, float]]:
    """Run one shard's days; accumulate gradients into ``grad_out``.

    ``grad_out`` buffers are zeroed first and receive the sum of the
    shard's per-day gradients in day order.  Returns ``(day, loss)``
    pairs in the same order.  Identical in the parent and in a worker —
    this function is the single source of the shard's arithmetic.
    """
    cfg = context.config
    model = context.model
    reseed_shard(model, cfg.seed, epoch, step_index, shard.index)
    named = list(model.named_parameters())
    params = [param for _, param in named]
    for buffer in grad_out.values():
        buffer[...] = 0
    losses: List[Tuple[int, float]] = []
    for day in shard.days:
        with trace("data_prep"):
            features = context.dataset.features(int(day), cfg.window,
                                                cfg.num_features)
            label = context.dataset.label(int(day))
        for param in params:
            param.grad = None
        with trace("forward"):
            scores = model(Tensor(features))
            if context.loss_fn is not None:
                loss = context.loss_fn(scores, Tensor(label), params)
            else:
                loss = combined_loss(scores, Tensor(label), cfg.alpha,
                                     parameters=params,
                                     weight_decay=cfg.weight_decay)
        batch_loss = loss.item()
        with trace("backward"):
            loss.backward()
        for name, param in named:
            if param.grad is not None:
                grad_out[name] += param.grad
        losses.append((int(day), float(batch_loss)))
    return losses


# ----------------------------------------------------------------------
# forked worker loop
# ----------------------------------------------------------------------
def _dist_worker_main(slot: int, task_conn, event_conn,
                      context: WorkerContext) -> None:
    """Worker loop: recv ``(epoch, step, shard, generation)``, compute,
    send ``("done", slot, shard_index, losses, seconds)``.

    Runs in the forked child.  Exits on the ``None`` sentinel or a dead
    parent.  The child re-derives its numerics environment instead of
    trusting inherited thread state: fresh read-only parameter views, a
    cleared buffer arena (fork must not alias the parent's recycled
    buffers), and the config's dtype/fusion policy.
    """
    die_with_parent()
    clear_arena()
    cfg = context.config
    context.store.adopt_worker(context.model)
    grad_views = context.slots.views(slot)
    with dtype_policy(cfg.dtype_policy), \
            fused_kernels(cfg.fused_kernels), \
            arena(bool(cfg.buffer_arena)):
        while True:
            try:
                task = task_conn.recv()
            except (EOFError, OSError):        # parent went away
                return
            if task is None:
                return
            epoch, step_index, shard, generation = task
            started = time.perf_counter()
            try:
                current = context.store.generation()
                if current != generation:
                    raise RuntimeError(
                        f"worker {slot} saw parameter generation "
                        f"{current}, parent dispatched against "
                        f"{generation} — the step protocol was violated")
                losses = compute_shard(context, epoch, step_index, shard,
                                       grad_views)
            except BaseException:
                event_conn.send(("fail", slot, shard.index,
                                 traceback.format_exc(),
                                 time.perf_counter() - started))
            else:
                event_conn.send(("done", slot, shard.index, losses,
                                 time.perf_counter() - started))


class _DistWorkerHandle(WorkerHandle):
    """One persistent dist worker slot (fork + pipe pair + respawn)."""

    def __init__(self, ctx, slot: int, context: WorkerContext):
        self.context = context
        super().__init__(ctx, slot, _dist_worker_main, args=(context,),
                         name_prefix="repro-dist")

    def respawn(self, ctx) -> "_DistWorkerHandle":
        if self.process.is_alive():
            self.process.kill()
        self.process.join()
        self.close()
        return _DistWorkerHandle(ctx, self.slot, self.context)


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class ShardExecutor:
    """Run step groups over N persistent workers (or inline for N=1).

    ``run_step`` is a barrier: it returns only when every shard of the
    group has its gradients copied out of the slots, which is the
    window in which the parent may safely write shared parameters.
    """

    def __init__(self, context: WorkerContext, workers: int,
                 max_attempts: int = 3):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got "
                             f"{max_attempts}")
        if workers > context.slots.n_slots:
            raise ValueError(f"{workers} workers need {workers} grad "
                             f"slots, only {context.slots.n_slots} exist")
        self.context = context
        self.workers = int(workers)
        self.max_attempts = int(max_attempts)
        self.telemetry = PoolTelemetry(workers=self.workers)
        self.handles: List[_DistWorkerHandle] = []
        self._ctx = None
        if self.workers > 1:
            if not fork_available():
                raise ParallelUnavailableError(
                    "repro.dist requires the 'fork' start method; this "
                    "platform offers only "
                    f"{multiprocessing.get_all_start_methods()} — run "
                    "with dist_workers=1 instead")
            self._ctx = multiprocessing.get_context("fork")
            self.handles = [_DistWorkerHandle(self._ctx, slot, context)
                            for slot in range(self.workers)]

    # ------------------------------------------------------------------
    def run_step(self, epoch: int, step_index: int, group: StepGroup
                 ) -> Tuple[List[Dict[str, np.ndarray]],
                            Dict[int, List[Tuple[int, float]]]]:
        """Execute one step group; returns (grads by shard, losses).

        ``grads[i]`` is shard ``i``'s owned gradient-sum dict, ordered
        by shard index (the frozen reduction order); ``losses[i]`` its
        ``(day, loss)`` pairs.  Raises
        :class:`~repro.parallel.pool.TaskFailedError` on a worker
        exception and :class:`~repro.parallel.pool.WorkerCrashError`
        when one shard exhausts its crash budget.
        """
        started = time.perf_counter()
        try:
            if self.workers == 1:
                return self._run_inline(epoch, step_index, group)
            return self._run_forked(epoch, step_index, group)
        finally:
            self.telemetry.wall_seconds += time.perf_counter() - started

    def _run_inline(self, epoch: int, step_index: int, group: StepGroup):
        grads: List[Dict[str, np.ndarray]] = []
        losses: Dict[int, List[Tuple[int, float]]] = {}
        views = self.context.slots.views(0)
        for shard in group.shards:
            shard_start = time.perf_counter()
            losses[shard.index] = compute_shard(self.context, epoch,
                                                step_index, shard, views)
            grads.append(self.context.slots.read(0))
            self.telemetry.record_task(
                (epoch, step_index, shard.index), 0,
                time.perf_counter() - shard_start, 1)
        return grads, losses

    def _run_forked(self, epoch: int, step_index: int, group: StepGroup):
        generation = self.context.store.generation()
        pending: deque = deque(group.shards)
        attempts: Dict[int, int] = {shard.index: 0
                                    for shard in group.shards}
        grads: Dict[int, Dict[str, np.ndarray]] = {}
        losses: Dict[int, List[Tuple[int, float]]] = {}
        inflight: Dict[int, Shard] = {}        # slot -> shard
        while len(grads) < len(group.shards):
            self._dispatch(epoch, step_index, generation, pending,
                           attempts, inflight)
            self._pump(epoch, step_index, grads, losses, inflight)
            self._reap(epoch, step_index, grads, losses, pending,
                       attempts, inflight)
        ordered = [grads[shard.index] for shard in group.shards]
        return ordered, losses

    # ------------------------------------------------------------------
    def _dispatch(self, epoch, step_index, generation, pending, attempts,
                  inflight) -> None:
        self.telemetry.observe_queue_depth(len(pending))
        for handle in self.handles:
            if handle.slot in inflight or not pending:
                continue
            shard = pending.popleft()
            try:
                handle.task_w.send((epoch, step_index, shard, generation))
            except OSError:
                # Died between tasks.  Whether a killed worker is caught
                # here or in ``_reap`` is kernel pipe-teardown timing;
                # both paths warn identically so the observable behavior
                # is race-free.  (Unlike the mid-compute path this does
                # not charge the shard's replay budget — the shard was
                # never lost.)
                self.telemetry.crashes += 1
                warnings.warn(
                    f"repro.dist: worker {handle.slot} died idle; "
                    f"replaying shard {shard.index} of step "
                    f"{step_index} on a fresh worker",
                    RuntimeWarning, stacklevel=6)
                pending.appendleft(shard)
                self._replace(handle)
                continue
            attempts[shard.index] += 1
            inflight[handle.slot] = shard
            handle.current = shard.index
            handle.dispatched_at = time.perf_counter()

    def _pump(self, epoch, step_index, grads, losses, inflight) -> None:
        conns = {handle.event_r: handle for handle in self.handles
                 if handle.slot in inflight and not handle.broken}
        if not conns:
            if inflight:
                time.sleep(_POLL_SECONDS)      # only broken workers left
            return
        for conn in _wait_connections(list(conns), timeout=_POLL_SECONDS):
            handle = conns[conn]
            try:
                event = conn.recv()
            except (EOFError, OSError):
                handle.broken = True
                continue
            self._apply_event(handle, epoch, step_index, event, grads,
                              losses, inflight)

    def _apply_event(self, handle, epoch, step_index, event, grads,
                     losses, inflight) -> None:
        kind, slot, shard_index, payload, seconds = event
        inflight.pop(slot, None)
        handle.current = None
        if kind != "done":
            raise TaskFailedError((epoch, step_index, shard_index),
                                  slot, payload)
        # Copy the slot's gradients out *before* the worker can get a
        # new shard — the slot is single-writer by protocol.
        grads[shard_index] = self.context.slots.read(slot)
        losses[shard_index] = payload
        self.telemetry.record_task((epoch, step_index, shard_index), slot,
                                   seconds, 1)

    def _reap(self, epoch, step_index, grads, losses, pending, attempts,
              inflight) -> None:
        for handle in self.handles:
            shard = inflight.get(handle.slot)
            if shard is None:
                continue
            if handle.broken or not handle.process.is_alive():
                # Drain the result-then-died race: the worker may have
                # written its event before dying.
                if not handle.broken and handle.event_r.poll():
                    try:
                        event = handle.event_r.recv()
                    except (EOFError, OSError):
                        event = None
                    if event is not None:
                        self._apply_event(handle, epoch, step_index,
                                          event, grads, losses, inflight)
                        self._replace(handle)
                        continue
                self.telemetry.crashes += 1
                if attempts[shard.index] >= self.max_attempts:
                    raise WorkerCrashError(
                        (epoch, step_index, shard.index),
                        attempts[shard.index],
                        f"exit code {handle.process.exitcode}")
                warnings.warn(
                    f"repro.dist: worker {handle.slot} lost shard "
                    f"{shard.index} of step {step_index} (exit code "
                    f"{handle.process.exitcode}); replaying (attempt "
                    f"{attempts[shard.index]}/{self.max_attempts})",
                    RuntimeWarning, stacklevel=5)
                self.telemetry.retries += 1
                inflight.pop(handle.slot, None)
                pending.appendleft(shard)
                self._replace(handle)

    def _replace(self, handle: _DistWorkerHandle) -> None:
        """Respawn in place: a fresh fork of the *current* parent, so
        the newcomer adopts the current shared weights."""
        self.handles[handle.slot] = handle.respawn(self._ctx)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop every worker: sentinel when idle, terminate otherwise."""
        for handle in self.handles:
            graceful = handle.process.is_alive()
            if graceful:
                try:
                    handle.task_w.send(None)
                except OSError:
                    graceful = False
            if not graceful and handle.process.is_alive():
                handle.process.terminate()
        deadline = time.monotonic() + 5.0
        for handle in self.handles:
            handle.process.join(timeout=max(deadline - time.monotonic(),
                                            0.1))
            if handle.process.is_alive():   # pragma: no cover - stuck
                handle.process.kill()
                handle.process.join(timeout=1.0)
            handle.close()
        self.handles = []
