"""Deterministic partitioning of a training step's work.

A data-parallel step must produce the same numbers no matter how many
workers execute it, so the *plan* — which days form one optimizer step,
how the step splits into shards, and in which order shard gradients are
reduced — is a pure function of the configuration and the epoch's
(already shuffled) day order.  Workers are merely a scheduling pool over
the plan's shards; adding or removing workers reassigns shards to
processes but never changes the plan itself.

Two partition axes are provided:

- **day shards** (:meth:`ShardPlan.for_days`) — the day-group of one
  optimizer step split into contiguous single- or multi-day shards,
  the unit :class:`~repro.dist.worker.ShardExecutor` dispatches;
- **row blocks** (:func:`row_blocks` / :func:`block_spmm`) — contiguous
  row ranges of the stock graph.  CSR propagation is row-separable
  (each output row reads only its own ``indptr`` span), so a row-block
  spmm computed block-by-block is bitwise-equal to the whole-matrix
  kernel — the property that makes the sparse kernels safe to
  partition across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..sparse import CSRMatrix
from ..tensor.sparse import SparsePattern, _csr_matmul

__all__ = ["Shard", "StepGroup", "ShardPlan", "row_blocks", "block_spmm"]


@dataclass(frozen=True)
class Shard:
    """One worker-executable unit: a contiguous run of training days.

    ``index`` is the shard's position inside its step group — the frozen
    key of the gradient reduction order.
    """

    index: int
    days: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.days)


@dataclass(frozen=True)
class StepGroup:
    """The shards of one optimizer step, in reduction order."""

    index: int
    shards: Tuple[Shard, ...]

    @property
    def days(self) -> Tuple[int, ...]:
        """Every day of the step, in canonical (schedule) order."""
        return tuple(day for shard in self.shards for day in shard.days)

    def __len__(self) -> int:
        return len(self.shards)


@dataclass(frozen=True)
class ShardPlan:
    """An epoch's full schedule: optimizer steps of day shards.

    Build with :meth:`for_days`.  The plan depends only on the day order
    and the grouping knobs — never on the worker count — which is what
    keeps 1-, 2- and 4-worker runs bitwise-identical.
    """

    steps: Tuple[StepGroup, ...]
    days_per_step: int
    days_per_shard: int

    @classmethod
    def for_days(cls, day_order: Sequence[int], days_per_step: int,
                 days_per_shard: int = 1) -> "ShardPlan":
        """Slice a (shuffled) day order into steps of contiguous shards.

        Every ``days_per_step`` consecutive days form one optimizer
        step; within a step, every ``days_per_shard`` consecutive days
        form one shard (the last step and shard may be ragged).  With
        ``days_per_step=1`` the plan degenerates to one step per day —
        the serial trainer's schedule.
        """
        if days_per_step < 1:
            raise ValueError(f"days_per_step must be >= 1, got "
                             f"{days_per_step}")
        if days_per_shard < 1:
            raise ValueError(f"days_per_shard must be >= 1, got "
                             f"{days_per_shard}")
        days = [int(day) for day in day_order]
        steps: List[StepGroup] = []
        for step_index, start in enumerate(range(0, len(days),
                                                 days_per_step)):
            group_days = days[start:start + days_per_step]
            shards = tuple(
                Shard(index=shard_index,
                      days=tuple(group_days[off:off + days_per_shard]))
                for shard_index, off in enumerate(
                    range(0, len(group_days), days_per_shard)))
            steps.append(StepGroup(index=step_index, shards=shards))
        return cls(steps=tuple(steps), days_per_step=int(days_per_step),
                   days_per_shard=int(days_per_shard))

    @property
    def num_days(self) -> int:
        return sum(len(group.days) for group in self.steps)

    @property
    def max_shards(self) -> int:
        """The widest step — how many grad slots an executor needs."""
        return max((len(group) for group in self.steps), default=0)

    def __len__(self) -> int:
        return len(self.steps)


# ----------------------------------------------------------------------
# row-block partitioning of the stock graph
# ----------------------------------------------------------------------
def row_blocks(n_rows: int, n_blocks: int) -> List[Tuple[int, int]]:
    """Split ``[0, n_rows)`` into ``n_blocks`` contiguous ``(start, stop)``
    ranges, sizes differing by at most one (larger blocks first).

    Deterministic in its arguments; empty trailing blocks are dropped so
    every returned range is non-empty.
    """
    if n_rows < 0:
        raise ValueError(f"n_rows must be >= 0, got {n_rows}")
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
    base, remainder = divmod(n_rows, n_blocks)
    blocks: List[Tuple[int, int]] = []
    start = 0
    for index in range(n_blocks):
        size = base + (1 if index < remainder else 0)
        if size == 0:
            break
        blocks.append((start, start + size))
        start += size
    return blocks


def _block_pattern(pattern: SparsePattern,
                   start: int, stop: int) -> Tuple[SparsePattern, slice]:
    """The CSR sub-pattern of rows ``[start, stop)`` plus its nnz span."""
    indptr = pattern.indptr
    lo, hi = int(indptr[start]), int(indptr[stop])
    sub = SparsePattern(indptr[start:stop + 1] - lo,
                        pattern.indices[lo:hi],
                        (stop - start, pattern.shape[1]))
    return sub, slice(lo, hi)


def block_spmm(matrix: CSRMatrix, dense: np.ndarray,
               n_blocks: int) -> np.ndarray:
    """``matrix @ dense`` computed one contiguous row block at a time.

    Each block is an independent call into the shared CSR kernel over a
    sliced ``indptr`` span, so the result is bitwise-identical to the
    single-call :meth:`CSRMatrix.matmul` — the segment ops are
    partition-friendly.  This is the primitive a row-parallel
    propagation shard runs; the executor's tests pin the bitwise
    property.
    """
    dense = np.asarray(dense, dtype=np.float64)
    squeeze = dense.ndim == 1
    if squeeze:
        dense = dense[:, None]
    n_rows = matrix.shape[0]
    parts = []
    for start, stop in row_blocks(n_rows, n_blocks):
        sub, span = _block_pattern(matrix.pattern, start, stop)
        parts.append(_csr_matmul(sub, matrix.data[span], dense))
    if not parts:
        out = np.zeros(dense.shape[:-2] + (0, dense.shape[-1]),
                       dtype=np.float64)
    else:
        out = np.concatenate(parts, axis=-2)
    return out[..., 0] if squeeze else out
