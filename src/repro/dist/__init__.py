"""repro.dist — deterministic intra-run data parallelism.

The run-level pool (:mod:`repro.parallel`) parallelizes *across*
independent runs of a sweep; this package parallelizes *inside* one
training run without changing its numbers.  The design splits into
four pieces, each reusable on its own:

- :mod:`~repro.dist.plan` — :class:`ShardPlan`, the pure function from
  (day order, grouping knobs) to the step/shard schedule, plus the
  row-block partitioning of the stock graph (:func:`row_blocks`,
  :func:`block_spmm`) built on the CSR kernels' row-separability;
- :mod:`~repro.dist.reduce` — :class:`GradReducer`, the frozen fan-in
  tree that pins the floating-point association order of gradient sums;
- :mod:`~repro.dist.params` — :class:`ParamStore` and
  :class:`GradSlots`, live parameters/Adam moments and per-worker
  gradient buffers in ``multiprocessing.shared_memory`` so weight
  broadcast and gradient return never pickle anything;
- :mod:`~repro.dist.worker` — :class:`ShardExecutor`, the forked
  worker pool (lifecycle lifted from :mod:`repro.parallel.pool`:
  PDEATHSIG, crash detection, bounded shard replay) with an inline
  single-process mode that is the serial numerical reference.

:func:`fit_distributed` (or :class:`DistTrainer`, or simply
``TrainConfig(dist_workers=N)``) ties them into the existing trainer.
Worker count never affects the numerics: under float64, 1-, 2- and
4-worker runs produce bitwise-identical epoch losses and final
parameters; under fp32/mixed the association order is still frozen and
runs agree to storage-precision tolerance.  See docs/distributed.md.
"""

from .params import GradSlots, ParamStore
from .plan import Shard, ShardPlan, StepGroup, block_spmm, row_blocks
from .reduce import GradReducer
from .trainer import DistTrainer, fit_distributed
from .worker import (ShardExecutor, WorkerContext, compute_shard,
                     reseed_shard, shard_rngs)

__all__ = [
    "Shard",
    "ShardPlan",
    "StepGroup",
    "row_blocks",
    "block_spmm",
    "GradReducer",
    "ParamStore",
    "GradSlots",
    "ShardExecutor",
    "WorkerContext",
    "compute_shard",
    "reseed_shard",
    "shard_rngs",
    "DistTrainer",
    "fit_distributed",
]
