"""Frozen-order gradient reduction.

Floating-point addition is not associative, so "sum the shard gradients"
is only deterministic if the association order is pinned.
:class:`GradReducer` defines *the* canonical order — a fixed fan-in tree
over shard indices — and every execution path (inline single-process,
2-worker, 4-worker) reduces through this one function, which is what
makes data-parallel gradients bitwise-identical to the serial reference
under float64 and keeps fp32/mixed runs within the documented tolerance
(the association order never varies, only the storage precision does).

The reduction is over *shard index*, never arrival order: workers finish
in timing-dependent order, but the executor buckets results by shard
before reducing, so scheduling jitter cannot leak into the numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["GradReducer"]


class GradReducer:
    """Fixed fan-in tree reduction with a frozen order.

    With ``fan_in=2`` and four shards the association is
    ``(g0 + g1) + (g2 + g3)`` — always, regardless of which worker
    produced which gradient first.  ``fan_in=len(shards)`` degenerates
    to left-to-right serial accumulation; the default of 2 is the
    classic tree that a future cross-host reducer can evaluate with
    ``log2(n)`` latency without changing any numbers.
    """

    def __init__(self, fan_in: int = 2):
        if fan_in < 2:
            raise ValueError(f"fan_in must be >= 2, got {fan_in}")
        self.fan_in = int(fan_in)

    # ------------------------------------------------------------------
    def reduction_order(self, n: int) -> List[Tuple[int, ...]]:
        """The frozen association, one tuple of input slots per round.

        Purely descriptive (docs and tests introspect it); ``reduce``
        implements exactly this order.
        """
        rounds: List[Tuple[int, ...]] = []
        level = list(range(n))
        while len(level) > 1:
            merged = []
            for i in range(0, len(level), self.fan_in):
                block = level[i:i + self.fan_in]
                if len(block) > 1:
                    rounds.append(tuple(block))
                merged.append(block[0])
            level = merged
        return rounds

    # ------------------------------------------------------------------
    def reduce_arrays(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Tree-sum ``arrays`` in the frozen order; out-of-place.

        The inputs are never mutated; a single input comes back as a
        copy so the caller may scale the result in place.
        """
        if not arrays:
            raise ValueError("nothing to reduce")
        level: List[np.ndarray] = list(arrays)
        if len(level) == 1:
            return np.array(level[0], copy=True)
        first = True
        while len(level) > 1:
            merged = []
            for i in range(0, len(level), self.fan_in):
                block = level[i:i + self.fan_in]
                if len(block) == 1:
                    acc = (np.array(block[0], copy=True) if first
                           else block[0])
                else:
                    acc = block[0] + block[1]      # fresh array
                    for extra in block[2:]:
                        acc += extra
                merged.append(acc)
            level = merged
            first = False
        return level[0]

    def reduce(self, shards: Sequence[Dict[str, np.ndarray]]
               ) -> Dict[str, np.ndarray]:
        """Reduce per-shard gradient dicts (keyed by parameter name).

        ``shards`` must be ordered by shard index; every dict must hold
        the same keys.  Returns freshly-allocated sums the caller owns.
        """
        if not shards:
            raise ValueError("nothing to reduce")
        keys = list(shards[0])
        for index, shard in enumerate(shards[1:], start=1):
            if list(shard) != keys:
                raise ValueError(
                    f"shard {index} gradient keys differ from shard 0; "
                    "the reduction order would be ambiguous")
        return {key: self.reduce_arrays([shard[key] for shard in shards])
                for key in keys}
