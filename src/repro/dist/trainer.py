"""The data-parallel fit loop: ``fit_distributed`` and ``DistTrainer``.

One optimizer step consumes ``TrainConfig.dist_days_per_step`` days of
the epoch's (shuffled) schedule instead of one: the step's days are
computed as independent shards against the same shared parameters, the
per-shard gradients are tree-reduced in the frozen order and averaged
over the step's days, and one Adam step applies the result.  With
``dist_days_per_step=1`` this degenerates to the serial trainer's
one-step-per-day schedule.

Determinism contract (the same bar every prior perf PR cleared): the
numbers are a pure function of the *plan*, never of the worker count —
``dist_workers`` ∈ {1, 2, 4, ...} all produce bitwise-identical epoch
losses and final parameters under float64 (tolerance-bounded under the
fp32/mixed dtype policies, where only storage precision differs, never
association order).  The serial reference is ``dist_workers=1``: the
identical plan/reduce/step code path executed inline, no forks.

Integration rides the existing :class:`~repro.core.trainer.Trainer`
surface: the same :class:`~repro.core.callbacks.TrainerCallback` events
fire in the same order (``on_batch_end`` once per day, in schedule
order), ``Trainer.state_dict()`` stays valid at step boundaries, early
stopping evaluates in the parent, and per-worker utilization flows into
the experiment store as a ``dist`` telemetry report when a
:class:`~repro.store.StoreCallback` is wired.
"""

from __future__ import annotations

import warnings
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..core.callbacks import CallbackList, TrainerCallback
from ..core.trainer import NonFiniteLossError, Trainer, _FitState
from ..obs.tracer import trace
from ..optim import clip_grad_norm_
from ..tensor import arena, dtype_policy, fused_kernels
from .params import GradSlots, ParamStore
from .plan import ShardPlan
from .reduce import GradReducer
from .worker import ShardExecutor, WorkerContext

__all__ = ["DistTrainer", "fit_distributed"]


def _resolve_dist_workers(requested: int) -> int:
    """``dist_workers`` semantics: 0 disables (callers guard), N >= 1
    runs the dist loop with N processes (1 = inline serial reference)."""
    import os

    if requested < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, int(requested))


def fit_distributed(trainer: Trainer,
                    callbacks: Optional[Sequence[TrainerCallback]] = None,
                    resume_from: Any = None,
                    workers: Optional[int] = None) -> List[float]:
    """Run ``trainer``'s training epochs data-parallel; per-epoch losses.

    Drop-in for :meth:`Trainer.fit` (which delegates here whenever
    ``TrainConfig.dist_workers`` is non-zero), with two documented
    restrictions: ``resume_from`` is not yet supported under the
    distributed loop (train serially to resume; a checkpoint *taken*
    during a distributed fit is still valid and loadable), and
    ``nan_policy="rollback"`` is not available (use ``"raise"`` or
    ``"ignore"``).
    """
    cfg = trainer.config
    if resume_from is not None:
        raise NotImplementedError(
            "resume_from is not supported under the distributed fit loop "
            "yet; resume with dist_workers=0 (serial) — checkpoints taken "
            "during a distributed fit load fine")
    if cfg.nan_policy == "rollback":
        raise ValueError(
            "nan_policy='rollback' is not supported under the distributed "
            "fit loop; use 'raise' or 'ignore' (or train with "
            "dist_workers=0)")
    if cfg.dist_days_per_step < 1:
        raise ValueError(f"dist_days_per_step must be >= 1, got "
                         f"{cfg.dist_days_per_step}")
    n_workers = _resolve_dist_workers(
        cfg.dist_workers if workers is None else workers)

    events = CallbackList(callbacks or ())
    train_days, validation_days = trainer._training_days()
    state = _FitState(rng=np.random.default_rng(cfg.seed))
    trainer._fit_state = state
    model = trainer.model
    model.train()
    reducer = GradReducer()

    with dtype_policy(cfg.dtype_policy), \
            fused_kernels(cfg.fused_kernels), \
            arena(bool(cfg.buffer_arena)):
        store = ParamStore(model, trainer.optimizer)
        slots = GradSlots(
            {name: param.data
             for name, param in model.named_parameters()},
            n_slots=n_workers, base_name=store.base_name + "-slots")
        try:
            store.adopt_parent()
            store.commit(trainer.optimizer._step_count)
            # Workers fork *after* parent adoption: they inherit the
            # mappings and the exact objects, so nothing is pickled.
            executor = ShardExecutor(
                WorkerContext(model=model, dataset=trainer.dataset,
                              config=cfg, loss_fn=trainer.loss_fn,
                              store=store, slots=slots),
                workers=n_workers)
            trainer.dist_executor = executor
            try:
                _dist_epochs(trainer, state, events, executor, store,
                             reducer, train_days, validation_days)
            finally:
                executor.shutdown()
                trainer.dist_executor = None
        finally:
            # Re-own the parameters before the segments disappear; the
            # final weights must outlive the store.
            for _, param in model.named_parameters():
                param.data = np.array(param.data)
                param.grad = None
            store.close()
            slots.close()
        if state.best_state is not None:
            model.load_state_dict(state.best_state)
        events.on_fit_end(trainer, state.losses)
        _record_dist_telemetry(executor, callbacks or ())
    return state.losses


def _dist_epochs(trainer: Trainer, state: _FitState,
                 events: CallbackList, executor: ShardExecutor,
                 store: ParamStore, reducer: GradReducer,
                 train_days: List[int],
                 validation_days: List[int]) -> None:
    cfg = trainer.config
    model = trainer.model
    named = list(model.named_parameters())
    params = [param for _, param in named]
    while state.epoch < cfg.epochs:
        epoch = state.epoch
        order = np.array(train_days)
        if cfg.shuffle:
            state.rng.shuffle(order)
        state.day_order = [int(day) for day in order]
        state.batch_index = 0
        state.epoch_loss = 0.0
        events.on_epoch_start(trainer, epoch)
        plan = ShardPlan.for_days(state.day_order, cfg.dist_days_per_step)
        with trace("epoch"):
            for group in plan.steps:
                grads, shard_losses = executor.run_step(epoch, group.index,
                                                        group)
                # (day, loss) pairs in canonical schedule order — the
                # accumulation order is part of the frozen plan.
                day_losses: List[Tuple[int, float]] = []
                for shard in group.shards:
                    day_losses.extend(shard_losses[shard.index])
                _check_finite(cfg, epoch, day_losses)
                reduced = reducer.reduce(grads)
                n_days = len(group.days)
                with trace("grad_reduce"):
                    for name, param in named:
                        grad = reduced[name]
                        if n_days > 1:
                            grad /= n_days
                        param.grad = grad
                with trace("optimizer_step"):
                    if cfg.grad_clip:
                        clip_grad_norm_(params, cfg.grad_clip)
                    trainer.optimizer.step()
                    store.commit(trainer.optimizer._step_count)
                for day, day_loss in day_losses:
                    state.epoch_loss += day_loss
                    state.batch_index += 1
                    events.on_batch_end(trainer, epoch, int(day), day_loss)
        mean_loss = state.epoch_loss / max(len(state.day_order), 1)
        state.losses.append(mean_loss)
        state.day_order = None
        state.batch_index = 0
        state.epoch_loss = 0.0
        state.epoch = epoch + 1
        stop = False
        if cfg.early_stopping_patience is not None:
            val_loss = trainer._validation_loss(validation_days)
            if val_loss < state.best_val:
                state.best_val = val_loss
                state.best_state = model.state_dict()
                state.bad_epochs = 0
            else:
                state.bad_epochs += 1
                stop = state.bad_epochs >= cfg.early_stopping_patience
        events.on_epoch_end(trainer, epoch, mean_loss)
        if stop:
            break


def _check_finite(cfg, epoch: int,
                  day_losses: List[Tuple[int, float]]) -> None:
    bad = [(day, loss) for day, loss in day_losses
           if not np.isfinite(loss)]
    if not bad:
        return
    day, loss = bad[0]
    detail = f"non-finite loss {loss!r} at epoch {epoch}, day {day}"
    if cfg.nan_policy == "ignore":
        warnings.warn(detail + " (nan_policy='ignore')", RuntimeWarning,
                      stacklevel=4)
        return
    raise NonFiniteLossError(
        detail + "; inspect gradients/learning rate (nan_policy="
        "'rollback' is unavailable under dist_workers)")


def _record_dist_telemetry(executor: ShardExecutor,
                           callbacks: Sequence[TrainerCallback]) -> None:
    """Flow per-worker utilization into the store when one is wired."""
    from ..store.callback import StoreCallback

    for cb in callbacks:
        if isinstance(cb, StoreCallback) and cb.run_id is not None:
            cb.store.record_report(
                executor.telemetry.report(kind="dist"),
                kind="dist")
            return


class DistTrainer(Trainer):
    """A :class:`~repro.core.trainer.Trainer` that always fits through
    the data-parallel loop.

    ``TrainConfig.dist_workers`` picks the process count (0 and 1 both
    run inline — the serial reference; negative means one per CPU);
    everything else — construction, ``evaluate``, ``predict``,
    ``run``, ``state_dict`` — is inherited unchanged.
    """

    def fit(self, callbacks: Optional[Sequence[TrainerCallback]] = None,
            resume_from: Any = None) -> List[float]:
        return fit_distributed(
            self, callbacks=callbacks, resume_from=resume_from,
            workers=_resolve_dist_workers(self.config.dist_workers))
