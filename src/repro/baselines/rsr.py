"""Relational Stock Ranking (RSR) — Feng et al., TOIS 2019 [9].

The strongest published baseline of Table IV.  RSR is the canonical
*two-step* design the paper argues against: an LSTM first encodes each
stock's window into a sequential embedding, and a temporal graph
convolution then revises the embeddings using stock relations.  Two
relational-strength functions are defined:

- **explicit** (``RSR_E``): ``g_ij = (e_iᵀ e_j) · φ(wᵀ a_ij + b)`` — the
  embedding similarity scaled by a learned relation-importance score;
- **implicit** (``RSR_I``): ``g_ij = φ(wᵀ [e_i ‖ e_j ‖ a_ij] + b)`` — a
  learned function of both embeddings and the relation vector.

Strengths are softmax-normalized over each stock's neighbors, the revised
embedding is the strength-weighted neighbor sum, and the concatenation
``[e_i ‖ r_i]`` feeds the scoring head.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import RelationMatrix
from ..nn import LSTM, Linear
from ..nn.module import Module, Parameter
from ..nn import init
from ..nn.random import get_rng
from ..tensor import Tensor, concat, einsum, ensure_tensor, softmax


class RSR(Module):
    """Relational stock ranking with explicit or implicit relation modeling.

    Parameters
    ----------
    relations:
        The multi-hot relation matrix 𝓐.
    mode:
        ``"explicit"`` or ``"implicit"`` (the paper's RSR_E / RSR_I).
    hidden_size:
        LSTM embedding width ``U``.
    """

    uses_relations = True

    def __init__(self, relations: RelationMatrix, num_features: int = 4,
                 hidden_size: int = 32, mode: str = "explicit",
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if mode not in ("explicit", "implicit"):
            raise ValueError(f"mode must be 'explicit' or 'implicit', got "
                             f"{mode!r}")
        gen = rng if rng is not None else get_rng()
        self.mode = mode
        self.relations = relations
        self.encoder = LSTM(num_features, hidden_size, rng=gen)
        self.hidden_size = hidden_size
        k = relations.num_types
        if mode == "explicit":
            self.rel_weight = Parameter(np.empty(k))
            init.uniform_(self.rel_weight, -0.1, 0.1, rng=gen)
            self.rel_bias = Parameter(np.zeros(1))
        else:
            self.pair_weight = Parameter(np.empty(2 * hidden_size + k))
            init.uniform_(self.pair_weight, -0.1, 0.1, rng=gen)
            self.pair_bias = Parameter(np.zeros(1))
        self.scorer = Linear(2 * hidden_size, 1, rng=gen)
        self._mask = relations.binary_adjacency()
        self._neg_inf = np.where(self._mask > 0, 0.0, -1e9)
        self._relation_tensor = Tensor(relations.tensor)
        self._isolated = self._mask.sum(axis=1) == 0

    # ------------------------------------------------------------------
    def _strengths(self, embeddings: Tensor) -> Tensor:
        """Neighbor-normalized relational strength matrix ``(N, N)``."""
        if self.mode == "explicit":
            similarity = embeddings @ embeddings.swapaxes(-1, -2)
            importance = (einsum("ijk,k->ij", self._relation_tensor,
                                 self.rel_weight) + self.rel_bias)
            raw = similarity * importance.leaky_relu(0.2)
        else:
            n, u = embeddings.shape
            w_src = self.pair_weight[:u]
            w_dst = self.pair_weight[u:2 * u]
            w_rel = self.pair_weight[2 * u:]
            src_term = (embeddings @ w_src).unsqueeze(1)   # (N, 1)
            dst_term = (embeddings @ w_dst).unsqueeze(0)   # (1, N)
            rel_term = einsum("ijk,k->ij", self._relation_tensor, w_rel)
            raw = (src_term + dst_term + rel_term
                   + self.pair_bias).leaky_relu(0.2)
        # Mask non-neighbors and normalize per row.
        return softmax(raw + Tensor(self._neg_inf), axis=-1)

    def forward(self, x: Tensor) -> Tensor:
        """Window features ``(T, N, D)`` → scores ``(N,)``."""
        x = ensure_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"expected (T, N, D) input, got {x.shape}")
        per_stock = x.transpose(1, 0, 2)            # (N, T, D)
        _, (embeddings, _) = self.encoder(per_stock)  # (N, U)
        strengths = self._strengths(embeddings)
        revised = strengths @ embeddings             # (N, U)
        # Isolated stocks receive no neighbor information: zero out the
        # softmax's spurious uniform row for them.
        keep = Tensor((~self._isolated).astype(np.float64)[:, None])
        revised = revised * keep
        features = concat([embeddings, revised], axis=-1)
        return self.scorer(features).squeeze(-1)

    def __repr__(self) -> str:
        return f"RSR(mode={self.mode!r}, hidden={self.hidden_size})"
