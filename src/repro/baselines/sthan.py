"""STHAN-SR: spatiotemporal hypergraph attention for stock ranking [10].

Sawhney et al. (AAAI 2021) model relations as a *hypergraph* — each
relation type induces a hyperedge joining all stocks that share it — and
capture temporal patterns with a Hawkes-style attention whose influence
decays exponentially with distance from the prediction day.  This is the
other published two-step ranker the paper compares against in Table V.

Implementation
--------------
1. A GRU encodes each stock's window; Hawkes attention pools the hidden
   states: ``w_t ∝ softmax(vᵀ tanh(W h_t)) · exp(−δ (T−t))`` with a
   learnable excitation-decay δ ≥ 0.
2. Hypergraph convolution à la HGNN:
   ``Z' = D_v^{-1/2} H W_e D_e^{-1} Hᵀ D_v^{-1/2} Z Θ`` with a learnable
   diagonal hyperedge-weight ``W_e`` (the attention over hyperedges).
3. A linear head scores the node embeddings; trained with the same
   regression + pairwise-ranking objective.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graph import RelationMatrix
from ..nn import GRU, Linear
from ..nn.module import Module, Parameter
from ..nn import init
from ..nn.random import get_rng
from ..tensor import Tensor, ensure_tensor, softmax


def hyperedges_from_relations(relations: RelationMatrix) -> np.ndarray:
    """Incidence matrix ``H (N, E)``: one hyperedge per usable relation type.

    A stock belongs to hyperedge ``k`` when it carries at least one type-k
    relation; types linking fewer than two stocks are dropped.
    """
    membership = (relations.tensor.sum(axis=1) > 0)      # (N, K)
    keep = membership.sum(axis=0) >= 2
    incidence = membership[:, keep].astype(np.float64)
    if incidence.shape[1] == 0:
        raise ValueError("relation matrix induces no usable hyperedges")
    return incidence


class HawkesAttention(Module):
    """Temporal pooling with exponential excitation decay."""

    def __init__(self, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        gen = rng if rng is not None else get_rng()
        self.proj = Linear(hidden_size, hidden_size, rng=gen)
        self.context = Parameter(np.empty(hidden_size))
        init.uniform_(self.context, -0.1, 0.1, rng=gen)
        # softplus(raw_decay) keeps the decay rate positive.
        self.raw_decay = Parameter(np.zeros(1))

    def forward(self, hidden_states: Tensor) -> Tensor:
        """``(N, T, U)`` hidden states → ``(N, U)`` pooled embedding."""
        hidden_states = ensure_tensor(hidden_states)
        _, steps, _ = hidden_states.shape
        scores = self.proj(hidden_states).tanh() @ self.context   # (N, T)
        decay = (1.0 + self.raw_decay.exp()).log()                # softplus
        ages = Tensor(np.arange(steps - 1, -1, -1, dtype=np.float64))
        decayed = scores - decay * ages                            # log-space
        weights = softmax(decayed, axis=-1)                        # (N, T)
        return (weights.unsqueeze(-1) * hidden_states).sum(axis=1)


class HypergraphConv(Module):
    """HGNN-style convolution with learnable hyperedge weights."""

    def __init__(self, incidence: np.ndarray, in_features: int,
                 out_features: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        gen = rng if rng is not None else get_rng()
        self.incidence = np.asarray(incidence, dtype=np.float64)
        n, e = self.incidence.shape
        self.edge_logits = Parameter(np.zeros(e))
        self.theta = Linear(in_features, out_features, rng=gen)
        edge_degree = self.incidence.sum(axis=0)
        node_degree = self.incidence.sum(axis=1)
        self._inv_edge_degree = 1.0 / np.maximum(edge_degree, 1.0)
        safe_degree = np.maximum(node_degree, 1.0)
        self._node_scale = np.where(node_degree > 0,
                                    safe_degree ** -0.5, 0.0)

    def forward(self, x: Tensor) -> Tensor:
        """``(N, C_in)`` node features → ``(N, C_out)``."""
        x = ensure_tensor(x)
        edge_weights = softmax(self.edge_logits, axis=-1) \
            * float(self.edge_logits.shape[0])
        h = Tensor(self.incidence)
        scaled = x * Tensor(self._node_scale[:, None])
        gathered = h.swapaxes(-1, -2) @ scaled                  # (E, C)
        gathered = gathered * Tensor(self._inv_edge_degree[:, None])
        gathered = gathered * edge_weights.unsqueeze(-1)
        spread = h @ gathered                                   # (N, C)
        spread = spread * Tensor(self._node_scale[:, None])
        return self.theta(spread)


class STHANSR(Module):
    """Spatiotemporal hypergraph attention network for stock ranking."""

    uses_relations = True

    def __init__(self, relations: RelationMatrix, num_features: int = 4,
                 hidden_size: int = 32,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        gen = rng if rng is not None else get_rng()
        self.encoder = GRU(num_features, hidden_size, rng=gen)
        self.hawkes = HawkesAttention(hidden_size, rng=gen)
        incidence = hyperedges_from_relations(relations)
        self.hyperconv = HypergraphConv(incidence, hidden_size, hidden_size,
                                        rng=gen)
        self.scorer = Linear(hidden_size, 1, rng=gen)

    def forward(self, x: Tensor) -> Tensor:
        """Window features ``(T, N, D)`` → scores ``(N,)``."""
        x = ensure_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"expected (T, N, D) input, got {x.shape}")
        per_stock = x.transpose(1, 0, 2)                # (N, T, D)
        states, _ = self.encoder(per_stock)             # (N, T, U)
        pooled = self.hawkes(states)                    # (N, U)
        spatial = self.hyperconv(pooled).relu() + pooled
        return self.scorer(spatial).squeeze(-1)
