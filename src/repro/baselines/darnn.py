"""DA-RNN: dual-stage attention-based recurrent network (Qin et al. [5]).

The paper's related work singles out DA-RNN as "a novel model to capture
long-term temporal dependencies with a dual attention mechanism"; it is
not in Table IV but is the strongest attention-RNN of the era, so this
repository includes it as an *extra* relation-blind baseline.

Two attention stages per the original design, adapted to the ranking
protocol (one sequence per stock):

1. **Input attention** — at each time-step, a learned attention over the
   ``D`` driving features re-weights the input before the encoder LSTM
   consumes it (which feature matters varies through time).
2. **Temporal attention** — a decoder context vector attends over all
   encoder hidden states, so distant time-steps can contribute directly
   to the prediction instead of being squeezed through the last state.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import LSTMCell, Linear
from ..nn.module import Module, Parameter
from ..nn import init
from ..nn.random import get_rng
from ..tensor import Tensor, concat, ensure_tensor, softmax, stack, tanh


class InputAttention(Module):
    """Stage 1: per-step attention over the input features."""

    def __init__(self, num_features: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        gen = rng if rng is not None else get_rng()
        self.state_proj = Linear(2 * hidden_size, num_features, rng=gen)
        self.feature_gate = Parameter(np.empty(num_features))
        init.uniform_(self.feature_gate, -0.1, 0.1, rng=gen)

    def forward(self, x_t: Tensor, h: Tensor, c: Tensor) -> Tensor:
        """Re-weight features of ``x_t (B, D)`` given encoder state."""
        state = concat([h, c], axis=-1)                  # (B, 2H)
        logits = tanh(self.state_proj(state)) * self.feature_gate \
            + x_t * self.feature_gate
        weights = softmax(logits, axis=-1)               # (B, D)
        # The original multiplies each driving series by its weight; the
        # D-fold rescale keeps the input magnitude comparable.
        return x_t * weights * float(weights.shape[-1])


class TemporalAttention(Module):
    """Stage 2: attention over the encoder's hidden-state history."""

    def __init__(self, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        gen = rng if rng is not None else get_rng()
        self.score = Linear(hidden_size, 1, rng=gen)
        self.query = Linear(hidden_size, hidden_size, rng=gen)

    def forward(self, states: Tensor) -> Tensor:
        """Pool ``(B, T, H)`` encoder states into a ``(B, H)`` context."""
        queried = tanh(self.query(states))               # (B, T, H)
        logits = self.score(queried).squeeze(-1)         # (B, T)
        weights = softmax(logits, axis=-1)
        return (weights.unsqueeze(-1) * states).sum(axis=1)


class DARNN(Module):
    """Dual-stage attention RNN scorer for the ranking protocol."""

    uses_relations = False

    def __init__(self, num_features: int = 4, hidden_size: int = 32,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        gen = rng if rng is not None else get_rng()
        self.hidden_size = hidden_size
        self.input_attention = InputAttention(num_features, hidden_size,
                                              rng=gen)
        self.encoder = LSTMCell(num_features, hidden_size, rng=gen)
        self.temporal_attention = TemporalAttention(hidden_size, rng=gen)
        self.scorer = Linear(2 * hidden_size, 1, rng=gen)

    def forward(self, x: Tensor) -> Tensor:
        """Window features ``(T, N, D)`` → scores ``(N,)``."""
        x = ensure_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"expected (T, N, D) input, got {x.shape}")
        steps, batch = x.shape[0], x.shape[1]
        h, c = self.encoder.initial_state(batch)
        states = []
        for t in range(steps):
            weighted = self.input_attention(x[t], h, c)
            h, c = self.encoder(weighted, (h, c))
            states.append(h)
        history = stack(states, axis=1)                  # (N, T, H)
        context = self.temporal_attention(history)       # (N, H)
        return self.scorer(concat([context, h], axis=-1)).squeeze(-1)
