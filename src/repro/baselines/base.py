"""Common predictor interface for every comparison model (Table IV).

Two families exist:

- gradient models trained through the shared
  :class:`~repro.core.trainer.Trainer` (Rank_LSTM, RSR, RT-GAT, ...), and
- models with bespoke fitting (ARIMA least-squares, RL agents, the
  adversarially-trained classifier).

:class:`StockPredictor` unifies them: ``fit_predict`` runs the whole
train-then-score-the-test-period pipeline and returns a
:class:`PredictorResult` with timings, so Table IV and Figure 5 treat every
model identically.  ``can_rank`` mirrors the paper's '-' entries:
classification models cannot order stocks, so their MRR is undefined and
their "top-N" is a random draw from the predicted-up class.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

import numpy as np

from ..core.trainer import TrainConfig, Trainer
from ..data import StockDataset
from ..nn.module import Module


@dataclass
class PredictorResult:
    """Scores of one fitted model over the dataset's test period."""

    train_seconds: float
    test_seconds: float
    test_days: List[int]
    predictions: np.ndarray       # (num_test_days, num_stocks)
    actuals: np.ndarray           # (num_test_days, num_stocks)
    extras: dict = field(default_factory=dict)


class StockPredictor:
    """A model that can be fitted on a dataset and score the test days."""

    #: whether scores define a meaningful ranking (False → MRR is '-')
    can_rank: bool = True
    #: whether the model consumes the relation matrix
    uses_relations: bool = False
    #: category tag from Table IV: CLF / REG / RL / RAN
    category: str = "RAN"

    def fit_predict(self, dataset: StockDataset, config: TrainConfig
                    ) -> PredictorResult:
        raise NotImplementedError


class ModulePredictor(StockPredictor):
    """Adapter: a gradient scoring model trained by the shared Trainer.

    ``factory(rng)`` builds a fresh :class:`Module` mapping window features
    ``(T, N, D)`` to per-stock scores ``(N,)``.
    """

    def __init__(self, factory: Callable[[np.random.Generator], Module],
                 rng: Optional[np.random.Generator] = None,
                 category: str = "RAN", uses_relations: bool = False):
        self._factory = factory
        self._rng = rng if rng is not None else np.random.default_rng()
        self.category = category
        self.uses_relations = uses_relations

    def fit_predict(self, dataset: StockDataset, config: TrainConfig
                    ) -> PredictorResult:
        model = self._factory(self._rng)
        result = Trainer(model, dataset, config).run()
        return PredictorResult(train_seconds=result.train_seconds,
                               test_seconds=result.test_seconds,
                               test_days=result.test_days,
                               predictions=result.predictions,
                               actuals=result.actuals,
                               extras={"epoch_losses": result.epoch_losses})


def regression_config(config: TrainConfig) -> TrainConfig:
    """Config variant for REG/CLF baselines: no ranking loss (α = 0)."""
    return replace(config, alpha=0.0)


def collect_actuals(dataset: StockDataset, days: List[int]) -> np.ndarray:
    """Ground-truth next-day returns for the given prediction days."""
    return np.stack([dataset.label(day) for day in days])
