"""MTDNN: multi-scale two-way deep neural network (Liu et al., IJCAI 2020).

The paper's introduction describes MTDNN as "automatically learn[ing]
multi-scale patterns from wavelet-based and downsampling-based information
by using eXtreme gradient boosting and RNN".  This extra baseline
reproduces that two-way design against the ranking protocol:

- **Boosting way**: per stock-day, the window features are expanded into a
  multi-scale design vector (the raw window plus Haar approximation bands
  plus stride-downsampled versions) and a from-scratch gradient-boosted
  tree ensemble (:mod:`repro.ml`) regresses the next-day return.
- **Recurrent way**: a GRU consumes the same window per stock and
  regresses the next-day return; trained with the shared protocol.
- The final score is the mean of the two ways' standardized scores.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List

import numpy as np

from ..core.trainer import TrainConfig, Trainer
from ..data import StockDataset
from ..ml import GradientBoostingRegressor
from ..signal import multiscale_features
from .base import PredictorResult, StockPredictor, collect_actuals
from .rl import PolicyNetwork


def multiscale_design_row(window: np.ndarray, levels: int = 2
                          ) -> np.ndarray:
    """Flatten one stock's ``(T, D)`` window into a multi-scale vector.

    Concatenates, per feature: the raw series, its Haar approximation
    bands, and a stride-2 downsampled copy — the wavelet-based and
    downsampling-based "ways" of the MTDNN design.
    """
    window = np.asarray(window, dtype=np.float64)
    series = window.T                       # (D, T)
    max_levels = max(1, int(np.floor(np.log2(max(series.shape[-1], 2)))))
    pyramid = multiscale_features(series, levels=min(levels, max_levels))
    downsampled = series[:, ::2]
    parts = [band.reshape(-1) for band in pyramid]
    parts.append(downsampled.reshape(-1))
    return np.concatenate(parts)


def _design_matrix(dataset: StockDataset, days: List[int],
                   config: TrainConfig) -> np.ndarray:
    rows = []
    for day in days:
        features = dataset.features(int(day), config.window,
                                    config.num_features)
        for stock in range(features.shape[1]):
            rows.append(multiscale_design_row(features[:, stock, :]))
    return np.stack(rows)


def _standardize(scores: np.ndarray) -> np.ndarray:
    return (scores - scores.mean()) / (scores.std() + 1e-12)


class MTDNN(StockPredictor):
    """Two-way multi-scale predictor: boosted trees + GRU, blended."""

    can_rank = True
    category = "REG"
    uses_relations = False

    def __init__(self, n_estimators: int = 60, tree_depth: int = 3,
                 gru_hidden: int = 32, max_boost_days: int = 60,
                 seed: int = 0):
        self.n_estimators = n_estimators
        self.tree_depth = tree_depth
        self.gru_hidden = gru_hidden
        #: boosted-way training uses the most recent days only — the dense
        #: stock-day design matrix grows as days × stocks and tree fitting
        #: is the expensive part
        self.max_boost_days = max_boost_days
        self.seed = seed

    def fit_predict(self, dataset: StockDataset, config: TrainConfig
                    ) -> PredictorResult:
        cfg = replace(config, alpha=0.0)    # both ways are regressors
        train_days, test_days = dataset.split(cfg.window)
        if cfg.max_train_days is not None:
            train_days = train_days[-cfg.max_train_days:]

        start = time.perf_counter()
        # --- boosting way ---------------------------------------------
        boost_days = train_days[-self.max_boost_days:]
        design = _design_matrix(dataset, boost_days, cfg)
        targets = np.concatenate([dataset.label(int(day))
                                  for day in boost_days])
        booster = GradientBoostingRegressor(
            n_estimators=self.n_estimators, max_depth=self.tree_depth,
            learning_rate=0.1, subsample=0.7, seed=self.seed)
        booster.fit(design, targets)
        # --- recurrent way --------------------------------------------
        gru = PolicyNetwork(cfg.num_features, self.gru_hidden,
                            rng=np.random.default_rng(self.seed))
        trainer = Trainer(gru, dataset, cfg)
        trainer.train()
        train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        gru_scores = trainer.predict(test_days)
        rows = []
        for index, day in enumerate(test_days):
            day_design = _design_matrix(dataset, [day], cfg)
            boost_scores = booster.predict(day_design)
            blended = (_standardize(boost_scores)
                       + _standardize(gru_scores[index])) / 2.0
            rows.append(blended)
        test_seconds = time.perf_counter() - start
        return PredictorResult(train_seconds=train_seconds,
                               test_seconds=test_seconds,
                               test_days=list(test_days),
                               predictions=np.stack(rows),
                               actuals=collect_actuals(dataset, test_days))
