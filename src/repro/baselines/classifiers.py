"""Classification-based baselines (Table IV's CLF rows): ARIMA and A-LSTM.

Both predict a three-way movement class (up / neutral / down) rather than a
ranking.  Following the paper's protocol, "the classification-based methods
only output three results but cannot rank the stocks according to the
return ratio, so we randomly select top-N stocks" — here: scores are the
predicted class plus a small random tie-break, so the top-N is a uniform
draw from the best predicted class.  Their MRR is reported as NaN ('-' in
Table IV).

Movement classes are per-day cross-sectional terciles of the next-day
return, which keeps the three classes balanced on every market regime.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional

import numpy as np

from ..core.trainer import TrainConfig
from ..data import StockDataset
from ..nn import LSTM, Linear
from ..nn.module import Module
from ..nn.random import get_rng
from ..optim import Adam, clip_grad_norm_
from ..tensor import Tensor, cross_entropy, no_grad
from .base import PredictorResult, StockPredictor, collect_actuals

_CLASSES = 3  # down / neutral / up


def movement_classes(returns: np.ndarray) -> np.ndarray:
    """Per-day tercile labels: 0 = down, 1 = neutral, 2 = up."""
    lo, hi = np.quantile(returns, [1 / 3, 2 / 3])
    labels = np.ones(returns.shape, dtype=np.int64)
    labels[returns <= lo] = 0
    labels[returns >= hi] = 2
    return labels


def class_scores(labels: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
    """Class index plus a uniform tie-break in (0, 1)."""
    return labels.astype(np.float64) + rng.uniform(size=labels.shape)


class ARIMAClassifier(StockPredictor):
    """AR(p) trend classifier (ARIMA-style, Wang & Leu [14]).

    Per stock, an autoregressive model of order ``p`` on daily returns
    (equivalently ARIMA(p, 1, 0) on log prices) is fit by ordinary least
    squares over the training period; the sign/magnitude of the one-step
    forecast gives the movement class.
    """

    can_rank = False
    category = "CLF"

    def __init__(self, order: int = 5, seed: int = 0):
        if order < 1:
            raise ValueError("AR order must be >= 1")
        self.order = order
        self.seed = seed

    def _fit_coefficients(self, returns: np.ndarray,
                          train_days: List[int]) -> np.ndarray:
        """OLS AR coefficients per stock: ``(N, order + 1)`` incl. intercept."""
        p = self.order
        num_stocks = returns.shape[0]
        coefficients = np.zeros((num_stocks, p + 1))
        days = np.asarray(train_days)
        # Regress r_{t+1} on [1, r_t, r_{t-1}, ..., r_{t-p+1}].
        targets = returns[:, days + 1]                       # (N, M)
        design = np.stack([returns[:, days - lag] for lag in range(p)],
                          axis=2)                             # (N, M, p)
        ones = np.ones(design.shape[:2] + (1,))
        design = np.concatenate([ones, design], axis=2)       # (N, M, p+1)
        for i in range(num_stocks):
            solution, *_ = np.linalg.lstsq(design[i], targets[i], rcond=None)
            coefficients[i] = solution
        return coefficients

    def _forecast(self, returns: np.ndarray, coefficients: np.ndarray,
                  day: int) -> np.ndarray:
        lags = np.stack([returns[:, day - lag] for lag in range(self.order)],
                        axis=1)
        return coefficients[:, 0] + (coefficients[:, 1:] * lags).sum(axis=1)

    def fit_predict(self, dataset: StockDataset, config: TrainConfig
                    ) -> PredictorResult:
        returns = dataset.return_ratios
        train_days, test_days = dataset.split(config.window)
        if config.max_train_days is not None:
            train_days = train_days[-config.max_train_days:]
        rng = np.random.default_rng(self.seed)

        start = time.perf_counter()
        coefficients = self._fit_coefficients(returns, train_days)
        train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        rows = []
        for day in test_days:
            forecast = self._forecast(returns, coefficients, day)
            rows.append(class_scores(movement_classes(forecast), rng))
        test_seconds = time.perf_counter() - start
        return PredictorResult(train_seconds=train_seconds,
                               test_seconds=test_seconds,
                               test_days=list(test_days),
                               predictions=np.stack(rows),
                               actuals=collect_actuals(dataset, test_days))


class ALSTMNetwork(Module):
    """LSTM encoder + classification head used by the A-LSTM baseline."""

    def __init__(self, num_features: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        gen = rng if rng is not None else get_rng()
        self.encoder = LSTM(num_features, hidden_size, rng=gen)
        self.head = Linear(hidden_size, _CLASSES, rng=gen)

    def embed(self, x: Tensor) -> Tensor:
        per_stock = x.transpose(1, 0, 2)
        _, (hidden, _) = self.encoder(per_stock)
        return hidden

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.embed(x))


class AdversarialLSTMClassifier(StockPredictor):
    """A-LSTM: adversarially-trained movement classifier (Feng et al. [41]).

    Training adds an FGSM-style perturbation to each stock's latent
    embedding — ``e_adv = e + ε · ∂loss/∂e / ‖∂loss/∂e‖`` — and minimizes
    the classification loss on both the clean and the perturbed embeddings,
    making the decision boundary robust to small feature shifts.  (The
    perturbed pass updates the classifier head; re-encoding through the
    LSTM is skipped for cost, a standard simplification.)
    """

    can_rank = False
    category = "CLF"

    def __init__(self, hidden_size: int = 32, epsilon: float = 0.05,
                 adversarial_weight: float = 0.5, seed: int = 0):
        self.hidden_size = hidden_size
        self.epsilon = epsilon
        self.adversarial_weight = adversarial_weight
        self.seed = seed

    def fit_predict(self, dataset: StockDataset, config: TrainConfig
                    ) -> PredictorResult:
        cfg = config
        rng = np.random.default_rng(self.seed)
        model = ALSTMNetwork(cfg.num_features, self.hidden_size, rng=rng)
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate)
        train_days, test_days = dataset.split(cfg.window)
        if cfg.max_train_days is not None:
            train_days = train_days[-cfg.max_train_days:]
        params = list(model.parameters())

        start = time.perf_counter()
        for _ in range(cfg.epochs):
            order = np.array(train_days)
            rng.shuffle(order)
            for day in order:
                features = Tensor(dataset.features(int(day), cfg.window,
                                                   cfg.num_features))
                labels = movement_classes(dataset.label(int(day)))
                optimizer.zero_grad()
                embedding = model.embed(features)
                logits = model.head(embedding)
                clean_loss = cross_entropy(logits, labels)
                clean_loss.backward(retain_graph=True)
                grad = embedding.grad
                if grad is not None:
                    norm = np.linalg.norm(grad) + 1e-12
                    perturbed = Tensor(embedding.data
                                       + self.epsilon * grad / norm)
                    adv_loss = cross_entropy(model.head(perturbed), labels)
                    (self.adversarial_weight * adv_loss).backward()
                clip_grad_norm_(params, cfg.grad_clip)
                optimizer.step()
        train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        model.eval()
        rows = []
        with no_grad():
            for day in test_days:
                features = Tensor(dataset.features(int(day), cfg.window,
                                                   cfg.num_features))
                predicted = np.argmax(model(features).data, axis=1)
                rows.append(class_scores(predicted, rng))
        test_seconds = time.perf_counter() - start
        return PredictorResult(train_seconds=train_seconds,
                               test_seconds=test_seconds,
                               test_days=list(test_days),
                               predictions=np.stack(rows),
                               actuals=collect_actuals(dataset, test_days))
