"""Comparison models of Table IV/V, plus the shared predictor interface."""

from .base import (ModulePredictor, PredictorResult, StockPredictor,
                   collect_actuals, regression_config)
from .classifiers import (ALSTMNetwork, ARIMAClassifier,
                          AdversarialLSTMClassifier, class_scores,
                          movement_classes)
from .recurrent import LSTMScorer, SFMScorer
from .darnn import DARNN, InputAttention, TemporalAttention
from .mtdnn import MTDNN, multiscale_design_row
from .registry import (BASELINE_SPECS, EXTRA_MODELS, RANKING_MODELS,
                       TABLE_IV_MODELS, BaselineSpec, available_baselines,
                       get_spec, make_predictor, rtgcn_strategies)
from .rl import DQNTrader, IRDPGTrader, PolicyNetwork, QNetwork, ReplayBuffer
from .rsr import RSR
from .rtgat import RTGAT
from .sthan import (HawkesAttention, HypergraphConv, STHANSR,
                    hyperedges_from_relations)
from .wsae_lstm import WSAELSTM

__all__ = [
    "StockPredictor", "PredictorResult", "ModulePredictor",
    "regression_config", "collect_actuals",
    "ARIMAClassifier", "AdversarialLSTMClassifier", "ALSTMNetwork",
    "movement_classes", "class_scores",
    "LSTMScorer", "SFMScorer",
    "RSR", "RTGAT", "STHANSR", "HawkesAttention", "HypergraphConv",
    "hyperedges_from_relations",
    "DQNTrader", "IRDPGTrader", "QNetwork", "PolicyNetwork", "ReplayBuffer",
    "BaselineSpec", "BASELINE_SPECS", "TABLE_IV_MODELS", "RANKING_MODELS",
    "EXTRA_MODELS", "available_baselines", "get_spec", "make_predictor",
    "rtgcn_strategies",
    "DARNN", "InputAttention", "TemporalAttention", "WSAELSTM",
    "MTDNN", "multiscale_design_row",
]
