"""WSAE-LSTM: wavelet-denoised deep LSTM (Bao, Yue & Rao, 2017 [16]).

The paper's "LSTM [16]" baseline row simplifies Bao et al.'s full system;
this module provides the fuller variant as an *extra* model: the window
features are wavelet-denoised (Haar, soft threshold), compressed by a
(stacked-autoencoder-style) bottleneck MLP applied per time-step, and the
compressed sequence feeds an LSTM whose final state is scored.  The
autoencoder is trained end-to-end rather than greedily pre-trained — the
standard modern simplification.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import LSTM, Linear, Sequential, Tanh
from ..nn.module import Module
from ..nn.random import get_rng
from ..signal import denoise
from ..tensor import Tensor, ensure_tensor


class WSAELSTM(Module):
    """Wavelet denoising → bottleneck encoder → LSTM → score."""

    uses_relations = False

    def __init__(self, num_features: int = 4, bottleneck: int = 8,
                 hidden_size: int = 32, denoise_levels: int = 2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        gen = rng if rng is not None else get_rng()
        self.denoise_levels = denoise_levels
        self.encoder = Sequential(
            Linear(num_features, bottleneck * 2, rng=gen), Tanh(),
            Linear(bottleneck * 2, bottleneck, rng=gen), Tanh())
        self.recurrent = LSTM(bottleneck, hidden_size, rng=gen)
        self.scorer = Linear(hidden_size, 1, rng=gen)

    def forward(self, x: Tensor) -> Tensor:
        """Window features ``(T, N, D)`` → scores ``(N,)``."""
        x = ensure_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"expected (T, N, D) input, got {x.shape}")
        steps = x.shape[0]
        # Wavelet-denoise each stock/feature series along time.  The
        # denoising is a fixed (non-learned) preprocessing step, so it runs
        # on raw data outside the autograd graph.
        levels = min(self.denoise_levels,
                     max(1, int(np.floor(np.log2(max(steps, 2))))))
        series = x.data.transpose(1, 2, 0)          # (N, D, T)
        cleaned = denoise(series, levels=levels)
        cleaned_t = Tensor(np.ascontiguousarray(
            cleaned.transpose(2, 0, 1)))             # (T, N, D)
        encoded = self.encoder(cleaned_t)            # (T, N, bottleneck)
        per_stock = encoded.transpose(1, 0, 2)       # (N, T, bottleneck)
        _, (hidden, _) = self.recurrent(per_stock)
        return self.scorer(hidden).squeeze(-1)
