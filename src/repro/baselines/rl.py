"""Reinforcement-learning baselines (Table IV's RL rows): DQN and iRDPG.

Both learn trading policies for the daily buy-sell setting, where an
episode step is: observe every stock's window features, commit to a
portfolio at today's close, realize the next-day return as reward.

- :class:`DQNTrader` follows Carta et al. [18]: an *ensemble* of Q-networks,
  each trained from an experience-replay buffer with an ε-greedy behavior
  policy and Huber TD loss.  With one-day round trips the discounted
  bootstrap term vanishes, so Q(s, buy-stock-i) regresses the immediate
  reward; the ensemble average reduces overfitting, which is the paper's
  stated motivation.
- :class:`IRDPGTrader` follows Liu et al. [19]: a recurrent deterministic
  policy (GRU actor) trained by policy gradient on the differentiable
  softmax-portfolio return, plus an *imitation* (behavior-cloning) term
  toward the greedy expert that ranks stocks by realized return — the
  "imitative" component that stabilizes early training.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from ..core.trainer import TrainConfig
from ..data import StockDataset
from ..nn import GRU, Linear, ReLU, Sequential
from ..nn.module import Module
from ..nn.random import get_rng
from ..optim import Adam, clip_grad_norm_
from ..tensor import Tensor, huber_loss, no_grad, softmax
from .base import PredictorResult, StockPredictor, collect_actuals


class QNetwork(Module):
    """Per-stock state-action value head over flattened window features."""

    def __init__(self, window: int, num_features: int, hidden: int = 64,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        gen = rng if rng is not None else get_rng()
        self.window = window
        self.num_features = num_features
        self.net = Sequential(
            Linear(window * num_features, hidden, rng=gen), ReLU(),
            Linear(hidden, hidden // 2, rng=gen), ReLU(),
            Linear(hidden // 2, 1, rng=gen))

    def forward(self, states: Tensor) -> Tensor:
        """``(batch, window * num_features)`` states → ``(batch,)`` Q."""
        return self.net(states).squeeze(-1)


def _flatten_windows(features: np.ndarray) -> np.ndarray:
    """``(T, N, D)`` window → per-stock states ``(N, T * D)``."""
    steps, stocks, dims = features.shape
    return features.transpose(1, 0, 2).reshape(stocks, steps * dims)


class ReplayBuffer:
    """Fixed-size FIFO of (state, reward) transitions."""

    def __init__(self, capacity: int, state_dim: int):
        self.capacity = capacity
        self.states = np.zeros((capacity, state_dim))
        self.rewards = np.zeros(capacity)
        self.size = 0
        self.cursor = 0

    def push(self, states: np.ndarray, rewards: np.ndarray) -> None:
        for state, reward in zip(states, rewards):
            self.states[self.cursor] = state
            self.rewards[self.cursor] = reward
            self.cursor = (self.cursor + 1) % self.capacity
            self.size = min(self.size + 1, self.capacity)

    def sample(self, batch_size: int,
               rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        if self.size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        idx = rng.integers(0, self.size, size=min(batch_size, self.size))
        return self.states[idx], self.rewards[idx]


class DQNTrader(StockPredictor):
    """Ensemble deep-Q trader (Multi-DQN, Carta et al. [18])."""

    can_rank = True
    category = "RL"

    def __init__(self, n_agents: int = 3, hidden: int = 64,
                 buffer_size: int = 20000, batch_size: int = 256,
                 updates_per_day: int = 1, epsilon_start: float = 0.5,
                 epsilon_end: float = 0.05, explore_top_n: int = 10,
                 seed: int = 0):
        self.n_agents = n_agents
        self.hidden = hidden
        self.buffer_size = buffer_size
        self.batch_size = batch_size
        self.updates_per_day = updates_per_day
        self.epsilon_start = epsilon_start
        self.epsilon_end = epsilon_end
        self.explore_top_n = explore_top_n
        self.seed = seed

    def fit_predict(self, dataset: StockDataset, config: TrainConfig
                    ) -> PredictorResult:
        cfg = config
        rng = np.random.default_rng(self.seed)
        train_days, test_days = dataset.split(cfg.window)
        if cfg.max_train_days is not None:
            train_days = train_days[-cfg.max_train_days:]
        state_dim = cfg.window * cfg.num_features

        agents = [QNetwork(cfg.window, cfg.num_features, self.hidden,
                           rng=np.random.default_rng(rng.integers(2 ** 32)))
                  for _ in range(self.n_agents)]
        optimizers = [Adam(agent.parameters(), lr=cfg.learning_rate)
                      for agent in agents]
        buffers = [ReplayBuffer(self.buffer_size, state_dim)
                   for _ in range(self.n_agents)]

        total_steps = max(cfg.epochs * len(train_days), 1)
        step = 0
        start = time.perf_counter()
        for _ in range(cfg.epochs):
            order = np.array(train_days)
            rng.shuffle(order)
            for day in order:
                features = dataset.features(int(day), cfg.window,
                                            cfg.num_features)
                states = _flatten_windows(features)
                rewards = dataset.label(int(day))
                frac = step / total_steps
                epsilon = (self.epsilon_start
                           + (self.epsilon_end - self.epsilon_start) * frac)
                step += 1
                for agent, optimizer, buffer in zip(agents, optimizers,
                                                    buffers):
                    # ε-greedy behavior: explore random stocks, exploit the
                    # current Q-ranking; only visited stocks enter replay.
                    if rng.uniform() < epsilon:
                        picks = rng.choice(states.shape[0],
                                           size=min(self.explore_top_n,
                                                    states.shape[0]),
                                           replace=False)
                    else:
                        with no_grad():
                            q = agent(Tensor(states)).data
                        picks = np.argsort(-q)[:self.explore_top_n]
                    buffer.push(states[picks], rewards[picks])
                    for _ in range(self.updates_per_day):
                        batch_states, batch_rewards = buffer.sample(
                            self.batch_size, rng)
                        optimizer.zero_grad()
                        q = agent(Tensor(batch_states))
                        loss = huber_loss(q, Tensor(batch_rewards),
                                          delta=0.01)
                        loss.backward()
                        clip_grad_norm_(list(agent.parameters()),
                                        cfg.grad_clip)
                        optimizer.step()
        train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        rows = []
        with no_grad():
            for day in test_days:
                features = dataset.features(int(day), cfg.window,
                                            cfg.num_features)
                states = Tensor(_flatten_windows(features))
                ensemble_q = np.mean([agent(states).data
                                      for agent in agents], axis=0)
                rows.append(ensemble_q)
        test_seconds = time.perf_counter() - start
        return PredictorResult(train_seconds=train_seconds,
                               test_seconds=test_seconds,
                               test_days=list(test_days),
                               predictions=np.stack(rows),
                               actuals=collect_actuals(dataset, test_days))


class PolicyNetwork(Module):
    """GRU actor emitting one portfolio logit per stock."""

    def __init__(self, num_features: int, hidden: int = 32,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        gen = rng if rng is not None else get_rng()
        self.encoder = GRU(num_features, hidden, rng=gen)
        self.head = Linear(hidden, 1, rng=gen)

    def forward(self, x: Tensor) -> Tensor:
        """Window features ``(T, N, D)`` → logits ``(N,)``."""
        per_stock = x.transpose(1, 0, 2)
        _, hidden = self.encoder(per_stock)
        return self.head(hidden).squeeze(-1)


class IRDPGTrader(StockPredictor):
    """Imitative recurrent deterministic policy gradient (Liu et al. [19])."""

    can_rank = True
    category = "RL"

    def __init__(self, hidden: int = 32, imitation_weight: float = 0.5,
                 temperature: float = 10.0, seed: int = 0):
        self.hidden = hidden
        self.imitation_weight = imitation_weight
        self.temperature = temperature
        self.seed = seed

    def fit_predict(self, dataset: StockDataset, config: TrainConfig
                    ) -> PredictorResult:
        cfg = config
        rng = np.random.default_rng(self.seed)
        actor = PolicyNetwork(cfg.num_features, self.hidden,
                              rng=np.random.default_rng(
                                  rng.integers(2 ** 32)))
        optimizer = Adam(actor.parameters(), lr=cfg.learning_rate)
        params = list(actor.parameters())
        train_days, test_days = dataset.split(cfg.window)
        if cfg.max_train_days is not None:
            train_days = train_days[-cfg.max_train_days:]

        start = time.perf_counter()
        for _ in range(cfg.epochs):
            order = np.array(train_days)
            rng.shuffle(order)
            for day in order:
                features = Tensor(dataset.features(int(day), cfg.window,
                                                   cfg.num_features))
                returns = dataset.label(int(day))
                optimizer.zero_grad()
                logits = actor(features)
                weights = softmax(logits * self.temperature, axis=-1)
                # Policy objective: maximize the portfolio's expected
                # next-day return (negated for gradient descent).
                reward = (weights * Tensor(returns)).sum()
                # Imitation: match the greedy expert's standardized scores.
                expert = (returns - returns.mean()) / (returns.std() + 1e-9)
                imitation = ((logits - Tensor(expert)) ** 2).mean()
                loss = -reward + self.imitation_weight * imitation
                loss.backward()
                clip_grad_norm_(params, cfg.grad_clip)
                optimizer.step()
        train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        rows = []
        with no_grad():
            for day in test_days:
                features = Tensor(dataset.features(int(day), cfg.window,
                                                   cfg.num_features))
                rows.append(actor(features).data.copy())
        test_seconds = time.perf_counter() - start
        return PredictorResult(train_seconds=train_seconds,
                               test_seconds=test_seconds,
                               test_days=list(test_days),
                               predictions=np.stack(rows),
                               actuals=collect_actuals(dataset, test_days))
