"""RT-GAT: the graph-attention ablation of RT-GCN (Table IV, [31]).

"RT-GAT is implemented by replacing the relational graph convolution
(Section IV-B) with a graph attention network.  We construct the graph for
RT-GAT by connecting a pair of nodes having at least one type of
relations."  The temporal convolution, pooling and scorer are identical to
RT-GCN, so the comparison isolates attention-computed edge weights against
the relation-aware strategies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import RelationMatrix
from ..nn import GraphAttention, Linear
from ..nn.module import Module
from ..core.temporal import TemporalConvolution
from ..tensor import Tensor, ensure_tensor


class RTGAT(Module):
    """Relation-temporal graph *attention* network.

    Same relation-temporal factorization as RT-GCN, but edge weights come
    from feature attention over the binary relation mask rather than from
    the typed relation vectors.
    """

    uses_relations = True

    def __init__(self, relations: RelationMatrix, num_features: int = 4,
                 filters: int = 32, n_heads: int = 2,
                 temporal_kernel: int = 3, temporal_stride: int = 1,
                 num_layers: int = 1, dropout: float = 0.05,
                 graph_mode: str = "auto",
                 density_threshold: Optional[float] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.relations = relations
        self.num_features = num_features
        self.num_layers = num_layers
        self._mask = relations.binary_adjacency()
        in_channels = num_features
        for index in range(num_layers):
            self.add_module(
                f"attention{index}",
                GraphAttention(in_channels, filters, n_heads=n_heads,
                               graph_mode=graph_mode,
                               density_threshold=density_threshold,
                               rng=rng))
            self.add_module(
                f"temporal{index}",
                TemporalConvolution(filters, filters,
                                    kernel_size=temporal_kernel,
                                    stride=temporal_stride,
                                    dropout=dropout, rng=rng))
            in_channels = filters
        self.scorer = Linear(filters, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Window features ``(T, N, D)`` → scores ``(N,)``."""
        x = ensure_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"expected (T, N, D) input, got {x.shape}")
        for index in range(self.num_layers):
            x = self._modules[f"attention{index}"](x, self._mask).relu()
            x = self._modules[f"temporal{index}"](x)
        pooled = x.mean(axis=0)
        return self.scorer(pooled).squeeze(-1)
