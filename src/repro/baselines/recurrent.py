"""Sequential (relation-blind) baselines: LSTM, Rank_LSTM, SFM.

All three treat each stock as an isolated sequence: the window features
``(T, N, D)`` are transposed to ``(N, T, D)`` so stocks form the batch, an
encoder summarizes the window, and a linear head emits the score.  The
difference is the encoder (LSTM vs state-frequency memory) and the training
objective (pure regression for LSTM/SFM, regression + pairwise ranking for
Rank_LSTM) — the objective lives in the trainer's α, mirroring how [9]
derives Rank_LSTM from the LSTM of [16].
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import LSTM, Linear, SFM
from ..nn.module import Module
from ..tensor import Tensor, ensure_tensor


class LSTMScorer(Module):
    """LSTM encoder + linear scorer: the LSTM [16] / Rank_LSTM [9] network."""

    def __init__(self, num_features: int = 4, hidden_size: int = 32,
                 num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.encoder = LSTM(num_features, hidden_size, num_layers=num_layers,
                            rng=rng)
        self.scorer = Linear(hidden_size, 1, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> Tensor:
        """Window features ``(T, N, D)`` → scores ``(N,)``."""
        x = ensure_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"expected (T, N, D) input, got {x.shape}")
        per_stock = x.transpose(1, 0, 2)       # (N, T, D)
        _, (hidden, _) = self.encoder(per_stock)
        return self.scorer(hidden).squeeze(-1)


class SFMScorer(Module):
    """State-frequency-memory encoder + linear scorer (SFM [1])."""

    def __init__(self, num_features: int = 4, hidden_size: int = 32,
                 n_freq: int = 4, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.encoder = SFM(num_features, hidden_size, n_freq=n_freq, rng=rng)
        self.scorer = Linear(hidden_size, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = ensure_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"expected (T, N, D) input, got {x.shape}")
        per_stock = x.transpose(1, 0, 2)
        _, hidden = self.encoder(per_stock)
        return self.scorer(hidden).squeeze(-1)
