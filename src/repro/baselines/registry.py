"""Registry of every comparison model, keyed by the paper's Table IV names.

Central construction point used by the benchmark harness: given a dataset
and a seeded generator, ``make_predictor`` builds a fresh
:class:`~repro.baselines.base.StockPredictor` for any named model, and
``adapt_config`` applies the per-family objective conventions (REG/CLF
models train without the ranking loss; RAN models use the paper's combined
loss).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.model import RTGCN
from ..core.trainer import TrainConfig
from ..data import StockDataset
from .base import ModulePredictor, StockPredictor, regression_config
from .classifiers import ARIMAClassifier, AdversarialLSTMClassifier
from .darnn import DARNN
from .mtdnn import MTDNN
from .recurrent import LSTMScorer, SFMScorer
from .wsae_lstm import WSAELSTM
from .rl import DQNTrader, IRDPGTrader
from .rsr import RSR
from .rtgat import RTGAT
from .sthan import STHANSR

MakeFn = Callable[[StockDataset, np.random.Generator, int], StockPredictor]


@dataclass(frozen=True)
class BaselineSpec:
    """Metadata + constructor for one comparison model."""

    name: str
    category: str                       # CLF / REG / RL / RAN / Ours
    can_rank: bool
    uses_relations: bool
    make: MakeFn
    adapt_config: Callable[[TrainConfig], TrainConfig] = lambda cfg: cfg
    #: RT-GCN relation strategy ("uniform"/"weight"/"time") for the models
    #: that are direct RTGCN variants; None for everything else.  This is
    #: what lets the CLI and repro.serve reconstruct a checkpointed RT-GCN
    #: without a hand-maintained name→strategy table.
    strategy: Optional[str] = None


def _module(factory, category: str, uses_relations: bool) -> MakeFn:
    def make(dataset: StockDataset, rng: np.random.Generator,
             seed: int) -> StockPredictor:
        return ModulePredictor(lambda gen: factory(dataset, gen), rng=rng,
                               category=category,
                               uses_relations=uses_relations)
    return make


def _registry() -> Dict[str, BaselineSpec]:
    specs: List[BaselineSpec] = [
        # --- classification-based -------------------------------------
        BaselineSpec(
            "ARIMA", "CLF", can_rank=False, uses_relations=False,
            make=lambda ds, rng, seed: ARIMAClassifier(seed=seed),
            adapt_config=regression_config),
        BaselineSpec(
            "A-LSTM", "CLF", can_rank=False, uses_relations=False,
            make=lambda ds, rng, seed: AdversarialLSTMClassifier(seed=seed),
            adapt_config=regression_config),
        # --- regression-based -----------------------------------------
        BaselineSpec(
            "SFM", "REG", can_rank=True, uses_relations=False,
            make=_module(lambda ds, gen: SFMScorer(rng=gen), "REG", False),
            adapt_config=regression_config),
        BaselineSpec(
            "LSTM", "REG", can_rank=True, uses_relations=False,
            make=_module(lambda ds, gen: LSTMScorer(rng=gen), "REG", False),
            adapt_config=regression_config),
        # Extra relation-blind baselines beyond Table IV: DA-RNN [5] (the
        # strongest attention-RNN regressor of the related work) and the
        # full wavelet-denoised WSAE-LSTM of Bao et al. [16].
        BaselineSpec(
            "DA-RNN", "REG", can_rank=True, uses_relations=False,
            make=_module(lambda ds, gen: DARNN(rng=gen), "REG", False),
            adapt_config=regression_config),
        BaselineSpec(
            "WSAE-LSTM", "REG", can_rank=True, uses_relations=False,
            make=_module(lambda ds, gen: WSAELSTM(rng=gen), "REG", False),
            adapt_config=regression_config),
        BaselineSpec(
            "MTDNN", "REG", can_rank=True, uses_relations=False,
            make=lambda ds, rng, seed: MTDNN(seed=seed),
            adapt_config=regression_config),
        # --- reinforcement-learning-based ------------------------------
        BaselineSpec(
            "DQN", "RL", can_rank=True, uses_relations=False,
            make=lambda ds, rng, seed: DQNTrader(seed=seed)),
        BaselineSpec(
            "iRDPG", "RL", can_rank=True, uses_relations=False,
            make=lambda ds, rng, seed: IRDPGTrader(seed=seed)),
        # --- ranking-based ---------------------------------------------
        BaselineSpec(
            "Rank_LSTM", "RAN", can_rank=True, uses_relations=False,
            make=_module(lambda ds, gen: LSTMScorer(rng=gen), "RAN", False)),
        BaselineSpec(
            "RSR_I", "RAN", can_rank=True, uses_relations=True,
            make=_module(lambda ds, gen: RSR(ds.relations, mode="implicit",
                                             rng=gen), "RAN", True)),
        BaselineSpec(
            "RSR_E", "RAN", can_rank=True, uses_relations=True,
            make=_module(lambda ds, gen: RSR(ds.relations, mode="explicit",
                                             rng=gen), "RAN", True)),
        BaselineSpec(
            "STHAN-SR", "RAN", can_rank=True, uses_relations=True,
            make=_module(lambda ds, gen: STHANSR(ds.relations, rng=gen),
                         "RAN", True)),
        BaselineSpec(
            "RT-GAT", "RAN", can_rank=True, uses_relations=True,
            make=_module(lambda ds, gen: RTGAT(ds.relations, rng=gen),
                         "RAN", True)),
        # --- ours -------------------------------------------------------
        BaselineSpec(
            "RT-GCN (U)", "Ours", can_rank=True, uses_relations=True,
            make=_module(lambda ds, gen: RTGCN(ds.relations,
                                               strategy="uniform", rng=gen),
                         "Ours", True), strategy="uniform"),
        BaselineSpec(
            "RT-GCN (W)", "Ours", can_rank=True, uses_relations=True,
            make=_module(lambda ds, gen: RTGCN(ds.relations,
                                               strategy="weight", rng=gen),
                         "Ours", True), strategy="weight"),
        BaselineSpec(
            "RT-GCN (T)", "Ours", can_rank=True, uses_relations=True,
            make=_module(lambda ds, gen: RTGCN(ds.relations, strategy="time",
                                               rng=gen), "Ours", True),
            strategy="time"),
    ]
    return {spec.name: spec for spec in specs}


BASELINE_SPECS: Dict[str, BaselineSpec] = _registry()

#: models beyond the paper's Table IV (available to the CLI/protocol but
#: excluded from the Table IV bench so its rows match the paper)
EXTRA_MODELS: List[str] = ["DA-RNN", "WSAE-LSTM", "MTDNN"]

#: Table IV's row order
TABLE_IV_MODELS: List[str] = [name for name in BASELINE_SPECS
                              if name not in EXTRA_MODELS]

#: the ranking-based subset compared in Figure 5
RANKING_MODELS: List[str] = ["Rank_LSTM", "RSR_I", "RSR_E", "STHAN-SR",
                             "RT-GAT", "RT-GCN (U)", "RT-GCN (W)",
                             "RT-GCN (T)"]


def available_baselines() -> List[str]:
    """Names of every registered comparison model."""
    return list(BASELINE_SPECS)


def rtgcn_strategies() -> Dict[str, str]:
    """Registered-name → relation-strategy map for direct RTGCN variants.

    Derived from the specs (never hand-maintained), so a newly registered
    RT-GCN variant is automatically checkpointable by the CLI and servable
    by :mod:`repro.serve`.
    """
    return {name: spec.strategy for name, spec in BASELINE_SPECS.items()
            if spec.strategy is not None}


def get_spec(name: str) -> BaselineSpec:
    """Look up a model's registry entry by its Table IV name."""
    if name not in BASELINE_SPECS:
        raise KeyError(f"unknown model {name!r}; available: "
                       f"{available_baselines()}")
    return BASELINE_SPECS[name]


def make_predictor(name: str, dataset: StockDataset, seed: int = 0
                   ) -> StockPredictor:
    """Build a fresh predictor for model ``name`` with run seed ``seed``.

    The per-model entropy uses a *stable* hash (CRC32) — Python's built-in
    string hash is salted per process, which would make "seeded" runs
    irreproducible across interpreter invocations.
    """
    spec = get_spec(name)
    stable = zlib.crc32(name.encode("utf-8"))
    rng = np.random.default_rng(np.random.SeedSequence([stable, seed]))
    return spec.make(dataset, rng, seed)
