"""ServeConfig + :func:`build` — the one blessed way to stand up serving.

Historically each layer of :mod:`repro.serve` was constructed by hand:
a :class:`~repro.serve.registry.ModelRegistry`, then a
:class:`~repro.serve.service.RankingService` around it, then a
:class:`~repro.serve.httpd.RankingHTTPServer` around that — three
constructors whose defaults had to be kept in sync by every caller
(the CLI, the benchmarks, the tests).  This module collapses them into
one field-driven dataclass and one factory, mirroring how
``TrainConfig`` drives training::

    from repro.serve import ServeConfig, build

    handle = build(ServeConfig(checkpoint_dir="ckpts", port=0))
    with handle:
        handle.serve_forever()        # or poke handle.service directly

Direct construction of the individual classes raises
:class:`~repro.serve._deprecation.LegacyRemovedError` — the PR 8
deprecation shims had their release and are gone.  ``docs/serving.md``
documents the migration.

``mode="threaded"`` is the in-process server of PR 4 (thread pool +
micro-batcher).  ``mode="cluster"`` is the multi-process asyncio
front-end of :mod:`repro.serve.cluster`: forked inference workers
reading weights from shared memory, admission control, and hot reload.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ._deprecation import sanctioned

#: serving modes :func:`build` understands
SERVE_MODES = ("threaded", "cluster")


@dataclass
class ServeConfig:
    """Everything needed to stand up a ranking server, in one place.

    Field groups, top to bottom: where the models live, where to listen,
    which serving topology, model resolution defaults, micro-batching
    knobs, request admission / SLO policy, hot-reload policy, and
    result persistence.  ``repro.cli serve`` derives one ``--flag`` per
    field, so the CLI surface can never drift from this dataclass.
    """

    # model source
    checkpoint_dir: str = ""
    model: Optional[str] = None          # override unrecorded model names
    market: Optional[str] = None         # override unrecorded markets
    seed: Optional[int] = None
    memory_budget_mb: Optional[float] = None

    # listener
    host: str = "127.0.0.1"
    port: int = 8151                     # 0 = ephemeral (tests/benchmarks)

    # topology
    mode: str = "threaded"               # "threaded" | "cluster"
    cluster_workers: int = 2             # forked workers (cluster mode)
    crash_retries: int = 1               # per-request respawn+retry budget

    # micro-batching (threaded mode; cluster coalesces in the front-end)
    max_batch: int = 32
    max_wait_ms: float = 5.0
    straggler_poll_ms: Optional[float] = None   # default: max_wait/8
    idle_poll_ms: Optional[float] = None
    batch_workers: int = 1

    # admission / deadlines / SLO
    default_timeout: float = 10.0
    max_queue: int = 256                 # cluster admission bound
    retry_after_s: float = 0.25          # hint sent with 429/503
    slo_p99_ms: Optional[float] = None   # p99 latency budget (telemetry)

    # hot reload (cluster mode watches; threaded mode reloads on demand)
    watch_interval_s: float = 2.0

    # streaming ingest (POST /v1/ingest)
    tick_budget_ms: float = 250.0        # ingest tick budget; overrun =>
                                         # fall back to the last ranking
    stream_alpha: float = 0.5            # graph-smoothing re-rank weight

    # persistence
    store: Optional[str] = None          # sqlite path for SLO/telemetry

    def __post_init__(self) -> None:
        if self.mode not in SERVE_MODES:
            raise ValueError(f"mode must be one of {SERVE_MODES}, "
                             f"got {self.mode!r}")
        if not self.checkpoint_dir:
            raise ValueError("checkpoint_dir is required (a directory of "
                             "repro.ckpt archives)")
        if self.cluster_workers < 1:
            raise ValueError(f"cluster_workers must be >= 1, got "
                             f"{self.cluster_workers}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got "
                             f"{self.max_queue}")
        if self.crash_retries < 0:
            raise ValueError(f"crash_retries must be >= 0, got "
                             f"{self.crash_retries}")
        if self.watch_interval_s <= 0:
            raise ValueError(f"watch_interval_s must be > 0, got "
                             f"{self.watch_interval_s}")
        if self.tick_budget_ms <= 0:
            raise ValueError(f"tick_budget_ms must be > 0, got "
                             f"{self.tick_budget_ms}")
        if not 0.0 <= self.stream_alpha <= 1.0:
            raise ValueError(f"stream_alpha must be in [0, 1], got "
                             f"{self.stream_alpha}")

    # ------------------------------------------------------------------
    @property
    def memory_budget_bytes(self) -> Optional[int]:
        if self.memory_budget_mb is None:
            return None
        return int(self.memory_budget_mb * 1024 * 1024)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ServeConfig":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - names)
        if unknown:
            raise ValueError(f"unknown ServeConfig fields: {unknown}")
        return cls(**payload)


class ServeHandle:
    """What :func:`build` returns: the running stack plus lifecycle.

    - ``handle.service`` — the :class:`RankingService` (threaded mode;
      in cluster mode this is the *parent-side* service the registry
      ops run against, not the inference path).
    - ``handle.server`` — the threaded HTTP server, or ``None`` before
      :meth:`serve_forever` in cluster mode.
    - ``handle.cluster`` — the :class:`~repro.serve.cluster.ServingCluster`
      (cluster mode only).
    - ``handle.telemetry`` — the shared :class:`ServingTelemetry`.

    Closing the handle drains the batcher/workers and, when the config
    names a ``store``, records the final telemetry report and SLO row.
    """

    def __init__(self, config: ServeConfig, service, telemetry,
                 server=None, cluster=None):
        self.config = config
        self.service = service
        self.telemetry = telemetry
        self.server = server
        self.cluster = cluster
        self._server_thread = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves port 0 to the real one."""
        if self.cluster is not None and self.cluster.address is not None:
            return self.cluster.address
        if self.server is not None:
            return self.server.server_address[:2]
        return (self.config.host, self.config.port)

    def start(self) -> "ServeHandle":
        """Begin serving without blocking; :attr:`address` is then live.

        Cluster mode forks the workers and brings the asyncio front-end
        up; threaded mode spins the HTTP server on a daemon thread.
        Idempotent.  Tests and benchmarks use this; production entry
        points call :meth:`serve_forever`.
        """
        if self.cluster is not None:
            self.cluster.start()
        elif self._server_thread is None:
            import threading

            self._server_thread = threading.Thread(
                target=self.server.serve_forever,
                name="repro-serve-httpd", daemon=True)
            self._server_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block serving requests until interrupted; then clean up."""
        try:
            if self.cluster is not None:
                self.cluster.serve_forever()
            elif self._server_thread is not None:
                self._server_thread.join()
            else:
                self.server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop serving, drain workers, persist final telemetry."""
        if self._closed:
            return
        self._closed = True
        try:
            if self.cluster is not None:
                self.cluster.close()
            if self.server is not None:
                # shutdown() blocks on serve_forever's acknowledgement,
                # which never comes if the loop was never entered — only
                # signal a server that actually started.
                if self._server_thread is not None:
                    self.server.shutdown()
                self.server.server_close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
                self._server_thread = None
            self.service.close()
        finally:
            # A second Ctrl-C can interrupt the teardown above; the
            # telemetry report and SLO row must still land in the store.
            self._persist()

    def _persist(self) -> None:
        if not self.config.store:
            return
        from ..store import ExperimentStore

        report = self.telemetry.report(
            config={"serve_config": self.config.to_dict()})
        source = f"serve-{self.config.mode}"
        with ExperimentStore(self.config.store) as store:
            store.record_report(report)
            # One aggregate row (op NULL) plus one row per endpoint —
            # the per-op rows are what `repro.cli db report` breaks out.
            store.record_slo(self.telemetry.snapshot(), source=source,
                             report_id=report.run_id)
            for op, snap in self.telemetry.op_snapshots().items():
                store.record_slo(snap, source=source, op=op,
                                 report_id=report.run_id)

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def build(config: ServeConfig) -> ServeHandle:
    """Construct the full serving stack from one :class:`ServeConfig`.

    The only non-deprecated construction path: registry, service,
    batcher, telemetry, and (per ``config.mode``) the threaded HTTP
    server or the multi-process cluster all come from here, already
    wired together.  The returned :class:`ServeHandle` owns their
    lifecycle.
    """
    from .registry import ModelRegistry
    from .service import RankingService
    from .telemetry import ServingTelemetry

    telemetry = ServingTelemetry(slo_p99_ms=config.slo_p99_ms)
    with sanctioned():
        registry = ModelRegistry(
            config.checkpoint_dir,
            memory_budget_bytes=config.memory_budget_bytes,
            model=config.model, market=config.market, seed=config.seed)
        service = RankingService(
            registry, max_batch=config.max_batch,
            max_wait_ms=config.max_wait_ms, workers=config.batch_workers,
            default_timeout=config.default_timeout, telemetry=telemetry,
            straggler_poll_ms=config.straggler_poll_ms,
            idle_poll_ms=config.idle_poll_ms,
            tick_budget_ms=config.tick_budget_ms,
            stream_alpha=config.stream_alpha)
        if config.mode == "cluster":
            from .cluster import ServingCluster

            cluster = ServingCluster(config, service=service,
                                     telemetry=telemetry)
            return ServeHandle(config, service, telemetry, cluster=cluster)
        from .httpd import RankingHTTPServer

        server = RankingHTTPServer((config.host, config.port), service)
    return ServeHandle(config, service, telemetry, server=server)
