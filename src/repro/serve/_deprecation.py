"""Warn-once deprecation plumbing for the legacy serve construction API.

PR 8 consolidated serving construction behind one blessed path —
:class:`~repro.serve.config.ServeConfig` plus
:func:`~repro.serve.config.build` — and turned the organically grown
constructor surface (``RankingService(dir, max_batch=...)``,
``ModelRegistry(...)``, ``MicroBatcher(...)``, ``RankingHTTPServer(...)``,
``serve_forever(...)``) into deprecation shims.  The shims keep working
exactly as before; they just emit one :class:`DeprecationWarning` per
process the first time each is used directly.

Two pieces make that workable:

- :func:`warn_legacy` — the warn-once gate every legacy entry point
  calls.  One warning per legacy name per process, so a request loop
  that constructs a thousand batchers does not drown the log.
- :func:`sanctioned` — a context manager the blessed factory (and the
  internals it builds) wrap construction in, so ``build(config)``
  composing a registry into a service into a server never warns about
  its own plumbing.

``LEGACY`` is the registry of shimmed names; the API-hygiene tests
enumerate it so a legacy entry point can never silently lose its shim.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, Set

#: every shimmed legacy entry point -> the blessed replacement spelling.
#: tests/test_api_hygiene.py iterates this mapping.
LEGACY: Dict[str, str] = {
    "ModelRegistry": "repro.serve.build(ServeConfig(...)).registry",
    "InferenceEngine": "repro.serve.build(ServeConfig(...)).service.engine()",
    "MicroBatcher": "repro.serve.build(ServeConfig(...)) "
                    "(batching is configured by ServeConfig)",
    "RankingService": "repro.serve.build(ServeConfig(...)).service",
    "RankingHTTPServer": "repro.serve.build(ServeConfig(...)).server",
    "serve_forever": "repro.serve.build(ServeConfig(...)).serve_forever()",
}

_warned: Set[str] = set()
_warned_lock = threading.Lock()
_blessed = threading.local()


@contextmanager
def sanctioned() -> Iterator[None]:
    """Suppress legacy warnings for construction done by the blessed path."""
    depth = getattr(_blessed, "depth", 0)
    _blessed.depth = depth + 1
    try:
        yield
    finally:
        _blessed.depth = depth


def is_sanctioned() -> bool:
    """Whether the current thread is inside a :func:`sanctioned` block."""
    return getattr(_blessed, "depth", 0) > 0


def warn_legacy(name: str, stacklevel: int = 3) -> bool:
    """Emit the one-per-process deprecation warning for ``name``.

    Returns ``True`` when a warning was actually emitted (first direct
    use), ``False`` when suppressed (already warned, or construction is
    running under :func:`sanctioned` on behalf of the blessed factory).
    """
    if name not in LEGACY:
        raise KeyError(f"{name!r} is not a registered legacy entry point; "
                       f"known: {sorted(LEGACY)}")
    if is_sanctioned():
        return False
    with _warned_lock:
        if name in _warned:
            return False
        _warned.add(name)
    warnings.warn(
        f"direct {name} construction is deprecated; use "
        f"{LEGACY[name]} (see docs/serving.md, 'Migrating to "
        f"ServeConfig')", DeprecationWarning, stacklevel=stacklevel)
    return True


def reset_warned() -> None:
    """Forget which warnings fired (test isolation helper)."""
    with _warned_lock:
        _warned.clear()
