"""Removal guard for the legacy serve construction API.

PR 8 consolidated serving construction behind one blessed path —
:class:`~repro.serve.config.ServeConfig` plus
:func:`~repro.serve.config.build` — and turned the organically grown
constructor surface (``RankingService(dir, max_batch=...)``,
``ModelRegistry(...)``, ``MicroBatcher(...)``, ``RankingHTTPServer(...)``,
``serve_forever(...)``) into warn-once deprecation shims.  The shims have
now had their deprecation release: direct construction raises
:class:`LegacyRemovedError` and the names are gone from the
``repro.serve`` namespace.  The classes themselves still exist in their
submodules — :func:`build` composes them — but only the blessed factory
(or anything else running under :func:`sanctioned`) may construct them.

- :func:`guard_legacy` — the gate every legacy entry point calls; raises
  unless construction is running on behalf of the blessed path.
- :func:`sanctioned` — the context manager ``build(config)`` (and the
  internals it builds, and tests exercising the layers directly) wrap
  construction in.

``LEGACY`` remains the registry of removed names; the API-hygiene tests
enumerate it so a removed entry point can never silently come back.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator

#: every removed legacy entry point -> the blessed replacement spelling.
#: tests/test_api_hygiene.py iterates this mapping.
LEGACY: Dict[str, str] = {
    "ModelRegistry": "repro.serve.build(ServeConfig(...)).registry",
    "InferenceEngine": "repro.serve.build(ServeConfig(...)).service.engine()",
    "MicroBatcher": "repro.serve.build(ServeConfig(...)) "
                    "(batching is configured by ServeConfig)",
    "RankingService": "repro.serve.build(ServeConfig(...)).service",
    "RankingHTTPServer": "repro.serve.build(ServeConfig(...)).server",
    "serve_forever": "repro.serve.build(ServeConfig(...)).serve_forever()",
}

_blessed = threading.local()


class LegacyRemovedError(TypeError):
    """Direct construction of a removed legacy serve entry point."""


@contextmanager
def sanctioned() -> Iterator[None]:
    """Allow legacy construction for the blessed path's own plumbing."""
    depth = getattr(_blessed, "depth", 0)
    _blessed.depth = depth + 1
    try:
        yield
    finally:
        _blessed.depth = depth


def is_sanctioned() -> bool:
    """Whether the current thread is inside a :func:`sanctioned` block."""
    return getattr(_blessed, "depth", 0) > 0


def guard_legacy(name: str) -> None:
    """Refuse direct use of the removed entry point ``name``.

    A no-op under :func:`sanctioned` (the blessed factory composing the
    stack); otherwise raises :class:`LegacyRemovedError` pointing at the
    replacement spelling.
    """
    if name not in LEGACY:
        raise KeyError(f"{name!r} is not a registered legacy entry point; "
                       f"known: {sorted(LEGACY)}")
    if is_sanctioned():
        return
    raise LegacyRemovedError(
        f"direct {name} construction was removed after its deprecation "
        f"release; use {LEGACY[name]} (see docs/serving.md, 'Migrating "
        f"to ServeConfig')")
