"""repro.serve — micro-batched inference serving for trained checkpoints.

The serving stack, bottom to top:

- :mod:`~repro.serve.registry` — :class:`ModelRegistry`: discover/verify
  checkpoint archives, reconstruct models via the unified ``state_dict``
  API, LRU-cache them under a memory budget;
- :mod:`~repro.serve.engine` — :class:`InferenceEngine`: tape-free
  forwards with explicit dense/sparse graph-mode dispatch;
- :mod:`~repro.serve.batcher` — :class:`MicroBatcher`: coalesce
  concurrent requests into shared forwards;
- :mod:`~repro.serve.service` — :class:`RankingService`: the
  scores/top-k/rank/delta facade with timeout fallback;
- :mod:`~repro.serve.httpd` — stdlib JSON endpoint
  (``repro.cli serve`` / ``repro.cli query`` wrap it);
- :mod:`~repro.serve.telemetry` — :class:`ServingTelemetry`: latency
  percentiles, batch-size histograms, schema-v1 reports.

See ``docs/serving.md`` for the train → checkpoint → serve → query
lifecycle.
"""

from .batcher import BatcherClosedError, MicroBatcher
from .engine import InferenceEngine
from .httpd import RankingHTTPServer, serve_forever
from .registry import (ModelRegistry, RegistryError, ServableModel,
                       build_servable, infer_rtgcn_architecture,
                       resolve_strategy)
from .service import RankingService, ServiceTimeoutError
from .telemetry import ServingTelemetry

__all__ = [
    "ModelRegistry", "ServableModel", "RegistryError", "build_servable",
    "infer_rtgcn_architecture", "resolve_strategy",
    "InferenceEngine",
    "MicroBatcher", "BatcherClosedError",
    "RankingService", "ServiceTimeoutError",
    "RankingHTTPServer", "serve_forever",
    "ServingTelemetry",
]
