"""repro.serve — micro-batched inference serving for trained checkpoints.

**Construction goes through one blessed path**::

    from repro.serve import ServeConfig, build

    with build(ServeConfig(checkpoint_dir="ckpts")) as handle:
        handle.serve_forever()

:class:`ServeConfig` holds every knob (listener, topology, batching,
admission control, SLO, hot reload, persistence) and :func:`build`
wires the whole stack from it.  The pre-PR-8 constructor surface
(``ModelRegistry(...)``, ``RankingService(...)``, ``serve_forever(...)``
and friends) had its deprecation release and is now removed: the names
are gone from this namespace and direct construction raises
:class:`LegacyRemovedError`; see ``docs/serving.md`` for the migration
table.

The stack, bottom to top:

- :mod:`~repro.serve.registry` — :class:`ModelRegistry`: discover/verify
  checkpoint archives, reconstruct models via the unified ``state_dict``
  API, LRU-cache them under a memory budget;
- :mod:`~repro.serve.engine` — :class:`InferenceEngine`: tape-free
  forwards with explicit dense/sparse graph-mode dispatch;
- :mod:`~repro.serve.batcher` — :class:`MicroBatcher`: coalesce
  concurrent requests into shared forwards;
- :mod:`~repro.serve.service` — :class:`RankingService`: the
  scores/top-k/rank/delta facade with timeout fallback;
- :mod:`~repro.serve.httpd` — the versioned (``/v1/``) stdlib JSON
  endpoint (``repro.cli serve`` / ``repro.cli query`` wrap it);
- :mod:`~repro.serve.shm` — shared-memory weights with generation-tagged
  hot swap (:class:`SharedWeightStore` / :class:`SharedWeightReader`);
- :mod:`~repro.serve.cluster` — :class:`ServingCluster`: asyncio
  front-end + forked zero-copy inference workers with admission control
  and hot reload (``ServeConfig(mode="cluster")``);
- :mod:`~repro.serve.telemetry` — :class:`ServingTelemetry`: latency
  percentiles, SLO evaluation, batch-size histograms, schema-v1 reports.

See ``docs/serving.md`` for the train → checkpoint → serve → query
lifecycle.
"""

from ._deprecation import LEGACY, LegacyRemovedError
from .batcher import BatcherClosedError
from .client import ClientConnectError, QueryClient, fetch_endpoints
from .cluster import ClusterError, ServingCluster
from .config import SERVE_MODES, ServeConfig, ServeHandle, build
from .httpd import ApiError
from .registry import (RegistryError, ServableModel, build_servable,
                       infer_rtgcn_architecture, resolve_strategy)
from .service import ServiceTimeoutError
from .shm import (SharedWeightReader, SharedWeightStore,
                  ShmUnavailableError, shm_available)
from .stream import StreamIngestor
from .telemetry import ServingTelemetry

__all__ = [
    # the blessed construction path
    "ServeConfig", "ServeHandle", "build", "SERVE_MODES",
    # cluster serving
    "ServingCluster", "ClusterError",
    "SharedWeightStore", "SharedWeightReader", "ShmUnavailableError",
    "shm_available",
    # query client
    "QueryClient", "fetch_endpoints", "ClientConnectError",
    # errors / telemetry / helpers
    "ApiError", "ServiceTimeoutError", "RegistryError",
    "BatcherClosedError", "ServingTelemetry", "StreamIngestor",
    "ServableModel",
    "build_servable", "infer_rtgcn_architecture", "resolve_strategy",
    # removed-constructor bookkeeping
    "LEGACY", "LegacyRemovedError",
]
