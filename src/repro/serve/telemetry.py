"""Serving telemetry: latency percentiles, queue depth, batch histograms.

Every request that flows through :class:`~repro.serve.service.RankingService`
and every coalesced forward executed by the
:class:`~repro.serve.batcher.MicroBatcher` reports here.  A snapshot rolls
the raw samples up into the numbers a latency dashboard wants — p50/p95/p99
end-to-end latency, queue-depth distribution, a batch-size histogram that
shows micro-batching actually coalescing, and the adjacency-cache hit rate —
and :meth:`ServingTelemetry.report` publishes them through the schema-v1
JSON sink of :mod:`repro.obs` so serving runs leave the same
machine-diffable artifacts as training and benchmark runs.

All recorders are thread-safe: they are called concurrently from client
threads (request completions) and batcher workers (forward passes).
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Any, Dict, Optional

import numpy as np

from ..obs import RunReport, new_run_id
from ..store.schema import latency_histogram

#: retain this many most-recent latency / queue-depth samples; serving runs
#: are unbounded streams, percentiles over a recent window are what a
#: dashboard wants anyway.
DEFAULT_MAX_SAMPLES = 16384

_PERCENTILES = (50.0, 95.0, 99.0)

#: raw recorder op names → the canonical per-endpoint labels the store's
#: ``slo.op`` column uses (matching the ``/v1/`` path segments)
OP_ALIASES = {"predict_scores": "scores", "rank_universe": "rank",
              "rank_delta": "delta"}


def canonical_op(op: str) -> str:
    """Map a recorder op name to its canonical endpoint label."""
    return OP_ALIASES.get(op, op)


def _percentile_summary(samples) -> Dict[str, float]:
    """``{count, mean, p50, p95, p99, max}`` of a sample window."""
    if not samples:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0}
    array = np.asarray(samples, dtype=float)
    p50, p95, p99 = np.percentile(array, _PERCENTILES)
    return {"count": int(array.size), "mean": float(array.mean()),
            "p50": float(p50), "p95": float(p95), "p99": float(p99),
            "max": float(array.max())}


class ServingTelemetry:
    """Thread-safe accumulator for one serving process's metrics.

    Parameters
    ----------
    max_samples:
        Rolling window size for latency / queue-depth percentiles.
    slo_p99_ms:
        Optional p99 latency budget.  When set, every snapshot carries
        an ``slo`` block (target, observed p50/p99, whether the window
        is within budget) and :meth:`report` exposes the same numbers as
        flat metrics — the rows the experiment store's ``slo`` table is
        fed from.
    """

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES,
                 slo_p99_ms: Optional[float] = None):
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self._latencies = deque(maxlen=max_samples)
        self._queue_depths = deque(maxlen=max_samples)
        self._batch_sizes: Counter = Counter()
        self._ops: Counter = Counter()
        # per-endpoint windows/counters, keyed by canonical op label
        self._op_latencies: Dict[str, deque] = {}
        self._op_requests: Counter = Counter()
        self._op_fallbacks: Counter = Counter()
        self._op_errors: Counter = Counter()
        self._op_shed: Counter = Counter()
        self.slo_p99_ms = (float(slo_p99_ms) if slo_p99_ms is not None
                           else None)
        self.started_at = time.time()          # wall timestamp, report only
        self._started_mono = time.monotonic()  # uptime must survive NTP steps
        self.requests = 0
        self.fallbacks = 0
        self.errors = 0
        self.shed = 0
        self.batches = 0
        self.coalesced_requests = 0
        self.forward_seconds = 0.0

    # ------------------------------------------------------------------
    # recorders
    # ------------------------------------------------------------------
    def record_request(self, op: str, latency_s: float,
                       queue_depth: Optional[int] = None,
                       fallback: bool = False) -> None:
        """One client-visible request completed (op = scores/top_k/...)."""
        name = canonical_op(op)
        with self._lock:
            self.requests += 1
            self._ops[op] += 1
            self._latencies.append(float(latency_s))
            window = self._op_latencies.get(name)
            if window is None:
                window = self._op_latencies[name] = deque(
                    maxlen=self._max_samples)
            window.append(float(latency_s))
            self._op_requests[name] += 1
            if queue_depth is not None:
                self._queue_depths.append(int(queue_depth))
            if fallback:
                self.fallbacks += 1
                self._op_fallbacks[name] += 1

    def record_error(self, op: str) -> None:
        """A request failed with an exception (after retries/fallbacks)."""
        with self._lock:
            self.errors += 1
            self._ops[op] += 1
            self._op_errors[canonical_op(op)] += 1

    def record_shed(self, op: str) -> None:
        """Admission control rejected a request (429/503, never computed)."""
        with self._lock:
            self.shed += 1
            self._ops[op] += 1
            self._op_shed[canonical_op(op)] += 1

    def record_batch(self, coalesced: int, forward_seconds: float) -> None:
        """One batched forward served ``coalesced`` requests at once."""
        with self._lock:
            self.batches += 1
            self.coalesced_requests += int(coalesced)
            self._batch_sizes[int(coalesced)] += 1
            self.forward_seconds += float(forward_seconds)

    # ------------------------------------------------------------------
    # rollups
    # ------------------------------------------------------------------
    def _op_snapshot_locked(self, name: str) -> Dict[str, Any]:
        latency = _percentile_summary(self._op_latencies.get(name, ()))
        snap: Dict[str, Any] = {
            "op": name,
            "requests": int(self._op_requests.get(name, 0)),
            "errors": int(self._op_errors.get(name, 0)),
            "fallbacks": int(self._op_fallbacks.get(name, 0)),
            "shed": int(self._op_shed.get(name, 0)),
            "latency_seconds": latency,
            "latency_hist_ms": latency_histogram(
                self._op_latencies.get(name, ())),
        }
        if self.slo_p99_ms is not None:
            observed_p99_ms = latency["p99"] * 1000.0
            snap["slo"] = {
                "target_p99_ms": self.slo_p99_ms,
                "observed_p50_ms": latency["p50"] * 1000.0,
                "observed_p99_ms": observed_p99_ms,
                "within": (bool(observed_p99_ms <= self.slo_p99_ms)
                           if latency["count"] else None),
            }
        return snap

    def op_snapshots(self) -> Dict[str, Dict[str, Any]]:
        """Per-endpoint rollups, keyed by canonical op label.

        Each value has the ``latency_seconds``/``slo``/counter shape of
        :meth:`snapshot`, so it can feed
        :meth:`repro.store.ExperimentStore.record_slo` directly — these
        are the rows that populate the ``slo`` table's ``op`` column.
        """
        with self._lock:
            names = (set(self._op_latencies) | set(self._op_requests)
                     | set(self._op_errors) | set(self._op_shed))
            return {name: self._op_snapshot_locked(name)
                    for name in sorted(names)}

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time rollup of everything recorded so far."""
        from ..graph.cache import adjacency_cache

        with self._lock:
            latency = _percentile_summary(self._latencies)
            queue_depth = _percentile_summary(self._queue_depths)
            batch_histogram = {str(size): count for size, count
                               in sorted(self._batch_sizes.items())}
            mean_batch = (self.coalesced_requests / self.batches
                          if self.batches else 0.0)
            # Uptime off the monotonic clock: a wall-clock NTP step would
            # corrupt requests_per_second (negative or wildly inflated).
            elapsed = max(time.monotonic() - self._started_mono, 1e-9)
            payload = {
                "uptime_seconds": elapsed,
                "started_at": self.started_at,
                "requests": self.requests,
                "errors": self.errors,
                "fallbacks": self.fallbacks,
                "shed": self.shed,
                "requests_per_second": self.requests / elapsed,
                "ops": dict(self._ops),
                "latency_seconds": latency,
                "latency_hist_ms": latency_histogram(self._latencies),
                "queue_depth": queue_depth,
                "batches": self.batches,
                "mean_batch_size": mean_batch,
                "batch_size_histogram": batch_histogram,
                "forward_seconds": self.forward_seconds,
                "per_op": {
                    name: self._op_snapshot_locked(name)
                    for name in sorted(set(self._op_latencies)
                                       | set(self._op_requests)
                                       | set(self._op_errors)
                                       | set(self._op_shed))},
            }
            if self.slo_p99_ms is not None:
                observed_p99_ms = latency["p99"] * 1000.0
                payload["slo"] = {
                    "target_p99_ms": self.slo_p99_ms,
                    "observed_p50_ms": latency["p50"] * 1000.0,
                    "observed_p99_ms": observed_p99_ms,
                    "within": (bool(observed_p99_ms <= self.slo_p99_ms)
                               if latency["count"] else None),
                }
        cache = adjacency_cache().stats()
        lookups = cache["hits"] + cache["misses"]
        payload["adjacency_cache"] = {
            **cache,
            "hit_rate": cache["hits"] / lookups if lookups else 0.0,
        }
        return payload

    def report(self, config: Optional[Dict[str, Any]] = None,
               run_id: Optional[str] = None) -> RunReport:
        """The snapshot as a schema-v1 :class:`~repro.obs.RunReport`.

        Scalar headline numbers go in ``metrics`` (the schema's flat
        result map); the full structured snapshot — percentile blocks,
        the batch-size histogram — rides under ``config["serving"]`` so
        both mechanical diffing and ad-hoc inspection work.
        """
        snap = self.snapshot()
        metrics = {
            "requests": float(snap["requests"]),
            "errors": float(snap["errors"]),
            "fallbacks": float(snap["fallbacks"]),
            "shed": float(snap["shed"]),
            "requests_per_second": snap["requests_per_second"],
            "latency_p50_seconds": snap["latency_seconds"]["p50"],
            "latency_p95_seconds": snap["latency_seconds"]["p95"],
            "latency_p99_seconds": snap["latency_seconds"]["p99"],
            "mean_batch_size": snap["mean_batch_size"],
            "adjacency_cache_hit_rate":
                snap["adjacency_cache"]["hit_rate"],
        }
        if "slo" in snap:
            slo = snap["slo"]
            metrics["slo_target_p99_ms"] = slo["target_p99_ms"]
            metrics["slo_observed_p99_ms"] = slo["observed_p99_ms"]
            if slo["within"] is not None:
                metrics["slo_within"] = 1.0 if slo["within"] else 0.0
        full_config = dict(config or {})
        full_config["serving"] = snap
        return RunReport(
            run_id=run_id if run_id is not None else new_run_id("serve"),
            kind="serving", config=full_config, metrics=metrics)
