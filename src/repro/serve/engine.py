"""Forward-only inference over a servable model.

The engine is the only place in :mod:`repro.serve` that actually runs a
model.  It pins down the two properties the serving path must guarantee:

- **No autograd allocation.** Every forward runs under
  :func:`repro.tensor.inference_mode`, so no gradient tape is built —
  serving a thousand requests leaves the tape-node counter where it
  started (a regression test asserts exactly this).
- **Explicit graph-mode dispatch.** The registered config's
  ``graph_mode`` (``dense``/``sparse``/``auto``) is applied to the model
  once via :func:`repro.nn.set_graph_mode`; sparse and dense modes
  produce bitwise-identical scores, so operators can pick per deployment
  without revalidating the model.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

import numpy as np

from ..nn import set_graph_mode
from ..obs import trace
from ..tensor import Tensor, inference_mode
from .registry import ServableModel


class InferenceEngine:
    """Score one :class:`ServableModel` on demand.

    Not a cache: every :meth:`scores` call is a real forward pass.
    Deduplication of concurrent identical requests is the
    :class:`~repro.serve.batcher.MicroBatcher`'s job, which keeps the
    batch-size-1 baseline in the load-test honest.
    """

    def __init__(self, servable: ServableModel,
                 graph_mode: Optional[str] = None):
        from ._deprecation import guard_legacy
        guard_legacy("InferenceEngine")
        self.servable = servable
        self.graph_mode = graph_mode or servable.graph_mode
        self.model = servable.model
        self.model.eval()
        if self.graph_mode != "auto":
            set_graph_mode(self.model, self.graph_mode)
        self.forwards = 0
        self.forward_seconds = 0.0

    @property
    def dataset(self):
        return self.servable.dataset

    def last_day(self) -> int:
        """The most recent day with a full lookback window."""
        return self.dataset.num_days - 1

    def resolve_day(self, day: Optional[int]) -> int:
        last = self.last_day()
        if day is None:
            return last
        day = int(day)
        if day < 0:
            day += self.dataset.num_days
        window = self.servable.window
        if not window - 1 <= day <= last:
            raise ValueError(
                f"day {day} outside servable range "
                f"[{window - 1}, {last}] for market "
                f"{self.dataset.market!r} (window={window})")
        return day

    def scores(self, day: Optional[int] = None) -> np.ndarray:
        """Ranking scores for every stock at ``day``, shape ``(N,)``.

        Runs tape-free; the returned array is detached by construction.
        """
        day = self.resolve_day(day)
        features = self.dataset.features(day, self.servable.window,
                                         self.servable.num_features)
        start = time.perf_counter()
        with inference_mode(), trace("inference"):
            out = self.model(Tensor(features))
        self.forwards += 1
        self.forward_seconds += time.perf_counter() - start
        return np.asarray(out.data, dtype=float).reshape(-1)

    def stats(self) -> Dict[str, Any]:
        return {"version": self.servable.version,
                "model": self.servable.model_name,
                "graph_mode": self.graph_mode,
                "forwards": self.forwards,
                "forward_seconds": self.forward_seconds}
