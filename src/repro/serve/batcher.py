"""Micro-batching request scheduler.

Concurrent ranking requests almost always ask for the same thing — the
latest scores of the same model version.  The :class:`MicroBatcher` sits
between the request threads and the :class:`~repro.serve.engine`
forwards and coalesces such requests: a worker drains the queue up to
``max_batch`` entries or until ``max_wait_ms`` elapses since the first
entry, groups what it collected by ``(version, day)``, computes each
distinct group **once**, and resolves every request in the group with the
shared result.  Under load, one forward pass serves many requests; when
idle, a lone request waits at most the max-wait deadline.

The batcher is generic over the compute function — it never imports the
engine — which keeps it independently testable with a stub and reusable
for any keyed idempotent computation.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, Hashable, List, Optional

from .telemetry import ServingTelemetry

#: how long a worker blocks on an empty queue before re-checking the stop
#: flag; bounds shutdown latency, invisible to request latency.
#: Overridable per batcher via ``idle_poll_ms``.
_IDLE_POLL_SECONDS = 0.05

#: default straggler poll as a fraction of the batch window: each wait
#: inside the window is ``max_wait / 8`` unless ``straggler_poll_ms``
#: overrides it.
_STRAGGLER_FRACTION = 8.0


class _Request:
    __slots__ = ("key", "future", "enqueued_at")

    def __init__(self, key: Hashable):
        self.key = key
        self.future: "Future[Any]" = Future()
        self.enqueued_at = time.monotonic()


class BatcherClosedError(RuntimeError):
    """Submit after :meth:`MicroBatcher.close` — the caller raced shutdown."""


class MicroBatcher:
    """Coalesce keyed requests into shared computations.

    Parameters
    ----------
    compute:
        ``compute(key) -> result`` for one distinct key.  Must be safe to
        call from worker threads.  Exceptions propagate to every request
        waiting on that key (other keys in the batch are unaffected).
    max_batch:
        Upper bound on requests drained into one batch.
    max_wait_ms:
        How long the worker lingers for more requests after the first one
        arrives.  ``0`` degenerates to batch-size-1 — one forward per
        request — which is exactly the baseline the load test compares
        against.
    straggler_poll_ms:
        How long each in-window wait for one more request lasts; the
        first empty poll dispatches the batch early.  Default: an eighth
        of the window.  Surfaced as ``ServeConfig.straggler_poll_ms``.
    idle_poll_ms:
        How long an idle worker blocks before re-checking the stop flag
        (bounds shutdown latency only).
    workers:
        Worker thread count.  One worker strictly serializes forwards
        (usually right for a CPU-bound model); more overlap distinct keys.

    All deadlines use the monotonic clock: a wall-clock (``time.time``)
    deadline misfires when NTP steps the clock — a backward step would
    stretch the batch window arbitrarily, a forward step would collapse
    it to zero and defeat coalescing.
    """

    def __init__(self, compute: Callable[[Hashable], Any],
                 max_batch: int = 32, max_wait_ms: float = 5.0,
                 workers: int = 1,
                 telemetry: Optional[ServingTelemetry] = None,
                 straggler_poll_ms: Optional[float] = None,
                 idle_poll_ms: Optional[float] = None):
        from ._deprecation import guard_legacy
        guard_legacy("MicroBatcher")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._compute = compute
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        if straggler_poll_ms is not None and straggler_poll_ms <= 0:
            raise ValueError(f"straggler_poll_ms must be > 0, got "
                             f"{straggler_poll_ms}")
        self.straggler_poll = (float(straggler_poll_ms) / 1000.0
                               if straggler_poll_ms is not None
                               else self.max_wait / _STRAGGLER_FRACTION)
        self.idle_poll = (float(idle_poll_ms) / 1000.0
                          if idle_poll_ms is not None else _IDLE_POLL_SECONDS)
        self.telemetry = telemetry
        self._queue: "queue.Queue[_Request]" = queue.Queue()
        self._stop = threading.Event()
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-serve-batcher-{i}", daemon=True)
            for i in range(workers)]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, key: Hashable) -> "Future[Any]":
        """Enqueue a request; the future resolves with ``compute(key)``."""
        if self._stop.is_set():
            raise BatcherClosedError("batcher is shut down")
        request = _Request(key)
        self._queue.put(request)
        return request.future

    def depth(self) -> int:
        """Requests currently queued (approximate, for telemetry)."""
        return self._queue.qsize()

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work, finish what is queued, join the workers."""
        if self._stop.is_set():
            return
        self._stop.set()
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.join(max(0.0, deadline - time.monotonic()))
        # Anything still queued after the join deadline fails loudly
        # instead of hanging its caller forever.
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            if not request.future.done():
                request.future.set_exception(
                    BatcherClosedError("batcher shut down before this "
                                       "request was served"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._serve_batch(batch)

    def _collect_batch(self) -> Optional[List[_Request]]:
        """Block for the first request, then linger for the batch window.

        Returns None only when stopped *and* drained — close() waits for
        queued work to finish before the workers exit.
        """
        while True:
            try:
                first = self._queue.get(timeout=self.idle_poll)
                break
            except queue.Empty:
                if self._stop.is_set():
                    return None
        batch = [first]
        deadline = time.monotonic() + self.max_wait
        # Lingering the whole window when no more requests are in flight
        # would cap throughput at batch/window; instead each wait is a
        # short straggler poll, and the first empty poll dispatches the
        # batch early.  The full window still bounds worst-case latency.
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(
                    timeout=min(remaining, self.straggler_poll)))
            except queue.Empty:
                break
        return batch

    def _serve_batch(self, batch: List[_Request]) -> None:
        groups: Dict[Hashable, List[_Request]] = {}
        for request in batch:
            groups.setdefault(request.key, []).append(request)
        for key, requests in groups.items():
            # A request whose client already gave up (per-request timeout
            # cancels the future) should not cost a forward.
            live = [r for r in requests if not r.future.cancelled()]
            if not live:
                continue
            start = time.perf_counter()
            try:
                result = self._compute(key)
            except BaseException as exc:  # noqa: BLE001 — route to callers
                for request in live:
                    request.future.set_exception(exc)
                continue
            elapsed = time.perf_counter() - start
            if self.telemetry is not None:
                self.telemetry.record_batch(len(live), elapsed)
            for request in live:
                if not request.future.cancelled():
                    request.future.set_result(result)
