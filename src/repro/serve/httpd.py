"""Stdlib JSON/HTTP front-end for the :class:`RankingService`.

One :class:`~http.server.ThreadingHTTPServer` (no third-party web
framework — the whole repo is stdlib+NumPy) exposing the **versioned**
API surface:

=======================  =================================================
``GET /v1/health``        liveness + loaded versions
``GET /v1/models``        available / loaded versions with metadata
``GET /v1/scores``        raw per-symbol scores
``GET /v1/top_k``         the k best-ranked symbols (``?k=10``)
``GET /v1/rank``          the full ranked universe
``GET /v1/delta``         day-over-day rank movement
``GET /v1/stats``         serving telemetry snapshot
``POST /v1/reload``       re-discover checkpoints, drop cached engines
``POST /v1/ingest``       apply a streaming day's event batch, re-rank
=======================  =================================================

Ranking endpoints accept ``?version=<ckpt>&day=<int>`` (defaults: the
registry's best version, the latest servable day).  The unversioned
spellings (``/health``, ``/scores``, ...) still answer for one release,
but carry ``Deprecation: true`` and a ``Link: </v1/...>;
rel="successor-version"`` header pointing at the canonical path.

Errors come back as a uniform envelope —
``{"error": {"code", "message", "retry_after"}}`` — with a meaningful
status code, so a misaddressed query never manifests as an opaque 500.
``retry_after`` is non-null exactly when retrying helps (load shed,
timeout) and mirrors the ``Retry-After`` response header.

This module also hosts the transport-agnostic pieces the asyncio
cluster front-end (:mod:`repro.serve.cluster`) reuses: route resolution
(:func:`resolve_route`), exception→status mapping
(:func:`classify_exception`), and envelope rendering
(:func:`error_payload`).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .registry import RegistryError
from .service import RankingService, ServiceTimeoutError

#: canonical API ops, keyed by their ``/v1/`` path segment.
API_OPS = ("health", "models", "scores", "top_k", "rank", "delta",
           "stats", "reload", "ingest")

#: ops that mutate server state and therefore want POST (GET still
#: answers for operator convenience — reload is idempotent).
MUTATING_OPS = ("reload", "ingest")


class ApiError(Exception):
    """An error with a wire-level identity: status, code, retry hint."""

    def __init__(self, status: int, code: str, message: str,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.retry_after = retry_after
        #: original exception class for the legacy ``type`` field (the
        #: cluster reconstructs worker-side errors as ApiError)
        self.type_name: Optional[str] = None


def resolve_route(path: str) -> Tuple[Optional[str], str, bool]:
    """``(op, canonical_path, deprecated)`` for a request path.

    ``op`` is ``None`` for unknown paths.  ``deprecated`` is True when
    the client used an unversioned spelling; the transport should attach
    :func:`deprecation_headers` to the response.
    """
    if path.startswith("/v1/"):
        op = path[len("/v1/"):].strip("/")
        return (op if op in API_OPS else None), path, False
    op = path.strip("/")
    if op in API_OPS:
        return op, f"/v1/{op}", True
    return None, path, False


def deprecation_headers(canonical_path: str) -> Dict[str, str]:
    """Headers an unversioned-alias response must carry."""
    return {"Deprecation": "true",
            "Link": f'<{canonical_path}>; rel="successor-version"'}


def error_payload(code: str, message: str,
                  retry_after: Optional[float] = None,
                  type_name: Optional[str] = None) -> Dict[str, Any]:
    """The uniform JSON error envelope.

    ``type`` is a legacy field (pre-/v1/ clients matched on exception
    class names); new clients switch on the stable ``code``.
    """
    envelope: Dict[str, Any] = {"code": code, "message": message,
                                "retry_after": retry_after}
    if type_name is not None:
        envelope["type"] = type_name
    return {"error": envelope}


def classify_exception(exc: BaseException
                       ) -> Tuple[int, str, Optional[float]]:
    """``(status, code, retry_after)`` for an exception from the service."""
    if isinstance(exc, ApiError):
        return exc.status, exc.code, exc.retry_after
    if isinstance(exc, ServiceTimeoutError):
        return 503, "timeout", 1.0
    if isinstance(exc, (RegistryError, FileNotFoundError)):
        return 404, "not_found", None
    if isinstance(exc, ValueError):
        return 400, "bad_request", None
    return 500, "internal", None


def exception_response(exc: BaseException
                       ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
    """``(status, extra_headers, payload)`` for an exception."""
    status, code, retry_after = classify_exception(exc)
    headers = {}
    if retry_after is not None:
        headers["Retry-After"] = f"{retry_after:g}"
    type_name = getattr(exc, "type_name", None) or type(exc).__name__
    return status, headers, error_payload(code, str(exc), retry_after,
                                          type_name=type_name)


def parse_query(query_string: str) -> Dict[str, str]:
    return {key: values[-1]
            for key, values in parse_qs(query_string).items()}


def query_int(query: Dict[str, str], name: str) -> Optional[int]:
    raw = query.get(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"query parameter {name!r} must be an integer, "
                         f"got {raw!r}") from None


def parse_body(body: Optional[bytes]) -> Dict[str, Any]:
    """Decode a JSON request body; empty/missing bodies become ``{}``."""
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiError(400, "bad_request",
                       f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ApiError(400, "bad_request",
                       "request body must be a JSON object")
    return payload


def execute(service: RankingService, op: str, query: Dict[str, str],
            body: Optional[bytes] = None) -> Dict[str, Any]:
    """Run one canonical op against a :class:`RankingService`.

    Shared by the threaded server below; the cluster front-end executes
    ranking ops in its worker processes instead but delegates the
    registry-only ops here via its parent-side service.
    """
    version = query.get("version")
    day = query_int(query, "day")
    if op == "health":
        return {"status": "ok",
                "loaded": service.registry.loaded_versions()}
    if op == "models":
        registry = service.registry
        return {"directory": str(registry.directory),
                "loaded": registry.loaded_versions(),
                "models": [registry.describe(v)
                           for v in registry.discover()]}
    if op == "scores":
        return service.predict_scores(version=version, day=day)
    if op == "top_k":
        k = query_int(query, "k")
        return service.top_k(k=10 if k is None else k,
                             version=version, day=day)
    if op == "rank":
        return service.rank_universe(version=version, day=day)
    if op == "delta":
        return service.rank_delta(version=version, day=day)
    if op == "stats":
        return service.stats()
    if op == "reload":
        return service.reload(version=version)
    if op == "ingest":
        return service.ingest(parse_body(body), version=version)
    raise ApiError(404, "not_found", f"no route for op {op!r}")


def _json_bytes(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class RankingHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`RankingService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: RankingService):
        from ._deprecation import guard_legacy
        guard_legacy("RankingHTTPServer")
        super().__init__(address, _RankingHandler)
        self.service = service

    def shutdown(self) -> None:          # also drain the batcher
        super().shutdown()
        self.service.close()


class _RankingHandler(BaseHTTPRequestHandler):
    server: RankingHTTPServer
    protocol_version = "HTTP/1.1"

    # quiet by default; serving telemetry supersedes stderr access logs
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._respond()

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        # Reading the full body also keeps keep-alive framing intact.
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        self._respond(body)

    def _respond(self, body: Optional[bytes] = None) -> None:
        parsed = urlparse(self.path)
        query = parse_query(parsed.query)
        op, canonical, deprecated = resolve_route(parsed.path)
        extra_headers: Dict[str, str] = {}
        try:
            if op is None:
                raise ApiError(404, "not_found",
                               f"no route for {parsed.path!r}")
            status, payload = 200, execute(self.server.service, op, query,
                                           body=body)
        except Exception as exc:  # noqa: BLE001 — JSON instead of stack dump
            status, extra_headers, payload = exception_response(exc)
        if deprecated:
            extra_headers.update(deprecation_headers(canonical))
        body = _json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


def serve_forever(service: RankingService, host: str = "127.0.0.1",
                  port: int = 8151) -> None:
    """Blocking entry point used by ``repro.cli serve``."""
    from ._deprecation import sanctioned, guard_legacy
    guard_legacy("serve_forever")
    with sanctioned():
        server = RankingHTTPServer((host, port), service)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
