"""Stdlib JSON/HTTP front-end for the :class:`RankingService`.

One :class:`~http.server.ThreadingHTTPServer` (no third-party web
framework — the whole repo is stdlib+NumPy) exposing:

====================  ====================================================
``GET /health``        liveness + loaded versions
``GET /v1/models``     available / loaded versions with metadata
``GET /v1/scores``     raw per-symbol scores
``GET /v1/top_k``      the k best-ranked symbols (``?k=10``)
``GET /v1/rank``       the full ranked universe
``GET /v1/delta``      day-over-day rank movement
``GET /v1/stats``      serving telemetry snapshot
====================  ====================================================

Ranking endpoints accept ``?version=<ckpt>&day=<int>`` (defaults: the
registry's best version, the latest servable day).  Errors come back as
``{"error": {"type", "message"}}`` with a meaningful status code, so a
misaddressed query never manifests as an opaque 500.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .registry import RegistryError
from .service import RankingService, ServiceTimeoutError


def _json_bytes(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class RankingHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`RankingService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: RankingService):
        super().__init__(address, _RankingHandler)
        self.service = service

    def shutdown(self) -> None:          # also drain the batcher
        super().shutdown()
        self.service.close()


class _RankingHandler(BaseHTTPRequestHandler):
    server: RankingHTTPServer
    protocol_version = "HTTP/1.1"

    # quiet by default; serving telemetry supersedes stderr access logs
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        parsed = urlparse(self.path)
        query = {key: values[-1]
                 for key, values in parse_qs(parsed.query).items()}
        try:
            status, payload = self._route(parsed.path, query)
        except (RegistryError, FileNotFoundError) as exc:
            status, payload = 404, _error(exc)
        except ServiceTimeoutError as exc:
            status, payload = 503, _error(exc)
        except ValueError as exc:
            status, payload = 400, _error(exc)
        except Exception as exc:  # noqa: BLE001 — JSON instead of stack dump
            status, payload = 500, _error(exc)
        body = _json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def _route(self, path: str, query: Dict[str, str]
               ) -> Tuple[int, Dict[str, Any]]:
        service = self.server.service
        version = query.get("version")
        day = _int_or_none(query.get("day"), "day")
        if path == "/health":
            return 200, {"status": "ok",
                         "loaded": service.registry.loaded_versions()}
        if path == "/v1/models":
            registry = service.registry
            return 200, {
                "directory": str(registry.directory),
                "loaded": registry.loaded_versions(),
                "models": [registry.describe(v)
                           for v in registry.discover()]}
        if path == "/v1/scores":
            return 200, service.predict_scores(version=version, day=day)
        if path == "/v1/top_k":
            k = _int_or_none(query.get("k"), "k")
            return 200, service.top_k(k=10 if k is None else k,
                                      version=version, day=day)
        if path == "/v1/rank":
            return 200, service.rank_universe(version=version, day=day)
        if path == "/v1/delta":
            return 200, service.rank_delta(version=version, day=day)
        if path == "/v1/stats":
            return 200, service.stats()
        return 404, {"error": {"type": "NotFound",
                               "message": f"no route for {path!r}"}}


def _int_or_none(raw: Optional[str], name: str) -> Optional[int]:
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"query parameter {name!r} must be an integer, "
                         f"got {raw!r}") from None


def _error(exc: BaseException) -> Dict[str, Any]:
    return {"error": {"type": type(exc).__name__, "message": str(exc)}}


def serve_forever(service: RankingService, host: str = "127.0.0.1",
                  port: int = 8151) -> None:
    """Blocking entry point used by ``repro.cli serve``."""
    server = RankingHTTPServer((host, port), service)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
