"""Online ingest: delta-update the live graph, re-rank within a budget.

The batch serving path answers "what is today's ranking" against a
frozen dataset.  Streaming markets (:mod:`repro.data.stream`) change the
relation graph *between* requests, so the serving tier needs an ingest
path: ``POST /v1/ingest`` hands it one day's event batch, and the
:class:`StreamIngestor`

1. **applies the deltas** to a live
   :class:`~repro.graph.DynamicNormalizedAdjacency` held in the
   process-global :func:`~repro.graph.adjacency_cache` (the whole update
   runs under the cache lock via
   :meth:`NormalizedAdjacencyCache.apply_delta`, renormalizing only the
   touched rows — O(affected) instead of O(nnz));
2. **re-ranks** by smoothing the model's base scores over the updated
   normalized adjacency — ``s' = (1 − α)·s + α·(Â s)`` — a relational
   re-ranking pass that works for every strategy and is O(nnz);
3. enforces a **tick budget**: if the tick overruns
   ``tick_budget_ms`` before the fresh ranking exists, the *last served
   ranking* is returned instead (marked ``"fallback": true``), so a slow
   tick degrades to a slightly stale answer rather than stalling the
   stream.  The graph update itself always lands — correctness of the
   adjacency is never sacrificed to the budget, only ranking freshness.

One ingestor serves all model versions; state is per ``(version, mode)``
and survives cache eviction (the ingestor keeps the authoritative
reference and re-seeds the cache on a miss).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..graph import DynamicNormalizedAdjacency, adjacency_cache

#: default per-tick latency budget (graph delta + re-rank), milliseconds
DEFAULT_TICK_BUDGET_MS = 250.0

#: default smoothing weight of the relational re-ranking pass
DEFAULT_STREAM_ALPHA = 0.5


class _StreamState:
    """Per-version live graph + last served ranking."""

    def __init__(self, key: Tuple, dynamic: DynamicNormalizedAdjacency):
        self.key = key
        self.dynamic = dynamic
        self.last_ranking: Optional[List[Dict[str, Any]]] = None
        self.last_day: Optional[int] = None
        self.ticks = 0
        self.fallbacks = 0
        self.applied_edits = 0
        self.touched_rows = 0


class StreamIngestor:
    """Applies per-day event batches to the serving tier.

    Parameters
    ----------
    service:
        The owning :class:`~repro.serve.service.RankingService` — source
        of engines (base scores) and telemetry.
    tick_budget_ms:
        Budget for one ingest tick; overruns fall back to the last
        served ranking.
    alpha:
        Weight of the graph-smoothing term in the re-ranking pass.
    mode:
        Representation of the live adjacency (``csr`` default; ``dense``
        for tiny universes / debugging).
    """

    def __init__(self, service, tick_budget_ms: float = DEFAULT_TICK_BUDGET_MS,
                 alpha: float = DEFAULT_STREAM_ALPHA, mode: str = "csr"):
        if tick_budget_ms <= 0:
            raise ValueError(f"tick_budget_ms must be > 0, got "
                             f"{tick_budget_ms}")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.service = service
        self.tick_budget_ms = float(tick_budget_ms)
        self.alpha = float(alpha)
        self.mode = mode
        self._states: Dict[str, _StreamState] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------
    def _state_for(self, version: str, engine) -> _StreamState:
        with self._lock:
            state = self._states.get(version)
            if state is None:
                base = engine.dataset.relations.tensor.sum(axis=-1)
                dynamic = DynamicNormalizedAdjacency(base, mode=self.mode)
                key = ("stream", version, self.mode)
                adjacency_cache().put(key, dynamic)
                state = _StreamState(key, dynamic)
                self._states[version] = state
            return state

    def reset(self, version: Optional[str] = None) -> None:
        """Drop stream state (all versions by default); next ingest
        re-seeds from the dataset's base relations."""
        with self._lock:
            targets = ([version] if version is not None
                       else list(self._states))
            for name in targets:
                state = self._states.pop(name, None)
                if state is not None:
                    adjacency_cache().invalidate(state.key)

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------
    def ingest(self, body: Dict[str, Any],
               version: Optional[str] = None) -> Dict[str, Any]:
        """Apply one day's event batch and re-rank within the budget."""
        start = time.perf_counter()
        budget_s = self.tick_budget_ms / 1000.0
        engine = self.service.engine(version)
        version = engine.servable.version
        state = self._state_for(version, engine)
        n = state.dynamic.num_nodes

        raw = body.get("deltas") or []
        deltas: List[Tuple[int, int, float]] = []
        for item in raw:
            if len(item) != 3:
                raise ValueError(f"delta entries must be [i, j, weight], "
                                 f"got {item!r}")
            i, j, w = int(item[0]), int(item[1]), float(item[2])
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"delta ({i}, {j}) outside the served "
                                 f"universe of {n} stocks")
            deltas.append((i, j, w))

        touched = 0
        if deltas:
            cache = adjacency_cache()
            try:
                touched = cache.apply_delta(state.key, deltas)
            except KeyError:
                # The LRU evicted the stream entry; the ingestor holds
                # the authoritative graph — re-seed and apply through
                # the cache so the update still runs under its lock.
                cache.put(state.key, state.dynamic)
                touched = cache.apply_delta(state.key, deltas)

        day = body.get("day")
        fallback = False
        elapsed = time.perf_counter() - start
        if elapsed > budget_s and state.last_ranking is not None:
            # Overrun before re-ranking: serve the previous ranking.
            ranking = state.last_ranking
            fallback = True
        else:
            ranking = self._rerank(engine, state)
            state.last_ranking = ranking
            state.last_day = day
        elapsed = time.perf_counter() - start

        state.ticks += 1
        state.applied_edits += len(deltas)
        state.touched_rows += touched
        if fallback:
            state.fallbacks += 1
        self.service.telemetry.record_request("ingest", elapsed,
                                              fallback=fallback)
        return {
            "op": "ingest",
            "version": version,
            "model": engine.servable.model_name,
            "market": engine.dataset.market,
            "day": day,
            "regime": body.get("regime"),
            "universe": n,
            "applied_edits": len(deltas),
            "listings": len(body.get("listings") or []),
            "touched_rows": touched,
            "tick_ms": elapsed * 1000.0,
            "budget_ms": self.tick_budget_ms,
            "overrun": bool(elapsed > budget_s),
            "fallback": fallback,
            "ticks": state.ticks,
            "fallbacks": state.fallbacks,
            "ranking": ranking[:10],
            "graph": state.dynamic.stats(),
        }

    def _rerank(self, engine, state: _StreamState
                ) -> List[Dict[str, Any]]:
        """Smooth base scores over the live Â and rank the universe."""
        scores = np.asarray(engine.scores(None), dtype=np.float64)
        smoothed = self._smooth(state.dynamic, scores)
        symbols = engine.dataset.universe.symbols
        order = np.argsort(-smoothed, kind="stable")
        return [{"rank": rank + 1, "symbol": symbols[i],
                 "score": float(smoothed[i])}
                for rank, i in enumerate(order)]

    def _smooth(self, dynamic: DynamicNormalizedAdjacency,
                scores: np.ndarray) -> np.ndarray:
        normalized = dynamic.normalized()
        if dynamic.mode == "dense":
            propagated = normalized @ scores
        else:
            pattern = normalized.pattern
            propagated = np.zeros(dynamic.num_nodes)
            np.add.at(propagated, pattern.rows,
                      normalized.data * scores[pattern.indices])
        return (1.0 - self.alpha) * scores + self.alpha * propagated

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "tick_budget_ms": self.tick_budget_ms,
                "alpha": self.alpha,
                "mode": self.mode,
                "versions": {
                    version: {
                        "ticks": state.ticks,
                        "fallbacks": state.fallbacks,
                        "applied_edits": state.applied_edits,
                        "touched_rows": state.touched_rows,
                        "last_day": state.last_day,
                        "graph": state.dynamic.stats(),
                    } for version, state in self._states.items()},
            }


__all__ = ["StreamIngestor", "DEFAULT_TICK_BUDGET_MS",
           "DEFAULT_STREAM_ALPHA"]
