"""Multi-process serving cluster: asyncio front-end + forked workers.

The threaded server (:mod:`repro.serve.httpd`) runs model forwards on
the request threads of one process; past a handful of concurrent
clients the GIL serializes them.  :class:`ServingCluster` splits the
two roles:

- **Front-end** — a single asyncio event loop accepts every connection
  (thousands of idle keep-alive sockets cost one fd each, no threads),
  parses HTTP/1.1, coalesces identical in-flight requests, and applies
  *admission control*: a bounded dispatch queue, with overflow answered
  immediately as ``429`` + ``Retry-After`` instead of queueing without
  bound until every client times out.
- **Workers** — ``cluster_workers`` forked inference processes, reusing
  the PDEATHSIG/respawn plumbing of
  :class:`repro.parallel.WorkerHandle`.  Weights live in **one** shared
  memory copy (:mod:`repro.serve.shm`): the front-end publishes them,
  every worker maps its model parameters onto the segment zero-copy.
- **Hot swap** — a watcher polls the checkpoint directory
  (:meth:`ModelRegistry.fingerprint`); when the promoted best changes,
  the front-end publishes a new weight generation and flips the seqlock
  control word.  Workers notice *between* requests: in-flight requests
  finish on the old weights (the reader keeps the previous generation
  mapped), no request is ever dropped, and post-swap scores are
  bitwise-identical to a fresh engine on the new checkpoint.

Construction goes through :func:`repro.serve.build` with
``ServeConfig(mode="cluster")``; this class is not part of the
deprecated legacy surface.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import threading
import time
import warnings
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse

import numpy as np

from ..parallel.pool import WorkerHandle, die_with_parent, fork_available
from ._deprecation import sanctioned
from .httpd import (ApiError, classify_exception, deprecation_headers,
                    error_payload, exception_response, parse_body,
                    parse_query, query_int, resolve_route)
from .shm import SharedWeightReader, SharedWeightStore, adopt_views

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: ops the forked workers execute; everything else runs in the parent
WORKER_OPS = ("scores", "top_k", "rank", "delta")


class ClusterError(RuntimeError):
    """The cluster could not start or lost all of its workers."""


# ----------------------------------------------------------------------
# worker side (runs in the forked child)
# ----------------------------------------------------------------------
def _worker_envelope(engine, reader: SharedWeightReader, slot: int,
                     day: int, **payload: Any) -> Dict[str, Any]:
    return {"version": engine.servable.version,
            "model": engine.servable.model_name,
            "market": engine.dataset.market,
            "day": day, "stale": False,
            "generation": reader.generation, "worker": slot, **payload}


def _ranks_of(values: np.ndarray) -> np.ndarray:
    order = np.argsort(-values, kind="stable")
    ranks = np.empty(len(values), dtype=int)
    ranks[order] = np.arange(1, len(values) + 1)
    return ranks


def _worker_execute(engine, reader: SharedWeightReader, slot: int,
                    op: str, query: Dict[str, str]) -> Dict[str, Any]:
    """One ranking op against the worker's (shared-weight) engine.

    Mirrors the :class:`RankingService` response envelopes field for
    field (plus ``generation``/``worker``), so clients cannot tell which
    serving topology answered — only the transport differs.
    """
    day = engine.resolve_day(query_int(query, "day"))
    symbols = engine.dataset.universe.symbols
    if op == "scores":
        scores = engine.scores(day)
        return _worker_envelope(engine, reader, slot, day, scores={
            symbol: float(score)
            for symbol, score in zip(symbols, scores)})
    if op == "top_k":
        k = query_int(query, "k")
        k = 10 if k is None else k
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        scores = engine.scores(day)
        k = min(int(k), len(symbols))
        order = np.argsort(-scores, kind="stable")[:k]
        return _worker_envelope(engine, reader, slot, day, k=k, top_k=[
            {"rank": rank + 1, "symbol": symbols[i],
             "score": float(scores[i])}
            for rank, i in enumerate(order)])
    if op == "rank":
        scores = engine.scores(day)
        ranks = _ranks_of(scores)
        return _worker_envelope(engine, reader, slot, day, ranking=[
            {"rank": int(ranks[i]), "symbol": symbols[i],
             "score": float(scores[i])}
            for i in np.argsort(-scores, kind="stable")])
    if op == "delta":
        prior = day - 1
        if prior < engine.servable.window - 1:
            raise ValueError(
                f"day {day} has no prior servable day to diff against")
        scores, prev_scores = engine.scores(day), engine.scores(prior)
        today_ranks, prior_ranks = _ranks_of(scores), _ranks_of(prev_scores)
        deltas = prior_ranks - today_ranks
        return _worker_envelope(
            engine, reader, slot, day, prior_day=prior, deltas=[
                {"symbol": symbols[i], "rank": int(today_ranks[i]),
                 "prior_rank": int(prior_ranks[i]),
                 "delta": int(deltas[i]), "score": float(scores[i])}
                for i in np.argsort(today_ranks, kind="stable")])
    raise ApiError(404, "not_found", f"worker has no op {op!r}")


def _cluster_worker_main(slot: int, task_conn, event_conn,
                         servable, base_name: str) -> None:
    """Forked inference worker: shared weights in, score payloads out.

    ``servable`` arrives via fork inheritance (model skeleton + dataset,
    copy-on-write); the parameter *storage* is immediately re-pointed at
    the shared-memory segment, so the fork's weight copy is never
    touched and N workers hold one physical set of weights.

    Hot swap: the generation word is checked **between** requests; a
    request already being computed finishes on the weights it started
    with (the reader keeps the previous generation mapped one swap
    back).  A failed adoption (e.g. an architecture-changing checkpoint)
    is survived by continuing on the old weights.
    """
    die_with_parent()
    from .engine import InferenceEngine

    reader = SharedWeightReader(base_name)
    reader.refresh()
    adopt_views(servable.model, reader.views())
    with sanctioned():
        engine = InferenceEngine(servable)
    while True:
        try:
            message = task_conn.recv()
        except (EOFError, OSError):         # parent went away
            break
        if message is None:                 # graceful shutdown sentinel
            break
        req_id, op, query = message
        try:
            try:
                if reader.refresh():
                    adopt_views(servable.model, reader.views())
            except Exception:
                # keep serving the previous weights; the parent's swap
                # machinery owns reporting/promotion correctness
                pass
            payload = _worker_execute(engine, reader, slot, op, query)
            response = (req_id, "ok", payload)
        except BaseException as exc:        # noqa: BLE001 — ship to parent
            status, code, retry_after = classify_exception(exc)
            response = (req_id, "err",
                        {"status": status, "code": code,
                         "retry_after": retry_after, "message": str(exc),
                         "type": type(exc).__name__})
        try:
            event_conn.send(response)
        except (BrokenPipeError, OSError):  # parent went away mid-reply
            break
    # Re-point the parameters at private copies before unmapping: numpy
    # views still aliasing the segment keep its buffer exported, which
    # makes the mmap close fail (and print) during interpreter teardown.
    for param in servable.model.parameters():
        param.data = np.array(param.data)
    reader.close()


class _WorkerDied(RuntimeError):
    """The pipe roundtrip to a worker failed (crash / kill mid-request)."""


# ----------------------------------------------------------------------
# front-end (parent process)
# ----------------------------------------------------------------------
class ServingCluster:
    """The serving cluster's parent-side controller.

    Lifecycle: :meth:`start` forks the workers, publishes the weights,
    and brings the asyncio front-end up on a background thread (returns
    once the listener is bound — :attr:`address` is then real);
    :meth:`serve_forever` blocks until :meth:`close`.  Built by
    :func:`repro.serve.build`; ``service`` is the parent-side
    :class:`RankingService` used for registry/metadata ops only — the
    ranking path runs in the forked workers.
    """

    def __init__(self, config, service, telemetry):
        if not fork_available():
            raise ClusterError(
                "cluster mode requires the 'fork' start method; use "
                "ServeConfig(mode='threaded') on this platform")
        self.config = config
        self.service = service
        self.telemetry = telemetry
        self.address: Optional[Tuple[str, int]] = None
        self.swaps = 0
        self._ctx = multiprocessing.get_context("fork")
        self._handles: list = []
        self._shm_store: Optional[SharedWeightStore] = None
        self._fingerprint = None
        self._servable = None
        self._req_ids = itertools.count()
        self._started = False
        self._closed = False
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingCluster":
        if self._started:
            return self
        self._started = True
        registry = self.service.registry
        with sanctioned():
            self._servable = registry.load(None)
        self._fingerprint = registry.fingerprint(self._servable.version)
        self._shm_store = SharedWeightStore()
        self._shm_store.publish(self._servable.model.state_dict(),
                                version=self._servable.version)
        self._handles = [
            WorkerHandle(self._ctx, slot, _cluster_worker_main,
                         args=(self._servable, self._shm_store.base_name),
                         name_prefix="repro-serve-cluster")
            for slot in range(self.config.cluster_workers)]
        self._thread = threading.Thread(target=self._run_loop,
                                        name="repro-serve-cluster-loop",
                                        daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            error = self._startup_error
            self.close()
            raise ClusterError(f"cluster front-end failed to start: "
                               f"{error}") from error
        if self.address is None:
            self.close()
            raise ClusterError("cluster front-end did not come up "
                               "within 30s")
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`close` (or KeyboardInterrupt upstream)."""
        self.start()
        self._thread.join()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._stop_async is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_async.set)
            except RuntimeError:            # loop already gone
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        for handle in self._handles:
            try:
                handle.task_w.send(None)
            except (OSError, ValueError):
                pass
        for handle in self._handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():   # pragma: no cover - stuck
                handle.process.kill()
                handle.process.join(timeout=1.0)
            handle.close()
        self._handles = []
        if self._shm_store is not None:
            self._shm_store.close(unlink=True)
            self._shm_store = None

    # ------------------------------------------------------------------
    # asyncio core
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:        # pragma: no cover - defensive
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        self._queue: "asyncio.Queue" = asyncio.Queue(
            maxsize=self.config.max_queue)
        self._inflight: Dict[Any, asyncio.Future] = {}
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.config.host,
                self.config.port)
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.address = server.sockets[0].getsockname()[:2]
        proxies = [asyncio.create_task(self._worker_proxy(slot))
                   for slot in range(len(self._handles))]
        watcher = asyncio.create_task(self._watch_checkpoints())
        self._ready.set()
        try:
            await self._stop_async.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in (watcher, *proxies):
                task.cancel()
            await asyncio.gather(watcher, *proxies,
                                 return_exceptions=True)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = (headers.get("connection", "").lower()
                              != "close")
                status, extra, payload = await self._dispatch(
                    method, target, body)
                writer.write(self._render(status, extra, payload,
                                          keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
            reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request (head + body); None on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise ConnectionError("malformed request line")
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _render(status: int, extra: Dict[str, str],
                payload: Dict[str, Any], keep_alive: bool) -> bytes:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        reason = _REASONS.get(status, "OK")
        lines = [f"HTTP/1.1 {status} {reason}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        lines += [f"{name}: {value}" for name, value in extra.items()]
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + body

    # ------------------------------------------------------------------
    # routing / dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, target: str, body: bytes = b""
                        ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        parsed = urlparse(target)
        query = parse_query(parsed.query)
        op, canonical, deprecated = resolve_route(parsed.path)
        extra: Dict[str, str] = {}
        try:
            if op is None:
                raise ApiError(404, "not_found",
                               f"no route for {parsed.path!r}")
            if op in WORKER_OPS:
                payload = await self._dispatch_worker(op, query)
            else:
                payload = await self._dispatch_parent(op, query, body)
            status = 200
        except Exception as exc:  # noqa: BLE001 — uniform JSON envelope
            status, extra, payload = exception_response(exc)
        if deprecated:
            extra.update(deprecation_headers(canonical))
        return status, extra, payload

    async def _dispatch_parent(self, op: str, query: Dict[str, str],
                               body: bytes = b"") -> Dict[str, Any]:
        """Registry/metadata/ingest ops answered in the front-end process."""
        loop = asyncio.get_running_loop()
        if op == "health":
            alive = sum(1 for h in self._handles if h.process.is_alive())
            return {"status": "ok" if alive else "degraded",
                    "mode": "cluster", "workers": len(self._handles),
                    "alive": alive,
                    "generation": self._shm_store.current_generation(),
                    "version": self._servable.version}
        if op == "models":
            registry = self.service.registry
            return await loop.run_in_executor(None, lambda: {
                "directory": str(registry.directory),
                "loaded": registry.loaded_versions(),
                "models": [registry.describe(v)
                           for v in registry.discover()]})
        if op == "stats":
            snap = self.telemetry.snapshot()
            snap["registry"] = self.service.registry.stats()
            snap["cluster"] = {
                "workers": len(self._handles),
                "alive": sum(1 for h in self._handles
                             if h.process.is_alive()),
                "queue_depth": self._queue.qsize(),
                "max_queue": self.config.max_queue,
                "generation": self._shm_store.current_generation(),
                "swaps": self.swaps,
            }
            return snap
        if op == "reload":
            generation = await self._maybe_swap(force=True)
            return {"reloaded": generation is not None,
                    "generation": self._shm_store.current_generation(),
                    "version": self._servable.version}
        if op == "ingest":
            # The live graph is parent-side state (the process-global
            # adjacency cache); the delta + re-rank run on an executor
            # thread so the event loop keeps accepting connections.
            payload = parse_body(body)
            version = query.get("version")
            return await loop.run_in_executor(
                None, lambda: self.service.ingest(payload, version=version))
        raise ApiError(404, "not_found", f"no route for op {op!r}")

    async def _dispatch_worker(self, op: str, query: Dict[str, str]
                               ) -> Dict[str, Any]:
        """Admit one ranking request to the worker queue (or shed it)."""
        start = time.perf_counter()
        if not any(h.process.is_alive() for h in self._handles):
            self.telemetry.record_error(op)
            raise ApiError(503, "unavailable", "no inference workers "
                           "alive", retry_after=self.config.retry_after_s)
        key = (op, tuple(sorted(query.items())))
        shared = self._inflight.get(key)
        if shared is None:
            future: "asyncio.Future" = asyncio.get_running_loop() \
                .create_future()
            self._inflight[key] = future
            future.add_done_callback(
                lambda _f, _k=key: self._inflight.pop(_k, None))
            try:
                self._queue.put_nowait((key[0], query, future, 0))
            except asyncio.QueueFull:
                self._inflight.pop(key, None)
                self.telemetry.record_shed(op)
                raise ApiError(
                    429, "overloaded",
                    f"dispatch queue full ({self.config.max_queue} "
                    "requests waiting); retry later",
                    retry_after=self.config.retry_after_s) from None
        else:
            future = shared
        depth = self._queue.qsize()
        try:
            payload = await asyncio.wait_for(
                asyncio.shield(future), timeout=self.config.default_timeout)
        except asyncio.TimeoutError:
            self.telemetry.record_error(op)
            raise ApiError(503, "timeout",
                           f"request missed its "
                           f"{self.config.default_timeout:g}s deadline",
                           retry_after=self.config.retry_after_s) from None
        except ApiError:
            self.telemetry.record_error(op)
            raise
        self.telemetry.record_request(op, time.perf_counter() - start,
                                      queue_depth=depth)
        return payload

    async def _worker_proxy(self, slot: int) -> None:
        """One task per worker: pull from the queue, roundtrip the pipe.

        A crashed worker (EOF mid-roundtrip) is respawned into the same
        slot and the request retried up to ``crash_retries`` times; the
        retries ride the front of the queue so a crash cannot reorder a
        request behind the whole backlog.
        """
        loop = asyncio.get_running_loop()
        while True:
            op, query, future, attempts = await self._queue.get()
            if future.done():               # waiter(s) already timed out
                continue
            handle = self._handles[slot]
            try:
                result = await loop.run_in_executor(
                    None, self._roundtrip, handle, op, query)
            except _WorkerDied as exc:
                await loop.run_in_executor(None, self._respawn, slot)
                if attempts < self.config.crash_retries:
                    try:
                        self._queue.put_nowait((op, query, future,
                                                attempts + 1))
                    except asyncio.QueueFull:
                        if not future.done():
                            future.set_exception(ApiError(
                                503, "unavailable",
                                "worker crashed and the retry queue is "
                                "full",
                                retry_after=self.config.retry_after_s))
                elif not future.done():
                    future.set_exception(ApiError(
                        503, "unavailable",
                        f"request crashed its worker on all "
                        f"{attempts + 1} attempt(s): {exc}",
                        retry_after=self.config.retry_after_s))
                continue
            except Exception as exc:        # noqa: BLE001
                if not future.done():
                    future.set_exception(exc)
                continue
            kind, body = result
            if future.done():
                continue
            if kind == "ok":
                future.set_result(body)
            else:
                error = ApiError(body["status"], body["code"],
                                 body["message"],
                                 retry_after=body.get("retry_after"))
                error.type_name = body.get("type")  # original class name
                future.set_exception(error)

    def _roundtrip(self, handle: WorkerHandle, op: str,
                   query: Dict[str, str]) -> Tuple[str, Dict[str, Any]]:
        """Blocking pipe send/recv (runs on an executor thread)."""
        req_id = next(self._req_ids)
        try:
            handle.task_w.send((req_id, op, query))
            while True:
                event = handle.event_r.recv()
                if event[0] == req_id:
                    return event[1], event[2]
                # stale reply from a request whose waiters gave up
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise _WorkerDied(
                f"worker {handle.slot} died mid-request "
                f"(exit code {handle.process.exitcode})") from exc

    def _respawn(self, slot: int) -> None:
        handle = self._handles[slot]
        warnings.warn(f"repro.serve.cluster: respawning crashed worker "
                      f"{slot}", RuntimeWarning, stacklevel=2)
        self._handles[slot] = handle.respawn(self._ctx)

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    async def _watch_checkpoints(self) -> None:
        while True:
            await asyncio.sleep(self.config.watch_interval_s)
            try:
                await self._maybe_swap()
            except Exception as exc:        # noqa: BLE001 — keep serving
                warnings.warn(f"repro.serve.cluster: hot-swap check "
                              f"failed: {exc}", RuntimeWarning,
                              stacklevel=2)

    async def _maybe_swap(self, force: bool = False) -> Optional[int]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._swap_sync, force)

    def _swap_sync(self, force: bool) -> Optional[int]:
        """Publish a new weight generation if the best checkpoint moved.

        Runs on an executor thread (archive load + checksum are slow);
        publishing itself is atomic from the workers' point of view —
        the new segment is fully written before the control word flips.
        """
        registry = self.service.registry
        fingerprint = registry.fingerprint()
        if fingerprint is None:
            return None
        if fingerprint == self._fingerprint and not force:
            return None
        version = fingerprint[0]
        with sanctioned():
            self.service.reload()           # parent-side engine caches
            registry.evict(version)         # force a fresh archive read
            servable = registry.load(version)
        published = self._shm_store.publish(servable.model.state_dict(),
                                            version=version)
        self._servable = servable
        self._fingerprint = fingerprint
        self.swaps += 1
        return published.generation
