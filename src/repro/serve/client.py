"""Asyncio query client for the /v1/ serving API.

``repro.cli query`` historically fanned multi-endpoint polls out over a
stdlib thread pool of blocking ``urlopen`` calls.  This module replaces
that with a true asyncio client — one event loop, one coroutine per
endpoint, a semaphore for the concurrency cap — sharing its vocabulary
with the cluster front-end instead of inventing a parallel one:

- timeouts surface as the **same error envelope** the server itself
  would send for a timed-out request (:func:`~repro.serve.httpd.
  error_payload` with the ``timeout`` code from
  :func:`~repro.serve.httpd.classify_exception`), so a dashboard
  consuming ``repro.cli query`` output handles a slow server and an
  unreachable one with the same ``payload["error"]["code"]`` switch;
- HTTP responses are parsed the way the front-end writes them
  (``Content-Length`` or connection close; the body is the JSON
  payload, error or not).

Only connection *establishment* failures raise
(:class:`ClientConnectError`) — the server not running is an operator
error, not a payload.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Mapping, Optional
from urllib.parse import urlencode

from .httpd import error_payload
from .service import ServiceTimeoutError

__all__ = ["ClientConnectError", "QueryClient", "fetch_endpoints"]


class ClientConnectError(Exception):
    """Could not establish a connection to the serving endpoint."""


class QueryClient:
    """Concurrent GETs against one server, bounded by a semaphore.

    Every request is a fresh ``Connection: close`` HTTP/1.1 exchange —
    the query CLI is a poll, not a session, and both serving transports
    (threaded stdlib server and asyncio cluster front-end) treat
    connections as disposable.
    """

    def __init__(self, host: str, port: int, timeout: float = 5.0,
                 concurrency: int = 8):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.concurrency = max(1, int(concurrency))

    # ------------------------------------------------------------------
    async def fetch(self, path: str,
                    params: Optional[Mapping[str, Any]] = None
                    ) -> Dict[str, Any]:
        """GET ``path`` and return the parsed JSON payload.

        A request that times out after connecting returns the uniform
        ``timeout`` error envelope (exactly what the server's own
        admission control would have sent); a refused/failed connection
        raises :class:`ClientConnectError`.
        """
        if params:
            path = f"{path}?{urlencode(dict(params))}"
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ClientConnectError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            request = (f"GET {path} HTTP/1.1\r\n"
                       f"Host: {self.host}:{self.port}\r\n"
                       f"Accept: application/json\r\n"
                       f"Connection: close\r\n\r\n")
            writer.write(request.encode("ascii"))
            await writer.drain()
            try:
                body = await asyncio.wait_for(_read_response(reader),
                                              timeout=self.timeout)
            except asyncio.TimeoutError:
                # The same envelope the server sends for its own
                # timeouts — one switch handles both sides.
                exc = ServiceTimeoutError(
                    f"no response from {self.host}:{self.port}{path} "
                    f"within {self.timeout:g}s")
                return error_payload("timeout", str(exc), retry_after=1.0,
                                     type_name=type(exc).__name__)
            try:
                return json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return error_payload(
                    "bad_response",
                    f"non-JSON response from "
                    f"{self.host}:{self.port}{path}: {exc}",
                    type_name=type(exc).__name__)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def fetch_many(self, paths: Mapping[str, str],
                         params: Optional[Mapping[str, Any]] = None
                         ) -> Dict[str, Dict[str, Any]]:
        """Fetch every ``{key: path}`` concurrently; payloads by key."""
        gate = asyncio.Semaphore(self.concurrency)

        async def bounded(path: str) -> Dict[str, Any]:
            async with gate:
                return await self.fetch(path, params)

        results = await asyncio.gather(
            *(bounded(path) for path in paths.values()))
        return dict(zip(paths.keys(), results))


async def _read_response(reader: asyncio.StreamReader) -> bytes:
    """Body of one HTTP response (Content-Length or read-to-close)."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection before "
                              "sending a response")
    length: Optional[int] = None
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                pass
    if length is not None:
        return await reader.readexactly(length)
    return await reader.read()


def fetch_endpoints(host: str, port: int, paths: Mapping[str, str],
                    params: Optional[Mapping[str, Any]] = None,
                    timeout: float = 5.0,
                    concurrency: int = 8) -> Dict[str, Dict[str, Any]]:
    """Synchronous entry point: run one event loop over ``paths``.

    This is what ``repro.cli query`` calls; it owns no loop of its own,
    so it composes with nothing else running (``asyncio.run`` per
    invocation).
    """
    client = QueryClient(host, port, timeout=timeout,
                         concurrency=concurrency)
    return asyncio.run(client.fetch_many(paths, params))
