"""Model registry: discover, verify, reconstruct, and cache checkpoints.

A :class:`ModelRegistry` owns one directory of ``repro.ckpt`` archives —
typically the ``--checkpoint-dir`` a training run wrote — and turns them
into servable models:

- :meth:`discover` lists the available *versions* (archive stems, e.g.
  ``best`` or ``ckpt-e0007-b000000``) without loading anything;
- :meth:`describe` verifies an archive's SHA-256 checksum and returns its
  metadata (still without building a model);
- :meth:`load` reconstructs the model through the unified ``state_dict``
  API — architecture hyperparameters are *inferred from parameter shapes*
  (layer count, filter width, temporal kernel), the relation strategy
  comes from the checkpoint's registered model name via
  :func:`repro.baselines.rtgcn_strategies`, and the market dataset is
  regenerated deterministically from the recorded market/seed;
- loaded models are cached under an LRU policy with an optional byte
  budget (:meth:`warm` pre-faults versions, :meth:`evict` drops them).

Everything is thread-safe: HTTP handler threads resolve versions while a
batcher worker faults in a model.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..ckpt.checkpoint import (CheckpointError, TrainingCheckpoint,
                               load as load_archive, verify_archive)
from ..ckpt.manager import _CKPT_PATTERN
from ..core.model import RTGCN
from ..data import StockDataset, load_market
from ..nn.module import Module


class RegistryError(RuntimeError):
    """A model could not be resolved, verified, or reconstructed.

    The message always says which archive/version is at fault and what
    the operator can do about it (retrain, pass ``--model``/``--market``
    overrides, or pick another version).
    """


@dataclass
class ServableModel:
    """One loaded checkpoint, ready for forward-only inference."""

    version: str
    path: Path
    model: Module
    dataset: StockDataset
    model_name: str                      # registry name, e.g. "RT-GCN (T)"
    strategy: str
    graph_mode: str
    config: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Resident parameter bytes (the LRU budget currency)."""
        return sum(p.data.nbytes for p in self.model.parameters())

    @property
    def window(self) -> int:
        return int(self.config.get("window", 15))

    @property
    def num_features(self) -> int:
        return int(self.config.get("num_features", 4))


def infer_rtgcn_architecture(model_state: Dict[str, np.ndarray]
                             ) -> Dict[str, Any]:
    """Recover RTGCN constructor arguments from parameter shapes.

    ``TrainConfig`` does not record architecture knobs like
    ``relational_filters``, so reconstruction reads them off the weights:
    the scorer input width is the filter count, the first temporal
    filter's last axis is the kernel size, and the layer index space
    gives the depth.  Works for any checkpoint produced by the unified
    ``state_dict()`` contract.
    """
    layers = set()
    for key in model_state:
        if key.startswith("layer") and "." in key:
            layers.add(int(key.split(".", 1)[0][len("layer"):]))
    if not layers or "scorer.weight" not in model_state:
        raise RegistryError(
            "state dict does not look like an RTGCN (no layerN.*/scorer "
            "entries); only RT-GCN checkpoints are servable today")
    num_layers = max(layers) + 1
    use_relational = any(k.startswith("layer0.relational.")
                         for k in model_state)
    use_temporal = any(k.startswith("layer0.temporal.")
                       for k in model_state)
    arch: Dict[str, Any] = {
        "num_layers": num_layers,
        "use_relational": use_relational,
        "use_temporal": use_temporal,
        "relational_filters": int(model_state["scorer.weight"].shape[1]),
    }
    if use_relational:
        arch["num_features"] = int(
            model_state["layer0.relational.conv.weight"].shape[1])
    if use_temporal:
        conv1 = model_state["layer0.temporal.block.conv1.weight_v"]
        arch["temporal_kernel"] = int(conv1.shape[-1])
        if not use_relational:
            arch["num_features"] = int(conv1.shape[1])
    return arch


def resolve_strategy(checkpoint: TrainingCheckpoint,
                     model_name: Optional[str] = None) -> "tuple[str, str]":
    """``(model_name, strategy)`` for a checkpointed RTGCN.

    Preference order: explicit ``model_name`` argument, then the
    ``metadata["model"]`` the CLI stamps at save time — both resolved
    through the baseline registry so the mapping is never hand-kept here.
    A checkpoint with no strategy parameters is unambiguously ``uniform``;
    otherwise an unnamed checkpoint is an error (weight- and
    time-strategy parameters are shape-identical, guessing could serve
    wrong scores).
    """
    from ..baselines import rtgcn_strategies

    strategies = rtgcn_strategies()
    name = model_name or checkpoint.metadata.get("model")
    if name is not None:
        if name not in strategies:
            raise RegistryError(
                f"model {name!r} is not a servable RT-GCN variant; "
                f"servable: {sorted(strategies)}")
        return name, strategies[name]
    has_strategy_params = any(".strategy." in key
                              for key in checkpoint.model_state)
    if not has_strategy_params:
        uniform = [n for n, s in strategies.items() if s == "uniform"]
        return uniform[0], "uniform"
    raise RegistryError(
        "checkpoint does not record which RT-GCN variant it is (weight- "
        "and time-strategy parameters have identical shapes); pass the "
        "model name explicitly (CLI: --model) or re-save the checkpoint "
        "with `repro.cli train --checkpoint`, which stamps it")


def build_servable(path: Union[str, Path], version: str,
                   model_name: Optional[str] = None,
                   market: Optional[str] = None,
                   dataset: Optional[StockDataset] = None,
                   seed: Optional[int] = None) -> ServableModel:
    """Reconstruct one checkpoint archive into a :class:`ServableModel`."""
    path = Path(path)
    try:
        checkpoint = load_archive(path)
    except CheckpointError as exc:
        raise RegistryError(f"version {version!r} is unusable: {exc}") \
            from exc
    config = dict(checkpoint.config)
    name, strategy = resolve_strategy(checkpoint, model_name)
    market = market or checkpoint.metadata.get("market")
    if dataset is None:
        if market is None:
            raise RegistryError(
                f"checkpoint {path} does not record its market and no "
                "override was given; pass market= (CLI: --market) so the "
                "relation graph can be rebuilt")
        dataset = load_market(
            market, seed=int(seed if seed is not None
                             else config.get("seed", 0)))
    arch = infer_rtgcn_architecture(checkpoint.model_state)
    num_features = arch.pop("num_features",
                            int(config.get("num_features", 4)))
    config.setdefault("num_features", num_features)
    graph_mode = str(config.get("graph_mode", "auto"))
    model = RTGCN(dataset.relations, num_features=num_features,
                  strategy=strategy,
                  rng=np.random.default_rng(int(config.get("seed", 0))),
                  **arch)
    try:
        model.load_state_dict(checkpoint.model_state)
    except (KeyError, ValueError) as exc:
        raise RegistryError(
            f"version {version!r} does not fit the reconstructed "
            f"architecture ({exc}); the archive may have been produced "
            "by an incompatible build") from exc
    model.eval()
    meta = {"model_class": checkpoint.model_class,
            "format_version": checkpoint.format_version,
            "cursor": dict(checkpoint.cursor),
            "user": dict(checkpoint.metadata)}
    return ServableModel(version=version, path=path, model=model,
                         dataset=dataset, model_name=name,
                         strategy=strategy, graph_mode=graph_mode,
                         config=config, meta=meta)


class ModelRegistry:
    """Versioned load/warm/evict over one directory of ``.npz`` archives.

    Parameters
    ----------
    directory:
        Where the archives live (a training ``--checkpoint-dir`` or any
        folder of ``repro.ckpt`` files).
    memory_budget_bytes:
        Optional cap on resident parameter bytes; loading past it evicts
        least-recently-used versions (the newest load is always kept,
        even alone over budget).
    model, market, seed:
        Defaults for archives whose metadata does not record the model
        name / market (e.g. mid-training checkpoints written by
        ``CheckpointCallback``).
    """

    def __init__(self, directory: Union[str, Path],
                 memory_budget_bytes: Optional[int] = None,
                 model: Optional[str] = None,
                 market: Optional[str] = None,
                 seed: Optional[int] = None):
        from ._deprecation import guard_legacy
        guard_legacy("ModelRegistry")
        self.directory = Path(directory)
        self.memory_budget_bytes = memory_budget_bytes
        self.default_model = model
        self.default_market = market
        self.default_seed = seed
        self._lock = threading.RLock()
        self._loaded: "OrderedDict[str, ServableModel]" = OrderedDict()
        self._datasets: Dict[Any, StockDataset] = {}
        self.loads = 0
        self.hits = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def discover(self) -> List[str]:
        """Sorted version names (archive stems) present on disk."""
        if not self.directory.exists():
            return []
        return sorted(p.stem for p in self.directory.glob("*.npz")
                      if not p.name.startswith("."))

    def path_of(self, version: str) -> Path:
        path = self.directory / f"{version}.npz"
        if not path.exists():
            available = self.discover()
            raise RegistryError(
                f"version {version!r} not found in {self.directory}; "
                f"available: {available or '(none)'}")
        return path

    def default_version(self) -> str:
        """``best`` when present, else the newest periodic checkpoint.

        Periodic checkpoints order by their ``(epoch, batch)`` encoding;
        anything else falls back to lexicographically-last, which is
        stable for timestamped exports.
        """
        versions = self.discover()
        if not versions:
            raise RegistryError(
                f"no model archives (*.npz) in {self.directory}; train "
                "with --checkpoint/--checkpoint-dir first")
        if "best" in versions:
            return "best"
        periodic = [v for v in versions
                    if _CKPT_PATTERN.match(f"{v}.npz")]
        if periodic:
            return max(periodic, key=lambda v: tuple(
                int(g) for g in _CKPT_PATTERN.match(f"{v}.npz").groups()))
        return versions[-1]

    def fingerprint(self, version: Optional[str] = None
                    ) -> Optional["tuple[str, int, int]"]:
        """``(version, mtime_ns, size)`` of a version's archive, or None.

        The cheap change-detection key the cluster's hot-swap watcher
        polls: a checkpoint promotion rewrites the archive, so either the
        mtime or the size moves.  ``version=None`` fingerprints whatever
        :meth:`default_version` currently resolves to (so a *newly
        appearing* ``best`` is also a change).  Returns ``None`` when the
        directory holds no archives yet — the watcher just keeps polling.
        """
        try:
            if version is None:
                version = self.default_version()
            stat = self.path_of(version).stat()
        except (RegistryError, OSError):
            return None
        return (version, stat.st_mtime_ns, stat.st_size)

    def describe(self, version: str) -> Dict[str, Any]:
        """Checksum-verified metadata of one archive (no model build)."""
        path = self.path_of(version)
        try:
            meta = verify_archive(path)
        except CheckpointError as exc:
            raise RegistryError(f"version {version!r} failed "
                                f"verification: {exc}") from exc
        meta["version"] = version
        meta["bytes"] = path.stat().st_size
        return meta

    # ------------------------------------------------------------------
    # load / warm / evict
    # ------------------------------------------------------------------
    def load(self, version: Optional[str] = None) -> ServableModel:
        """The servable model for ``version`` (default: best/newest).

        Cache hit refreshes LRU order; a miss verifies + reconstructs the
        archive and may evict older versions past the byte budget.
        """
        with self._lock:
            if version is None:
                version = self.default_version()
            if version in self._loaded:
                self._loaded.move_to_end(version)
                self.hits += 1
                return self._loaded[version]
            path = self.path_of(version)
            servable = build_servable(
                path, version, model_name=self.default_model,
                market=self.default_market, dataset=None,
                seed=self.default_seed)
            # Share one dataset object across versions of the same market
            # (they are deterministic in (market, seed), and the relation
            # graph is the expensive part).
            ds_key = (servable.dataset.market,
                      int(servable.config.get("seed", 0)))
            if ds_key in self._datasets:
                servable.dataset = self._datasets[ds_key]
            else:
                self._datasets[ds_key] = servable.dataset
            self._loaded[version] = servable
            self.loads += 1
            self._enforce_budget(keep=version)
            return servable

    def warm(self, versions: Optional[List[str]] = None) -> List[str]:
        """Pre-fault versions into memory; returns what is now loaded."""
        for version in (versions if versions is not None
                        else [self.default_version()]):
            self.load(version)
        return self.loaded_versions()

    def evict(self, version: Optional[str] = None) -> bool:
        """Drop one loaded version (default: least recently used)."""
        with self._lock:
            if not self._loaded:
                return False
            if version is None:
                self._loaded.popitem(last=False)
            elif version in self._loaded:
                del self._loaded[version]
            else:
                return False
            self.evictions += 1
            return True

    def _enforce_budget(self, keep: str) -> None:
        if self.memory_budget_bytes is None:
            return
        while (len(self._loaded) > 1
               and sum(s.nbytes for s in self._loaded.values())
               > self.memory_budget_bytes):
            oldest = next(iter(self._loaded))
            if oldest == keep:
                break
            del self._loaded[oldest]
            self.evictions += 1

    # ------------------------------------------------------------------
    def loaded_versions(self) -> List[str]:
        with self._lock:
            return list(self._loaded)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "directory": str(self.directory),
                "available": self.discover(),
                "loaded": list(self._loaded),
                "resident_bytes": sum(s.nbytes
                                      for s in self._loaded.values()),
                "memory_budget_bytes": self.memory_budget_bytes,
                "loads": self.loads,
                "hits": self.hits,
                "evictions": self.evictions,
            }
