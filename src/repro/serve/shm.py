"""Shared-memory model weights with generation-tagged hot swap.

The cluster serving tier keeps exactly one copy of the model weights in
RAM regardless of worker count: the front-end publishes every parameter
array into one ``multiprocessing.shared_memory`` segment and the forked
inference workers map their model parameters directly onto that segment
(:func:`adopt_views` — a NumPy view over the shared buffer, no copy).

The segment layout, zero-copy views, view adoption, and the seqlock'd
control slot are generic (the data-parallel trainer of :mod:`repro.dist`
uses the same primitives for its live parameter store) and live in
:mod:`repro.shm`; this module re-exports them and adds the *serving*
generation lifecycle:

- Each published state dict becomes its own immutable segment named
  ``<base>-g<N>`` (a self-describing layout: JSON header + 64-byte
  aligned arrays).  Segments are never mutated after publish, so a
  worker mid-forward can keep reading generation ``N`` while generation
  ``N+1`` already exists.
- A tiny fixed control segment ``<base>-ctl`` carries the *current*
  generation number behind a seqlock (write the sequence odd, write the
  payload, write the sequence even; readers retry on a torn read).
  Workers check it between requests — in-flight requests finish on the
  old weights, the next request sees the new ones.
- :class:`SharedWeightStore` (front-end side) retires old generations
  two behind the head: POSIX keeps an unlinked segment alive until the
  last mapping closes, so a worker that has not yet swapped keeps
  working while the name disappears for newcomers.

Everything here is torn down explicitly (``close``/``unlink``); the
forked workers share the parent's ``resource_tracker``, so a crashed
front-end still gets its segments reaped by the tracker.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..shm import (GenerationControl, SharedModelState, ShmUnavailableError,
                   adopt_views, attach_state, default_base_name,
                   publish_state, shm_available)

__all__ = ["ShmUnavailableError", "SharedModelState", "GenerationControl",
           "SharedWeightStore", "SharedWeightReader", "publish_state",
           "attach_state", "adopt_views", "shm_available"]


class SharedWeightStore:
    """Front-end owner of the control segment and the live generations.

    ``publish(state_dict, version)`` creates generation ``N+1``, flips
    the control slot, and unlinks everything more than ``keep``
    generations behind — the atomic hot-swap primitive the cluster's
    :class:`~repro.serve.cluster.ClusterServer` drives.
    """

    def __init__(self, base_name: Optional[str] = None, keep: int = 2):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.base_name = base_name or default_base_name()
        self.keep = int(keep)
        self.control = GenerationControl.create(f"{self.base_name}-ctl")
        self._generations: "Dict[int, SharedModelState]" = {}
        self._next_generation = 0

    def segment_name(self, generation: int) -> str:
        return f"{self.base_name}-g{int(generation)}"

    def publish(self, state: Dict[str, np.ndarray],
                version: str = "") -> SharedModelState:
        """Publish a new current generation; returns its shared state."""
        generation = self._next_generation
        published = publish_state(
            state, self.segment_name(generation),
            generation=generation, version=version)
        self._generations[generation] = published
        self._next_generation += 1
        self.control.publish(generation)
        self._retire(head=generation)
        return published

    def current_generation(self) -> int:
        return self.control.current()

    def _retire(self, head: int) -> None:
        for generation in sorted(self._generations):
            if generation <= head - self.keep:
                old = self._generations.pop(generation)
                old.unlink()
                old.close()

    def close(self, unlink: bool = True) -> None:
        """Tear down every mapping (and, by default, every name)."""
        for state in self._generations.values():
            if unlink:
                state.unlink()
            state.close()
        self._generations.clear()
        if unlink:
            self.control.unlink()
        self.control.close()


class SharedWeightReader:
    """Worker-side attachment: track the control slot, swap on change.

    :meth:`refresh` is the per-request check — O(one struct unpack) when
    nothing changed, one segment attach + view adoption when the
    front-end published a new generation.
    """

    def __init__(self, base_name: str):
        self.base_name = base_name
        self.control = GenerationControl.attach(f"{base_name}-ctl")
        self.state: Optional[SharedModelState] = None
        self._previous: Optional[SharedModelState] = None
        self.generation = -1

    def refresh(self) -> bool:
        """Attach the current generation if it changed; True on swap.

        The *previous* generation's mapping is kept open for one more
        swap: the caller re-points its model at the fresh views right
        after this returns, but until it does, in-flight reads of the
        old views must stay valid.  Closing lags one behind.
        """
        current = self.control.current()
        if current == self.generation and self.state is not None:
            return False
        fresh = attach_state(f"{self.base_name}-g{current}")
        if self._previous is not None:
            self._previous.close()
        old, self.state, self.generation = self.state, fresh, current
        self._previous = old
        return True

    @property
    def version(self) -> str:
        return self.state.version if self.state is not None else ""

    def views(self) -> Dict[str, np.ndarray]:
        if self.state is None:
            raise RuntimeError("refresh() has not attached a generation yet")
        return self.state.views()

    def close(self) -> None:
        for state in (self.state, self._previous):
            if state is not None:
                state.close()
        self.state = self._previous = None
        self.control.close()
