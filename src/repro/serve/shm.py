"""Shared-memory model weights with generation-tagged hot swap.

The cluster serving tier keeps exactly one copy of the model weights in
RAM regardless of worker count: the front-end publishes every parameter
array into one ``multiprocessing.shared_memory`` segment and the forked
inference workers map their model parameters directly onto that segment
(:func:`adopt_views` — a NumPy view over the shared buffer, no copy).

Hot swap works by *generations*:

- Each published state dict becomes its own immutable segment named
  ``<base>-g<N>`` (a self-describing layout: JSON header + 64-byte
  aligned arrays).  Segments are never mutated after publish, so a
  worker mid-forward can keep reading generation ``N`` while generation
  ``N+1`` already exists.
- A tiny fixed control segment ``<base>-ctl`` carries the *current*
  generation number behind a seqlock (write the sequence odd, write the
  payload, write the sequence even; readers retry on a torn read).
  Workers check it between requests — in-flight requests finish on the
  old weights, the next request sees the new ones.
- :class:`SharedWeightStore` (front-end side) retires old generations
  two behind the head: POSIX keeps an unlinked segment alive until the
  last mapping closes, so a worker that has not yet swapped keeps
  working while the name disappears for newcomers.

Everything here is torn down explicitly (``close``/``unlink``); the
forked workers share the parent's ``resource_tracker``, so a crashed
front-end still gets its segments reaped by the tracker.
"""

from __future__ import annotations

import json
import os
import secrets
import struct
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

try:                                     # gate: platforms without shm
    from multiprocessing import shared_memory as _shm
except ImportError:                      # pragma: no cover - exotic builds
    _shm = None

__all__ = ["ShmUnavailableError", "SharedModelState", "GenerationControl",
           "SharedWeightStore", "SharedWeightReader", "publish_state",
           "attach_state", "adopt_views", "shm_available"]

#: every array starts on a 64-byte boundary (cache line; keeps any dtype
#: aligned no matter what precedes it)
_ALIGN = 64
#: segment layout: 8-byte little-endian header length, JSON header, arrays
_LEN_FMT = "<Q"
_LEN_SIZE = struct.calcsize(_LEN_FMT)
#: control segment: seqlock counter + current generation, both uint64
_CTL_FMT = "<QQ"
_CTL_SIZE = struct.calcsize(_CTL_FMT)


class ShmUnavailableError(RuntimeError):
    """POSIX shared memory is not usable on this platform."""


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` is importable here."""
    return _shm is not None


def _require_shm():
    if _shm is None:
        raise ShmUnavailableError(
            "multiprocessing.shared_memory is unavailable on this "
            "platform; run the serving tier in threaded mode "
            "(ServeConfig(mode='threaded'))")
    return _shm


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def default_base_name() -> str:
    """A collision-resistant base name for one cluster's segments."""
    return f"repro-serve-{os.getpid()}-{secrets.token_hex(4)}"


class SharedModelState:
    """One generation of published weights: segment + parsed layout.

    Obtain via :func:`publish_state` (owner side) or
    :func:`attach_state` (reader side); the distinction only matters for
    :meth:`unlink`, which the owner calls exactly once per generation.
    """

    def __init__(self, shm, header: Dict[str, Any], owner: bool):
        self.shm = shm
        self.header = header
        self.owner = owner
        self.generation = int(header["generation"])
        self.version = str(header["version"])
        self._views: Optional[Dict[str, np.ndarray]] = None

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def nbytes(self) -> int:
        return self.shm.size

    def views(self) -> Dict[str, np.ndarray]:
        """Read-only zero-copy array views over the shared buffer.

        The returned arrays alias ``self.shm.buf``; they stay valid
        exactly as long as this object is kept alive and not closed.
        """
        if self._views is None:
            views = {}
            for entry in self.header["entries"]:
                dtype = np.dtype(entry["dtype"])
                shape = tuple(entry["shape"])
                count = int(np.prod(shape, dtype=np.int64)) if shape else 1
                view = np.frombuffer(self.shm.buf, dtype=dtype,
                                     count=count,
                                     offset=int(entry["offset"]))
                view = view.reshape(shape)
                view.flags.writeable = False
                views[entry["name"]] = view
            self._views = views
        return self._views

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copies of every array (for callers that must own the memory)."""
        return {name: np.array(view) for name, view in self.views().items()}

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        self._views = None
        try:
            self.shm.close()
        except (OSError, BufferError):      # pragma: no cover - best effort
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner only; mappings stay alive)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:           # pragma: no cover - already gone
            pass


def publish_state(state: Dict[str, np.ndarray], name: str, *,
                  generation: int = 0,
                  version: str = "",
                  extra: Optional[Dict[str, Any]] = None
                  ) -> SharedModelState:
    """Write a state dict into a new shared segment called ``name``.

    The segment is immutable by convention once this returns: hot swap
    publishes a *new* segment instead of mutating a live one.
    """
    shm_mod = _require_shm()
    entries: List[Dict[str, Any]] = []
    arrays: List[Tuple[np.ndarray, int]] = []
    # Two passes: the header must know every offset, but offsets depend
    # on the header length.  Fix the header length by first rendering it
    # with placeholder offsets of the same width (offsets are ints, so
    # render with the final values computed against a header whose size
    # is measured from a maximal-width draft).
    def render(entries_: List[Dict[str, Any]]) -> bytes:
        payload = {"magic": "repro-shm-v1", "generation": int(generation),
                   "version": str(version), "entries": entries_,
                   **(extra or {})}
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def contiguous(value) -> np.ndarray:
        array = np.asarray(value)
        # np.ascontiguousarray promotes 0-d to 1-d; 0-d is always
        # contiguous, so only reach for it when actually needed.
        return (array if array.flags.c_contiguous
                else np.ascontiguousarray(array))

    items = [(key, contiguous(value)) for key, value in state.items()]
    draft_entries = [{"name": key, "dtype": arr.dtype.str,
                      "shape": list(arr.shape), "offset": 2 ** 62}
                     for key, arr in items]
    header_len = len(render(draft_entries))
    data_start = _align(_LEN_SIZE + header_len)
    offset = data_start
    for (key, arr), entry in zip(items, draft_entries):
        entry["offset"] = offset
        arrays.append((arr, offset))
        offset = _align(offset + arr.nbytes)
        entries.append(entry)
    header_bytes = render(entries)
    # Offsets rendered shorter than the 2**62 placeholder leave the
    # header shorter than measured — pad with spaces (valid JSON suffix
    # whitespace) so data_start stays where the offsets say it is.
    header_bytes += b" " * (header_len - len(header_bytes))
    total = max(offset, data_start + 1)
    shm = shm_mod.SharedMemory(name=name, create=True, size=total)
    shm.buf[:_LEN_SIZE] = struct.pack(_LEN_FMT, header_len)
    shm.buf[_LEN_SIZE:_LEN_SIZE + header_len] = header_bytes
    for arr, off in arrays:
        dest = np.frombuffer(shm.buf, dtype=arr.dtype, count=arr.size,
                             offset=off).reshape(arr.shape)
        dest[...] = arr
    return SharedModelState(shm, json.loads(header_bytes), owner=True)


def attach_state(name: str) -> SharedModelState:
    """Map an existing published segment read-only (zero-copy)."""
    shm_mod = _require_shm()
    shm = shm_mod.SharedMemory(name=name, create=False)
    (header_len,) = struct.unpack_from(_LEN_FMT, shm.buf, 0)
    raw = bytes(shm.buf[_LEN_SIZE:_LEN_SIZE + header_len])
    header = json.loads(raw)
    if header.get("magic") != "repro-shm-v1":
        shm.close()
        raise ValueError(f"segment {name!r} is not a repro weight segment")
    return SharedModelState(shm, header, owner=False)


def adopt_views(model, views: Dict[str, np.ndarray]) -> None:
    """Point every parameter of ``model`` at the shared views (no copy).

    Unlike ``load_state_dict`` (which copies into the existing arrays),
    this swaps the parameter storage itself, so N workers share one
    physical copy of the weights.  The views are read-only; inference
    never writes parameters, and an accidental in-place update fails
    loudly instead of corrupting every sibling worker.
    """
    own = dict(model.named_parameters())
    missing = sorted(set(own) - set(views))
    if missing:
        raise KeyError(f"shared state lacks parameters: {missing}")
    # Validate everything before assigning anything: a mismatch found
    # halfway through must not leave the model half-swapped (the caller
    # keeps serving the old weights after catching the error).
    for name, param in own.items():
        view = views[name]
        if param.data.shape != view.shape:
            raise ValueError(
                f"shape mismatch adopting {name!r}: parameter is "
                f"{param.data.shape}, shared view is {view.shape}")
        if param.data.dtype != view.dtype:
            raise ValueError(
                f"dtype mismatch adopting {name!r}: parameter is "
                f"{param.data.dtype}, shared view is {view.dtype}")
    for name, param in own.items():
        param.data = views[name]
        param.grad = None


class GenerationControl:
    """The seqlock'd current-generation slot in the ``<base>-ctl`` segment.

    One writer (the front-end), many readers (the workers).  The write
    protocol makes the sequence odd, stores the generation, then makes
    the sequence even again; a reader that observes an odd or changing
    sequence simply retries, so a torn read can never surface.
    """

    def __init__(self, shm, owner: bool):
        self.shm = shm
        self.owner = owner

    @classmethod
    def create(cls, name: str) -> "GenerationControl":
        shm = _require_shm().SharedMemory(name=name, create=True,
                                          size=_CTL_SIZE)
        shm.buf[:_CTL_SIZE] = struct.pack(_CTL_FMT, 0, 0)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "GenerationControl":
        shm = _require_shm().SharedMemory(name=name, create=False)
        return cls(shm, owner=False)

    def publish(self, generation: int) -> None:
        """Store a new current generation (single-writer only)."""
        (seq, _) = struct.unpack_from(_CTL_FMT, self.shm.buf, 0)
        struct.pack_into("<Q", self.shm.buf, 0, seq + 1)      # odd: writing
        struct.pack_into("<Q", self.shm.buf, struct.calcsize("<Q"),
                         int(generation))
        struct.pack_into("<Q", self.shm.buf, 0, seq + 2)      # even: done
    def current(self) -> int:
        """The current generation (retries across in-progress writes)."""
        while True:
            seq1, generation = struct.unpack_from(_CTL_FMT, self.shm.buf, 0)
            if seq1 % 2:
                continue
            seq2, _ = struct.unpack_from(_CTL_FMT, self.shm.buf, 0)
            if seq1 == seq2:
                return int(generation)

    def close(self) -> None:
        try:
            self.shm.close()
        except (OSError, BufferError):      # pragma: no cover - best effort
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:           # pragma: no cover - already gone
            pass


class SharedWeightStore:
    """Front-end owner of the control segment and the live generations.

    ``publish(state_dict, version)`` creates generation ``N+1``, flips
    the control slot, and unlinks everything more than ``keep``
    generations behind — the atomic hot-swap primitive the cluster's
    :class:`~repro.serve.cluster.ClusterServer` drives.
    """

    def __init__(self, base_name: Optional[str] = None, keep: int = 2):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.base_name = base_name or default_base_name()
        self.keep = int(keep)
        self.control = GenerationControl.create(f"{self.base_name}-ctl")
        self._generations: "Dict[int, SharedModelState]" = {}
        self._next_generation = 0

    def segment_name(self, generation: int) -> str:
        return f"{self.base_name}-g{int(generation)}"

    def publish(self, state: Dict[str, np.ndarray],
                version: str = "") -> SharedModelState:
        """Publish a new current generation; returns its shared state."""
        generation = self._next_generation
        published = publish_state(
            state, self.segment_name(generation),
            generation=generation, version=version)
        self._generations[generation] = published
        self._next_generation += 1
        self.control.publish(generation)
        self._retire(head=generation)
        return published

    def current_generation(self) -> int:
        return self.control.current()

    def _retire(self, head: int) -> None:
        for generation in sorted(self._generations):
            if generation <= head - self.keep:
                old = self._generations.pop(generation)
                old.unlink()
                old.close()

    def close(self, unlink: bool = True) -> None:
        """Tear down every mapping (and, by default, every name)."""
        for state in self._generations.values():
            if unlink:
                state.unlink()
            state.close()
        self._generations.clear()
        if unlink:
            self.control.unlink()
        self.control.close()


class SharedWeightReader:
    """Worker-side attachment: track the control slot, swap on change.

    :meth:`refresh` is the per-request check — O(one struct unpack) when
    nothing changed, one segment attach + view adoption when the
    front-end published a new generation.
    """

    def __init__(self, base_name: str):
        self.base_name = base_name
        self.control = GenerationControl.attach(f"{base_name}-ctl")
        self.state: Optional[SharedModelState] = None
        self._previous: Optional[SharedModelState] = None
        self.generation = -1

    def refresh(self) -> bool:
        """Attach the current generation if it changed; True on swap.

        The *previous* generation's mapping is kept open for one more
        swap: the caller re-points its model at the fresh views right
        after this returns, but until it does, in-flight reads of the
        old views must stay valid.  Closing lags one behind.
        """
        current = self.control.current()
        if current == self.generation and self.state is not None:
            return False
        fresh = attach_state(f"{self.base_name}-g{current}")
        if self._previous is not None:
            self._previous.close()
        old, self.state, self.generation = self.state, fresh, current
        self._previous = old
        return True

    @property
    def version(self) -> str:
        return self.state.version if self.state is not None else ""

    def views(self) -> Dict[str, np.ndarray]:
        if self.state is None:
            raise RuntimeError("refresh() has not attached a generation yet")
        return self.state.views()

    def close(self) -> None:
        for state in (self.state, self._previous):
            if state is not None:
                state.close()
        self.state = self._previous = None
        self.control.close()
