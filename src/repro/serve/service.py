"""RankingService — the serving facade clients actually call.

Ties the registry, engines, and micro-batcher together behind four
ranking operations:

- :meth:`~RankingService.predict_scores` — per-symbol scores for a day;
- :meth:`~RankingService.top_k` — the k best-ranked symbols;
- :meth:`~RankingService.rank_universe` — the full ranked universe;
- :meth:`~RankingService.rank_delta` — day-over-day rank movement.

All four funnel through one micro-batched score path keyed by
``(version, day)``, so concurrent requests for the same ranking share a
single forward pass.  Each request carries a deadline; on timeout the
service degrades to the **last successfully served ranking** for that
key (marked ``"stale": true``) rather than failing the client — a
ranking a few seconds old is far more useful to a trading client than an
error page.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ._deprecation import sanctioned, guard_legacy
from .batcher import MicroBatcher
from .engine import InferenceEngine
from .registry import ModelRegistry, RegistryError
from .telemetry import ServingTelemetry

ScoreKey = Tuple[str, int]               # (version, day)


class ServiceTimeoutError(TimeoutError):
    """A request missed its deadline and no fallback ranking existed."""


class RankingService:
    """Micro-batched ranking inference over a checkpoint directory.

    Parameters
    ----------
    registry:
        A :class:`ModelRegistry`, or a checkpoint directory path to wrap
        in one.
    max_batch / max_wait_ms / workers:
        Micro-batching knobs, passed to :class:`MicroBatcher`.
        ``max_wait_ms=0, max_batch=1`` is the unbatched baseline.
    default_timeout:
        Per-request deadline in seconds; ``predict_scores(timeout=...)``
        overrides per call.
    """

    def __init__(self, registry: Union[ModelRegistry, str, Path],
                 max_batch: int = 32, max_wait_ms: float = 5.0,
                 workers: int = 1, default_timeout: float = 10.0,
                 telemetry: Optional[ServingTelemetry] = None,
                 straggler_poll_ms: Optional[float] = None,
                 idle_poll_ms: Optional[float] = None,
                 tick_budget_ms: Optional[float] = None,
                 stream_alpha: Optional[float] = None):
        guard_legacy("RankingService")
        with sanctioned():
            if not isinstance(registry, ModelRegistry):
                registry = ModelRegistry(registry)
            self.registry = registry
            self.telemetry = telemetry or ServingTelemetry()
            self.default_timeout = float(default_timeout)
            self._engines: Dict[str, InferenceEngine] = {}
            self._engines_lock = threading.Lock()
            self._last_served: Dict[ScoreKey, np.ndarray] = {}
            self._last_served_lock = threading.Lock()
            self._batcher = MicroBatcher(self._compute_scores,
                                         max_batch=max_batch,
                                         max_wait_ms=max_wait_ms,
                                         workers=workers,
                                         telemetry=self.telemetry,
                                         straggler_poll_ms=straggler_poll_ms,
                                         idle_poll_ms=idle_poll_ms)
            from .stream import (DEFAULT_STREAM_ALPHA,
                                 DEFAULT_TICK_BUDGET_MS, StreamIngestor)
            self._ingestor = StreamIngestor(
                self,
                tick_budget_ms=(DEFAULT_TICK_BUDGET_MS
                                if tick_budget_ms is None
                                else tick_budget_ms),
                alpha=(DEFAULT_STREAM_ALPHA if stream_alpha is None
                       else stream_alpha))
            self._closed = False

    # ------------------------------------------------------------------
    # engine / batch plumbing
    # ------------------------------------------------------------------
    def engine(self, version: Optional[str] = None) -> InferenceEngine:
        """The (cached) engine for a version; loads the model on miss."""
        if version is None:
            version = self.registry.default_version()
        with self._engines_lock:
            engine = self._engines.get(version)
            if engine is None:
                with sanctioned():
                    engine = InferenceEngine(self.registry.load(version))
                self._engines[version] = engine
            return engine

    def reload(self, version: Optional[str] = None) -> Dict[str, Any]:
        """Drop cached engines so the next request reloads from disk.

        With ``version=None`` every cached engine is evicted — the hot
        path a checkpoint promotion takes.  In-flight requests keep the
        engine object they already resolved; only *new* requests see the
        reloaded weights.  Returns ``{"reloaded": [...versions...]}``.
        """
        self.registry.discover()
        with self._engines_lock:
            if version is None:
                dropped = sorted(self._engines)
                self._engines.clear()
            else:
                dropped = [version] if version in self._engines else []
                self._engines.pop(version, None)
        with self._last_served_lock:
            if version is None:
                self._last_served.clear()
            else:
                for key in [k for k in self._last_served if k[0] == version]:
                    del self._last_served[key]
        return {"reloaded": dropped,
                "default_version": self.registry.default_version()}

    def _compute_scores(self, key: ScoreKey) -> np.ndarray:
        version, day = key
        scores = self.engine(version).scores(day)
        with self._last_served_lock:
            self._last_served[key] = scores
        return scores

    def _scores_for(self, op: str, version: Optional[str],
                    day: Optional[int], timeout: Optional[float]
                    ) -> Tuple[np.ndarray, InferenceEngine, int, bool]:
        """``(scores, engine, day, stale)`` via the batched path."""
        if self._closed:
            raise RuntimeError("RankingService is closed")
        start = time.perf_counter()
        engine = self.engine(version)           # raises RegistryError early
        day = engine.resolve_day(day)
        key = (engine.servable.version, day)
        depth = self._batcher.depth()
        future = self._batcher.submit(key)
        budget = self.default_timeout if timeout is None else float(timeout)
        try:
            scores = future.result(timeout=budget)
            stale = False
        except FutureTimeoutError:
            future.cancel()
            with self._last_served_lock:
                fallback = self._last_served.get(key)
            if fallback is None:
                self.telemetry.record_error(op)
                raise ServiceTimeoutError(
                    f"no ranking for version={key[0]!r} day={day} within "
                    f"{budget:.3f}s and nothing previously served to fall "
                    "back on") from None
            scores, stale = fallback, True
        except BaseException:
            self.telemetry.record_error(op)
            raise
        self.telemetry.record_request(op, time.perf_counter() - start,
                                      queue_depth=depth, fallback=stale)
        return scores, engine, day, stale

    # ------------------------------------------------------------------
    # ranking API
    # ------------------------------------------------------------------
    def predict_scores(self, version: Optional[str] = None,
                       day: Optional[int] = None,
                       timeout: Optional[float] = None) -> Dict[str, Any]:
        """Raw per-symbol scores at ``day`` (default: latest day)."""
        scores, engine, day, stale = self._scores_for(
            "predict_scores", version, day, timeout)
        symbols = engine.dataset.universe.symbols
        return self._envelope(engine, day, stale, scores={
            symbol: float(score)
            for symbol, score in zip(symbols, scores)})

    def top_k(self, k: int = 10, version: Optional[str] = None,
              day: Optional[int] = None,
              timeout: Optional[float] = None) -> Dict[str, Any]:
        """The ``k`` highest-scored symbols, best first."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        scores, engine, day, stale = self._scores_for(
            "top_k", version, day, timeout)
        symbols = engine.dataset.universe.symbols
        k = min(int(k), len(symbols))
        order = np.argsort(-scores, kind="stable")[:k]
        return self._envelope(engine, day, stale, k=k, top_k=[
            {"rank": rank + 1, "symbol": symbols[i],
             "score": float(scores[i])}
            for rank, i in enumerate(order)])

    def rank_universe(self, version: Optional[str] = None,
                      day: Optional[int] = None,
                      timeout: Optional[float] = None) -> Dict[str, Any]:
        """Every symbol with its rank (1 = best) and score."""
        scores, engine, day, stale = self._scores_for(
            "rank_universe", version, day, timeout)
        symbols = engine.dataset.universe.symbols
        order = np.argsort(-scores, kind="stable")
        ranks = np.empty(len(symbols), dtype=int)
        ranks[order] = np.arange(1, len(symbols) + 1)
        return self._envelope(engine, day, stale, ranking=[
            {"rank": int(ranks[i]), "symbol": symbols[i],
             "score": float(scores[i])}
            for i in order])

    def rank_delta(self, version: Optional[str] = None,
                   day: Optional[int] = None,
                   timeout: Optional[float] = None) -> Dict[str, Any]:
        """Day-over-day rank movement: today's rank vs the prior day's.

        ``delta > 0`` means the symbol climbed the ranking since
        yesterday.  The two days' scores go through the same batched
        path, so a burst of delta requests still coalesces.
        """
        engine = self.engine(version)
        today = engine.resolve_day(day)
        prior = today - 1
        if prior < engine.servable.window - 1:
            raise ValueError(
                f"day {today} has no prior servable day to diff against")
        scores, engine, today, stale_t = self._scores_for(
            "rank_delta", version, today, timeout)
        prev_scores, _, _, stale_p = self._scores_for(
            "rank_delta", version, prior, timeout)
        symbols = engine.dataset.universe.symbols

        def ranks_of(values: np.ndarray) -> np.ndarray:
            order = np.argsort(-values, kind="stable")
            ranks = np.empty(len(values), dtype=int)
            ranks[order] = np.arange(1, len(values) + 1)
            return ranks

        today_ranks, prior_ranks = ranks_of(scores), ranks_of(prev_scores)
        deltas = prior_ranks - today_ranks
        order = np.argsort(today_ranks, kind="stable")
        return self._envelope(engine, today, stale_t or stale_p,
                              prior_day=prior, deltas=[
            {"symbol": symbols[i], "rank": int(today_ranks[i]),
             "prior_rank": int(prior_ranks[i]), "delta": int(deltas[i]),
             "score": float(scores[i])}
            for i in order])

    # ------------------------------------------------------------------
    # streaming ingest
    # ------------------------------------------------------------------
    def ingest(self, body: Optional[Dict[str, Any]] = None,
               version: Optional[str] = None) -> Dict[str, Any]:
        """Apply one streaming day's event batch and re-rank.

        ``body`` is a :meth:`repro.data.DayEvents.to_payload` dict (or
        any dict with a ``deltas`` list of ``[i, j, weight]`` edits).
        The graph delta always lands; the fresh ranking is subject to
        the ingestor's tick budget — see
        :class:`~repro.serve.stream.StreamIngestor`.
        """
        if self._closed:
            raise RuntimeError("RankingService is closed")
        return self._ingestor.ingest(body or {}, version=version)

    # ------------------------------------------------------------------
    def _envelope(self, engine: InferenceEngine, day: int, stale: bool,
                  **payload: Any) -> Dict[str, Any]:
        return {"version": engine.servable.version,
                "model": engine.servable.model_name,
                "market": engine.dataset.market,
                "day": day, "stale": stale, **payload}

    def stats(self) -> Dict[str, Any]:
        """Telemetry snapshot plus registry/engine/queue state."""
        snap = self.telemetry.snapshot()
        snap["registry"] = self.registry.stats()
        with self._engines_lock:
            snap["engines"] = [e.stats() for e in self._engines.values()]
        snap["queue"] = {"depth": self._batcher.depth()}
        snap["stream"] = self._ingestor.stats()
        return snap

    def close(self) -> None:
        """Drain the batcher and stop its workers; idempotent."""
        if not self._closed:
            self._closed = True
            self._batcher.close()

    def __enter__(self) -> "RankingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["RankingService", "ServiceTimeoutError", "RegistryError"]
