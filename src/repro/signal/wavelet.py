"""Haar wavelet transforms and denoising.

The paper's LSTM baseline [16] (Bao, Yue & Rao, 2017) denoises price
series with a wavelet transform before encoding; the related-work MTDNN
[2] builds multi-scale features the same way.  This module provides the
Haar discrete wavelet transform, its inverse, multilevel decomposition,
and soft-threshold denoising — enough to reproduce those front-ends from
scratch.

Conventions: transforms operate on the last axis; odd-length signals are
extended by repeating the final sample (symmetric-ish padding) and the
inverse trims back to the original length.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

_SQRT2 = np.sqrt(2.0)


def haar_dwt(signal: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """One-level Haar DWT: returns (approximation, detail) coefficients.

    For input length ``n`` both outputs have length ``ceil(n / 2)``.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.shape[-1] < 2:
        raise ValueError("signal must have at least 2 samples")
    if signal.shape[-1] % 2 == 1:
        signal = np.concatenate([signal, signal[..., -1:]], axis=-1)
    even = signal[..., 0::2]
    odd = signal[..., 1::2]
    approx = (even + odd) / _SQRT2
    detail = (even - odd) / _SQRT2
    return approx, detail


def haar_idwt(approx: np.ndarray, detail: np.ndarray,
              length: int = 0) -> np.ndarray:
    """Inverse of :func:`haar_dwt`; ``length`` trims padding if given."""
    approx = np.asarray(approx, dtype=np.float64)
    detail = np.asarray(detail, dtype=np.float64)
    if approx.shape != detail.shape:
        raise ValueError(f"approx {approx.shape} and detail {detail.shape} "
                         "must match")
    even = (approx + detail) / _SQRT2
    odd = (approx - detail) / _SQRT2
    out = np.empty(approx.shape[:-1] + (approx.shape[-1] * 2,))
    out[..., 0::2] = even
    out[..., 1::2] = odd
    if length:
        out = out[..., :length]
    return out


def wavedec(signal: np.ndarray, levels: int) -> List[np.ndarray]:
    """Multilevel decomposition: ``[approx_L, detail_L, ..., detail_1]``."""
    signal = np.asarray(signal, dtype=np.float64)
    if levels < 1:
        raise ValueError("levels must be >= 1")
    max_levels = int(np.floor(np.log2(max(signal.shape[-1], 1))))
    if levels > max_levels:
        raise ValueError(f"{levels} levels exceed the maximum "
                         f"{max_levels} for length {signal.shape[-1]}")
    details: List[np.ndarray] = []
    current = signal
    for _ in range(levels):
        current, detail = haar_dwt(current)
        details.append(detail)
    return [current] + details[::-1]


def waverec(coefficients: List[np.ndarray], length: int) -> np.ndarray:
    """Reconstruct a signal of ``length`` from :func:`wavedec` output."""
    if len(coefficients) < 2:
        raise ValueError("need at least [approx, detail]")
    lengths = [length]
    for _ in range(len(coefficients) - 2):
        lengths.append((lengths[-1] + 1) // 2)
    current = coefficients[0]
    for detail, target in zip(coefficients[1:], lengths[::-1]):
        current = haar_idwt(current, detail, length=target)
    return current


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Shrink coefficients toward zero: ``sign(v)·max(|v|−t, 0)``."""
    values = np.asarray(values, dtype=np.float64)
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


def denoise(signal: np.ndarray, levels: int = 2,
            threshold_scale: float = 1.0) -> np.ndarray:
    """Wavelet denoising à la Bao et al. [16].

    Detail coefficients are soft-thresholded with the universal threshold
    ``σ √(2 ln n)`` where σ is the robust (MAD) noise estimate from the
    finest-level details; the approximation band is kept intact.
    """
    signal = np.asarray(signal, dtype=np.float64)
    n = signal.shape[-1]
    coefficients = wavedec(signal, levels)
    finest = coefficients[-1]
    sigma = np.median(np.abs(finest), axis=-1, keepdims=True) / 0.6745
    threshold = threshold_scale * sigma * np.sqrt(2.0 * np.log(max(n, 2)))
    denoised = [coefficients[0]]
    for detail in coefficients[1:]:
        denoised.append(soft_threshold(detail, threshold))
    return waverec(denoised, n)


def multiscale_features(signal: np.ndarray, levels: int = 2
                        ) -> List[np.ndarray]:
    """Approximation bands at every scale (the MTDNN-style pyramid).

    Returns ``[signal, approx_1, approx_2, ...]`` — each subsequent array
    halves the temporal resolution.
    """
    signal = np.asarray(signal, dtype=np.float64)
    outputs = [signal]
    current = signal
    for _ in range(levels):
        current, _ = haar_dwt(current)
        outputs.append(current)
    return outputs
