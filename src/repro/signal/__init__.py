"""Signal processing substrate: Haar wavelets and denoising."""

from .wavelet import (denoise, haar_dwt, haar_idwt, multiscale_features,
                      soft_threshold, wavedec, waverec)

__all__ = [
    "haar_dwt", "haar_idwt", "wavedec", "waverec", "soft_threshold",
    "denoise", "multiscale_features",
]
