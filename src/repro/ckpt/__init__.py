"""repro.ckpt — fault-tolerant training state.

The paper's protocol averages fifteen full training runs per model per
market (§V-B-4); on real universes that is hours of compute, and a crash
at run 14 must not restart run 0.  This package makes every long-running
workload interruptible and exactly resumable:

- :class:`TrainingCheckpoint` — versioned snapshot of model parameters,
  full optimizer state (Adam moments + step count), RNG streams, the
  epoch/batch cursor, early-stopping best state, and the ``TrainConfig``;
- :func:`save` / :func:`load` — atomic (tmp-file + fsync + rename),
  SHA-256-checksummed ``.npz`` archives, format version 2 with
  backward-compatible version-1 reads;
- :class:`CheckpointManager` — keep-last-k-plus-best retention and
  corrupt-file fallback (:meth:`~CheckpointManager.latest_valid`);
- :class:`CheckpointCallback` — periodic checkpointing on the
  :class:`~repro.core.callbacks.TrainerCallback` event API;
- :mod:`repro.ckpt.faults` — crash/corruption injection so recovery is
  tested, not assumed.

Resuming with ``Trainer.fit(resume_from=...)`` is bitwise-identical to
the uninterrupted run: see ``docs/checkpointing.md``.
"""

from .callback import CheckpointCallback
from .checkpoint import (FORMAT_VERSION, CheckpointError,
                         TrainingCheckpoint, atomic_write_bytes, load,
                         read_archive, restore_rng, rng_state, save,
                         verify_archive, write_archive)
from .faults import (CRASH_EXIT_CODE, CrashAfterBatches, SimulatedCrash,
                     corrupt_archive)
from .manager import CheckpointManager

__all__ = [
    "TrainingCheckpoint", "CheckpointError", "FORMAT_VERSION",
    "save", "load", "read_archive", "write_archive", "verify_archive",
    "atomic_write_bytes", "rng_state", "restore_rng",
    "CheckpointManager", "CheckpointCallback",
    "CrashAfterBatches", "SimulatedCrash", "corrupt_archive",
    "CRASH_EXIT_CODE",
]
