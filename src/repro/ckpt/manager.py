"""Checkpoint directory management: naming, retention, recovery.

A :class:`CheckpointManager` owns one directory of training checkpoints:

- periodic checkpoints are named ``ckpt-e<epoch>-b<batch>.npz`` and kept
  under a *keep-last-k* policy (oldest deleted first);
- the early-stopping best state lives in ``best.npz`` and is exempt from
  retention;
- :meth:`latest_valid` walks checkpoints newest-to-oldest, skipping any
  that fail checksum verification, so a crash that corrupts the newest
  file still recovers from the last good one.

Every write goes through the atomic, checksummed writer of
:mod:`repro.ckpt.checkpoint` and is timed under an ``obs`` ``checkpoint``
span so profiles attribute checkpoint I/O explicitly.
"""

from __future__ import annotations

import re
import time
from pathlib import Path
from typing import List, Optional, Union

from ..obs.tracer import trace
from .checkpoint import (CheckpointError, TrainingCheckpoint,
                         load as load_file, save as save_file)

_CKPT_PATTERN = re.compile(r"^ckpt-e(\d+)-b(\d+)\.npz$")
BEST_NAME = "best.npz"


class CheckpointManager:
    """Saves/loads :class:`TrainingCheckpoint` files under one directory.

    Parameters
    ----------
    directory:
        Created on first save if missing.
    keep_last:
        Periodic checkpoints retained (the best checkpoint is kept in
        addition to these).  Must be >= 1.
    """

    def __init__(self, directory: Union[str, Path], keep_last: int = 3):
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.keep_last = keep_last
        #: total bytes and seconds spent writing, for telemetry
        self.bytes_written = 0
        self.write_seconds = 0.0
        self.saves = 0

    # ------------------------------------------------------------------
    def path_for(self, epoch: int, batch_index: int) -> Path:
        return self.directory / f"ckpt-e{epoch:04d}-b{batch_index:06d}.npz"

    @property
    def best_path(self) -> Path:
        return self.directory / BEST_NAME

    def checkpoints(self) -> List[Path]:
        """Periodic checkpoints, oldest first (excludes ``best.npz``)."""
        if not self.directory.exists():
            return []
        found = [p for p in self.directory.iterdir()
                 if _CKPT_PATTERN.match(p.name)]
        return sorted(found, key=lambda p: tuple(
            int(g) for g in _CKPT_PATTERN.match(p.name).groups()))

    # ------------------------------------------------------------------
    def save(self, checkpoint: TrainingCheckpoint,
             is_best: bool = False) -> Path:
        """Write a periodic checkpoint (and ``best.npz`` when asked),
        then apply the retention policy."""
        start = time.perf_counter()
        with trace("checkpoint"):
            path = save_file(checkpoint,
                             self.path_for(checkpoint.epoch,
                                           checkpoint.batch_index))
            if is_best:
                save_file(checkpoint, self.best_path)
        self.write_seconds += time.perf_counter() - start
        self.bytes_written += path.stat().st_size
        self.saves += 1
        self._prune()
        return path

    def save_best(self, checkpoint: TrainingCheckpoint) -> Path:
        """Write only ``best.npz`` (no retention interaction)."""
        with trace("checkpoint"):
            return save_file(checkpoint, self.best_path)

    def _prune(self) -> None:
        existing = self.checkpoints()
        for stale in existing[:max(0, len(existing) - self.keep_last)]:
            try:
                stale.unlink()
            except OSError:
                pass  # a vanished file is already pruned

    # ------------------------------------------------------------------
    def latest(self) -> Optional[Path]:
        """Newest periodic checkpoint path, or ``None`` when empty."""
        existing = self.checkpoints()
        return existing[-1] if existing else None

    def latest_valid(self) -> Optional[TrainingCheckpoint]:
        """Newest checkpoint that loads and passes its checksum.

        Corrupt/truncated files (the footprint of a crash mid-write or a
        damaged disk) are skipped, newest to oldest.  Returns ``None``
        when the directory holds no checkpoints at all; raises
        :class:`CheckpointError` when checkpoints exist but *every one*
        is corrupt — that situation is unrecoverable data loss and must
        not be indistinguishable from "nothing saved yet".
        """
        existing = self.checkpoints()
        if not existing:
            return None
        for path in reversed(existing):
            try:
                return load_file(path)
            except CheckpointError:
                continue
        names = ", ".join(p.name for p in existing)
        raise CheckpointError(
            f"all {len(existing)} checkpoint(s) in {self.directory} are "
            f"corrupt ({names}); nothing can be resumed — delete the "
            "directory and retrain, or restore the files from a backup")

    def best_checkpoint(self, metric: str = "best_val",
                        mode: str = "min") -> Optional[TrainingCheckpoint]:
        """The valid periodic checkpoint with the best recorded metric.

        ``metric`` resolves per checkpoint as ``early_stopping[metric]``
        first, then ``metadata["metrics"][metric]``; checkpoints that do
        not record it are skipped.  ``mode`` is ``"min"`` (losses) or
        ``"max"`` (MRR-style scores).

        Selection is deterministic: when several checkpoints share the
        best value, the *newest* wins — ties break on ``(epoch,
        batch_index)`` and finally on filename, so two runs over the same
        directory always pick the same file.  Returns ``None`` when no
        valid checkpoint records the metric; raises
        :class:`CheckpointError` when every archive is corrupt (same
        contract as :meth:`latest_valid`).
        """
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        existing = self.checkpoints()
        if not existing:
            return None
        best: Optional[TrainingCheckpoint] = None
        best_key = None
        any_valid = False
        for path in existing:
            try:
                candidate = load_file(path)
            except CheckpointError:
                continue
            any_valid = True
            value = candidate.early_stopping.get(metric)
            if value is None:
                value = candidate.metadata.get("metrics", {}).get(metric)
            if value is None:
                continue
            value = float(value)
            signed = value if mode == "min" else -value
            # Lexicographic key: metric first, then *newer* beats older at
            # equal metric (negated cursor), then filename for total order.
            key = (signed, -candidate.epoch, -candidate.batch_index,
                   tuple(-ord(c) for c in path.name))
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        if not any_valid:
            names = ", ".join(p.name for p in existing)
            raise CheckpointError(
                f"all {len(existing)} checkpoint(s) in {self.directory} "
                f"are corrupt ({names}); no best checkpoint can be "
                "selected — delete the directory and retrain, or restore "
                "the files from a backup")
        return best

    def load_best(self) -> Optional[TrainingCheckpoint]:
        """The ``best.npz`` checkpoint, or ``None`` if absent/corrupt."""
        try:
            return load_file(self.best_path)
        except CheckpointError:
            return None

    def telemetry(self) -> dict:
        """Write-cost counters for benchmark JSON artifacts."""
        latest = self.latest()
        return {
            "checkpoint_saves": self.saves,
            "checkpoint_bytes_written": self.bytes_written,
            "checkpoint_write_seconds": self.write_seconds,
            "checkpoint_latest_bytes": (latest.stat().st_size
                                        if latest is not None else 0),
            "checkpoint_files_retained": len(self.checkpoints()),
        }
